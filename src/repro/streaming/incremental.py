"""Incremental rule maintenance over micro-batches.

Per batch, :class:`IncrementalSirum`:

1. appends the batch to its (optionally windowed) working set and
   offers its rows to the candidate-pruning reservoir;
2. *refits* the current rule set — coverage masks of the new rows are
   computed, multipliers are carried over, and iterative scaling
   restores every rule's constraint (cheap: the rules are fixed);
3. monitors drift: the rule set's KL-divergence right after a mine is
   the baseline; when the refitted KL exceeds ``drift_factor`` times
   that baseline (the data's distribution moved away from what the
   rules explain), or every ``remine_interval`` batches, the miner
   re-runs using the reservoir as its pruning sample.

This is the design the thesis sketches as future work in §7; the drift
trigger keeps expensive mining proportional to actual distribution
change rather than stream length.
"""

import numpy as np

from repro.common.errors import ConfigError, DataError
from repro.core.config import SirumConfig
from repro.core.divergence import kl_divergence
from repro.core.measure import MeasureTransform
from repro.core.miner import Sirum, make_default_cluster
from repro.core.scaling import iterative_scale
from repro.data.table import Table


class _WorkingSet:
    """Amortized working-set buffer for the streaming miner.

    The naive approach — re-concatenating every retained batch's
    columns on every ``process()`` call — is O(stream²) over a run.
    This buffer keeps one growable array per column: appending a batch
    copies only that batch's rows (capacity doubles when exhausted) and
    sliding the window forward just advances a start offset, so the
    whole run is amortized O(total rows).  The assembled working
    :class:`Table` is cached and rebuilt only after an append or slide.

    Snapshots stay valid: appends write past ``stop``, slides only move
    ``start``, and growth reallocates fresh buffers, so column views
    handed out earlier are never mutated underneath a caller.
    """

    def __init__(self, window_batches=None):
        self.window_batches = window_batches
        self._schema = None
        self._encoders = None
        self._dims = None
        self._measure = None
        self._start = 0
        self._stop = 0
        self._batch_lengths = []
        self._cached = None

    def __len__(self):
        return self._stop - self._start

    @property
    def num_batches(self):
        return len(self._batch_lengths)

    def append(self, batch):
        """Add one batch; slides the window if it is now over-full."""
        if self._schema is None:
            self._schema = batch.schema
            self._encoders = batch.encoders()
            capacity = max(2 * len(batch), 1)
            self._dims = [
                np.empty(capacity, dtype=np.int64)
                for _ in batch.schema.dimensions
            ]
            self._measure = np.empty(capacity, dtype=np.float64)
        n = len(batch)
        self._ensure_capacity(n)
        for buf, col in zip(self._dims, batch.dimension_columns()):
            buf[self._stop:self._stop + n] = col
        self._measure[self._stop:self._stop + n] = batch.measure
        self._stop += n
        self._batch_lengths.append(n)
        if self.window_batches is not None:
            while len(self._batch_lengths) > self.window_batches:
                self._start += self._batch_lengths.pop(0)
        self._cached = None

    def _ensure_capacity(self, extra):
        capacity = self._measure.size
        if self._stop + extra <= capacity:
            return
        live = self._stop - self._start
        # Size off the *live* window, not the old capacity: a bounded
        # sliding window then keeps a bounded buffer (~2x the window)
        # instead of doubling forever as dead prefix accumulates.
        new_capacity = max(2 * (live + extra), 1)
        new_dims = [np.empty(new_capacity, dtype=np.int64)
                    for _ in self._dims]
        new_measure = np.empty(new_capacity, dtype=np.float64)
        for new, old in zip(new_dims, self._dims):
            new[:live] = old[self._start:self._stop]
        new_measure[:live] = self._measure[self._start:self._stop]
        self._dims = new_dims
        self._measure = new_measure
        self._start = 0
        self._stop = live

    def table(self):
        """The working table over the live window (cached between
        mutations; columns are zero-copy views of the buffer)."""
        if self._cached is None:
            dims = [buf[self._start:self._stop] for buf in self._dims]
            self._cached = Table.from_columns(
                self._schema, dims,
                self._measure[self._start:self._stop], self._encoders,
            )
        return self._cached


class StreamSnapshot:
    """State reported after each processed batch."""

    def __init__(self, batch_index, rules, kl, baseline_kl, remined,
                 total_rows):
        self.batch_index = batch_index
        self.rules = rules
        self.kl = kl
        self.baseline_kl = baseline_kl
        self.remined = remined
        self.total_rows = total_rows

    def __repr__(self):
        return (
            "StreamSnapshot(batch=%d, rules=%d, kl=%.4g, remined=%s)"
            % (self.batch_index, len(self.rules), self.kl, self.remined)
        )


class IncrementalSirum:
    """Maintains an informative rule set over a table stream.

    Parameters
    ----------
    config:
        Miner configuration used whenever (re-)mining runs; its
        ``sample_size`` sets the reservoir capacity.
    drift_factor:
        Re-mine when the current KL exceeds this multiple of the KL
        measured right after the previous mine.
    remine_interval:
        Also re-mine unconditionally every this many batches
        (None disables scheduled re-mining).
    window_batches:
        Keep only the most recent batches (None keeps everything).
    """

    def __init__(self, config=None, drift_factor=1.5, remine_interval=None,
                 window_batches=None, cluster=None, seed=0):
        if drift_factor < 1.0:
            raise ConfigError("drift_factor must be at least 1")
        if remine_interval is not None and remine_interval < 1:
            raise ConfigError("remine_interval must be at least 1")
        if window_batches is not None and window_batches < 1:
            raise ConfigError("window_batches must be at least 1")
        self.config = config or SirumConfig(k=5)
        self.drift_factor = drift_factor
        self.remine_interval = remine_interval
        self.window_batches = window_batches
        self._owns_cluster = cluster is None
        self.cluster = cluster or make_default_cluster()
        self._reservoir = None
        self._working_set = _WorkingSet(window_batches=window_batches)
        self._rules = []
        self._lambdas = None
        self._baseline_kl = None
        self._batches_since_mine = 0
        self._batch_index = -1
        self._seed = seed

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def process(self, batch):
        """Ingest one table batch; returns a :class:`StreamSnapshot`."""
        from repro.streaming.reservoir import ReservoirSample

        if len(batch) == 0:
            raise DataError("cannot process an empty batch")
        self._batch_index += 1
        self._working_set.append(batch)
        if self._reservoir is None:
            self._reservoir = ReservoirSample(
                self.config.sample_size, seed=self._seed
            )
        self._reservoir.offer_table(batch)

        working = self._working_table()
        remined = False
        if not self._rules:
            kl = self._mine(working)
            remined = True
        else:
            kl = self._refit(working)
            if kl is None:
                # Degenerate refit (the window slid past every
                # informative rule's support): fall back to a re-mine.
                kl = self._mine(working)
                remined = True
            elif self._should_remine(kl):
                kl = self._mine(working)
                remined = True
        self._batches_since_mine = 0 if remined else (
            self._batches_since_mine + 1
        )
        return StreamSnapshot(
            batch_index=self._batch_index,
            rules=list(self._rules),
            kl=kl,
            baseline_kl=self._baseline_kl,
            remined=remined,
            total_rows=len(working),
        )

    def run(self, stream):
        """Process every batch of a stream; returns all snapshots."""
        return [self.process(batch) for batch in stream]

    @property
    def rules(self):
        """The currently maintained rules (selection order)."""
        return list(self._rules)

    def close(self):
        """Shut down the internally created cluster's worker pools.

        Idempotent, and a no-op when the caller supplied the cluster
        (they own its lifecycle).  The miner can keep processing after
        a close — the next parallel stage simply reopens a pool — so
        closing between bursts of batches is safe.
        """
        if self._owns_cluster:
            self.cluster.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _working_table(self):
        return self._working_set.table()

    def _mine(self, working):
        result = Sirum(self.config).mine(
            working,
            cluster=self.cluster,
            sample_rows=self._reservoir.rows(),
        )
        self._rules = result.rule_set.rules()
        self._lambdas = result.lambdas
        self._baseline_kl = result.final_kl
        return result.final_kl

    def _refit(self, working):
        """Refit the current rules against the working table.

        Returns the refitted KL, or ``None`` when the surviving rule
        set is degenerate — no rule retains support, or every
        informative rule lost its support (the window slid past it)
        and only root-like survivors remain.  The caller must then
        fall back to a full re-mine; handing ``iterative_scale`` an
        empty mask list would raise
        ``DataError("iterative scaling needs at least one rule")``.
        """
        transform = MeasureTransform.fit(working.measure)
        masks = []
        kept_rules = []
        lambdas = []
        for rule, lam in zip(self._rules, self._lambdas):
            mask = rule.match_mask(working)
            if mask.any():
                masks.append(mask)
                kept_rules.append(rule)
                lambdas.append(lam)
        had_informative = any(not r.is_root() for r in self._rules)
        kept_informative = any(not r.is_root() for r in kept_rules)
        if not masks or (had_informative and not kept_informative):
            return None
        # Rules whose support vanished (window slid past it) drop out.
        self._rules = kept_rules
        result = iterative_scale(
            masks,
            transform.transformed,
            lambdas=np.asarray(lambdas),
            epsilon=self.config.epsilon,
            max_iterations=self.config.max_scaling_iterations,
        )
        self._lambdas = result.lambdas
        return kl_divergence(transform.transformed, result.estimates)

    def _should_remine(self, kl):
        if self._baseline_kl is not None and self._baseline_kl > 0:
            if kl > self.drift_factor * self._baseline_kl:
                return True
        if self.remine_interval is not None:
            if self._batches_since_mine + 1 >= self.remine_interval:
                return True
        return False
