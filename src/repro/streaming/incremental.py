"""Incremental rule maintenance over micro-batches.

Per batch, :class:`IncrementalSirum`:

1. appends the batch to its (optionally windowed) working set and
   offers its rows to the candidate-pruning reservoir;
2. *refits* the current rule set — coverage masks of the new rows are
   computed, multipliers are carried over, and iterative scaling
   restores every rule's constraint (cheap: the rules are fixed);
3. monitors drift: the rule set's KL-divergence right after a mine is
   the baseline; when the refitted KL exceeds ``drift_factor`` times
   that baseline (the data's distribution moved away from what the
   rules explain), or every ``remine_interval`` batches, the miner
   re-runs using the reservoir as its pruning sample.

This is the design the thesis sketches as future work in §7; the drift
trigger keeps expensive mining proportional to actual distribution
change rather than stream length.
"""

import numpy as np

from repro.common.errors import ConfigError, DataError
from repro.core.config import SirumConfig
from repro.core.divergence import kl_divergence
from repro.core.measure import MeasureTransform
from repro.core.miner import Sirum, make_default_cluster
from repro.core.scaling import iterative_scale
from repro.data.table import Table


class StreamSnapshot:
    """State reported after each processed batch."""

    def __init__(self, batch_index, rules, kl, baseline_kl, remined,
                 total_rows):
        self.batch_index = batch_index
        self.rules = rules
        self.kl = kl
        self.baseline_kl = baseline_kl
        self.remined = remined
        self.total_rows = total_rows

    def __repr__(self):
        return (
            "StreamSnapshot(batch=%d, rules=%d, kl=%.4g, remined=%s)"
            % (self.batch_index, len(self.rules), self.kl, self.remined)
        )


class IncrementalSirum:
    """Maintains an informative rule set over a table stream.

    Parameters
    ----------
    config:
        Miner configuration used whenever (re-)mining runs; its
        ``sample_size`` sets the reservoir capacity.
    drift_factor:
        Re-mine when the current KL exceeds this multiple of the KL
        measured right after the previous mine.
    remine_interval:
        Also re-mine unconditionally every this many batches
        (None disables scheduled re-mining).
    window_batches:
        Keep only the most recent batches (None keeps everything).
    """

    def __init__(self, config=None, drift_factor=1.5, remine_interval=None,
                 window_batches=None, cluster=None, seed=0):
        if drift_factor < 1.0:
            raise ConfigError("drift_factor must be at least 1")
        if remine_interval is not None and remine_interval < 1:
            raise ConfigError("remine_interval must be at least 1")
        if window_batches is not None and window_batches < 1:
            raise ConfigError("window_batches must be at least 1")
        self.config = config or SirumConfig(k=5)
        self.drift_factor = drift_factor
        self.remine_interval = remine_interval
        self.window_batches = window_batches
        self.cluster = cluster or make_default_cluster()
        self._reservoir = None
        self._batches = []
        self._rules = []
        self._lambdas = None
        self._baseline_kl = None
        self._batches_since_mine = 0
        self._batch_index = -1
        self._seed = seed

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def process(self, batch):
        """Ingest one table batch; returns a :class:`StreamSnapshot`."""
        from repro.streaming.reservoir import ReservoirSample

        if len(batch) == 0:
            raise DataError("cannot process an empty batch")
        self._batch_index += 1
        self._batches.append(batch)
        if self.window_batches is not None:
            self._batches = self._batches[-self.window_batches:]
        if self._reservoir is None:
            self._reservoir = ReservoirSample(
                self.config.sample_size, seed=self._seed
            )
        self._reservoir.offer_table(batch)

        working = self._working_table()
        remined = False
        if not self._rules:
            kl = self._mine(working)
            remined = True
        else:
            kl = self._refit(working)
            if self._should_remine(kl):
                kl = self._mine(working)
                remined = True
        self._batches_since_mine = 0 if remined else (
            self._batches_since_mine + 1
        )
        return StreamSnapshot(
            batch_index=self._batch_index,
            rules=list(self._rules),
            kl=kl,
            baseline_kl=self._baseline_kl,
            remined=remined,
            total_rows=len(working),
        )

    def run(self, stream):
        """Process every batch of a stream; returns all snapshots."""
        return [self.process(batch) for batch in stream]

    @property
    def rules(self):
        """The currently maintained rules (selection order)."""
        return list(self._rules)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _working_table(self):
        if len(self._batches) == 1:
            return self._batches[0]
        first = self._batches[0]
        columns = []
        for j, name in enumerate(first.schema.dimensions):
            columns.append(np.concatenate(
                [b.dimension_columns()[j] for b in self._batches]
            ))
        measure = np.concatenate([b.measure for b in self._batches])
        return Table.from_columns(
            first.schema, columns, measure, first.encoders()
        )

    def _mine(self, working):
        result = Sirum(self.config).mine(
            working,
            cluster=self.cluster,
            sample_rows=self._reservoir.rows(),
        )
        self._rules = result.rule_set.rules()
        self._lambdas = result.lambdas
        self._baseline_kl = result.final_kl
        return result.final_kl

    def _refit(self, working):
        transform = MeasureTransform.fit(working.measure)
        masks = []
        kept_rules = []
        lambdas = []
        for rule, lam in zip(self._rules, self._lambdas):
            mask = rule.match_mask(working)
            if mask.any():
                masks.append(mask)
                kept_rules.append(rule)
                lambdas.append(lam)
        # Rules whose support vanished (window slid past it) drop out.
        self._rules = kept_rules
        result = iterative_scale(
            masks,
            transform.transformed,
            lambdas=np.asarray(lambdas),
            epsilon=self.config.epsilon,
            max_iterations=self.config.max_scaling_iterations,
        )
        self._lambdas = result.lambdas
        return kl_divergence(transform.transformed, result.estimates)

    def _should_remine(self, kl):
        if self._baseline_kl is not None and self._baseline_kl > 0:
            if kl > self.drift_factor * self._baseline_kl:
                return True
        if self.remine_interval is not None:
            if self._batches_since_mine + 1 >= self.remine_interval:
                return True
        return False
