"""Streaming SIRUM — incremental rule maintenance (thesis §7).

The thesis's conclusion proposes "a streaming version of SIRUM (e.g.,
using Spark Streaming) that incrementally maintains informative rules
as new data arrive."  This package implements that design over the
library's tables:

- :class:`~repro.streaming.stream.MicroBatchStream` — a source of
  table micro-batches (from a list of tables or a generator function);
- :class:`~repro.streaming.reservoir.ReservoirSample` — a classic
  reservoir holding the candidate-pruning sample over the stream;
- :class:`~repro.streaming.incremental.IncrementalSirum` — maintains
  the rule set across batches: cheap per-batch RCT updates keep the
  maximum-entropy estimates consistent, a KL drift monitor detects when
  the current rules stop explaining the data, and re-mining runs only
  then (or on a configurable schedule).
"""

from repro.streaming.stream import MicroBatchStream
from repro.streaming.reservoir import ReservoirSample
from repro.streaming.incremental import IncrementalSirum, StreamSnapshot

__all__ = [
    "MicroBatchStream",
    "ReservoirSample",
    "IncrementalSirum",
    "StreamSnapshot",
]
