"""Reservoir sampling over a stream of encoded rows.

Maintains a uniform random sample of everything seen so far (Vitter's
Algorithm R), providing the candidate-pruning sample s for re-mining
without a pass over the accumulated stream.
"""

from repro.common.errors import ConfigError
from repro.common.rng import make_rng


class ReservoirSample:
    """Uniform fixed-capacity sample of an unbounded row stream."""

    def __init__(self, capacity, seed=0):
        if capacity < 1:
            raise ConfigError("reservoir capacity must be at least 1")
        self.capacity = capacity
        self._rng = make_rng(seed)
        self._rows = []
        self.seen = 0

    def offer(self, row):
        """Consider one encoded row for inclusion."""
        self.seen += 1
        if len(self._rows) < self.capacity:
            self._rows.append(row)
            return True
        slot = int(self._rng.integers(0, self.seen))
        if slot < self.capacity:
            self._rows[slot] = row
            return True
        return False

    def offer_table(self, table):
        """Offer every row of a table batch."""
        for i in range(len(table)):
            self.offer(table.encoded_row(i))

    def rows(self):
        """The current sample (a copy, in reservoir order)."""
        return list(self._rows)

    def __len__(self):
        return len(self._rows)
