"""Reservoir sampling over a stream of encoded rows.

Maintains a uniform random sample of everything seen so far (Vitter's
Algorithm R), providing the candidate-pruning sample s for re-mining
without a pass over the accumulated stream.

Single rows go through :meth:`ReservoirSample.offer`; table batches go
through :meth:`ReservoirSample.offer_table`, which draws the whole
batch's acceptance slots in one vectorized RNG call and gathers only
the accepted rows from the batch's columns — no per-row Python loop
over the (mostly rejected) stream.
"""

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng


class ReservoirSample:
    """Uniform fixed-capacity sample of an unbounded row stream."""

    def __init__(self, capacity, seed=0):
        if capacity < 1:
            raise ConfigError("reservoir capacity must be at least 1")
        self.capacity = capacity
        self._rng = make_rng(seed)
        self._rows = []
        self.seen = 0

    def offer(self, row):
        """Consider one encoded row for inclusion."""
        self.seen += 1
        if len(self._rows) < self.capacity:
            self._rows.append(row)
            return True
        slot = int(self._rng.integers(0, self.seen))
        if slot < self.capacity:
            self._rows[slot] = row
            return True
        return False

    def offer_table(self, table):
        """Offer every row of a table batch (vectorized).

        Produces the same *distribution* as calling :meth:`offer` row
        by row — each batch row replaces a uniform reservoir slot with
        probability capacity / rows-seen-so-far — but draws all
        acceptance integers in one batched RNG call and gathers the
        accepted rows with one fancy-index per column.
        """
        n = len(table)
        if n == 0:
            return
        start_seen = self.seen
        fill = min(max(self.capacity - len(self._rows), 0), n)
        if fill < n:
            # Row at batch offset i has stream rank start_seen + i + 1;
            # Algorithm R keeps it iff a draw in [0, rank) lands below
            # capacity, sending it to that slot.
            ranks = np.arange(
                start_seen + fill + 1, start_seen + n + 1, dtype=np.int64
            )
            draws = self._rng.integers(0, ranks)
            hit = draws < self.capacity
            accepted = np.nonzero(hit)[0] + fill
            slots = draws[hit]
        else:
            accepted = np.empty(0, dtype=np.int64)
            slots = np.empty(0, dtype=np.int64)
        self.seen += n
        wanted = np.concatenate(
            [np.arange(fill, dtype=np.int64), accepted]
        )
        if wanted.size == 0:
            return
        gathered = np.stack(
            [np.asarray(col)[wanted] for col in table.dimension_columns()],
            axis=1,
        )
        rows = [tuple(values) for values in gathered.tolist()]
        self._rows.extend(rows[:fill])
        for row, slot in zip(rows[fill:], slots):
            # Sequential overwrite order matters: a later batch row
            # landing on the same slot must win, as in the row-wise
            # algorithm.
            self._rows[int(slot)] = row

    def rows(self):
        """The current sample (a copy, in reservoir order)."""
        return list(self._rows)

    def __len__(self):
        return len(self._rows)
