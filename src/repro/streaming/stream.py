"""Micro-batch stream sources.

A stream yields :class:`~repro.data.table.Table` batches that all share
one schema (and, for dictionary-encoded dimensions, one encoder set) —
the shape Spark Streaming's discretized streams would deliver to SIRUM.
"""

from repro.common.errors import DataError


class MicroBatchStream:
    """An iterator of same-schema table batches.

    Construct from a list of tables (:meth:`from_tables`) or by
    splitting one table into fixed-size batches (:meth:`from_table`) —
    the standard way to replay a dataset as a stream in tests and
    examples.
    """

    def __init__(self, batches):
        batches = list(batches)
        if not batches:
            raise DataError("a stream needs at least one batch")
        schema = batches[0].schema
        for batch in batches[1:]:
            if batch.schema != schema:
                raise DataError("all stream batches must share one schema")
        self._batches = batches
        self.schema = schema

    @classmethod
    def from_tables(cls, tables):
        return cls(tables)

    @classmethod
    def from_table(cls, table, batch_size):
        """Replay ``table`` as consecutive batches of ``batch_size`` rows."""
        if batch_size < 1:
            raise DataError("batch_size must be at least 1")
        batches = []
        for start in range(0, len(table), batch_size):
            batches.append(table.slice(start, min(start + batch_size,
                                                  len(table))))
        return cls(batches)

    def __iter__(self):
        return iter(self._batches)

    def __len__(self):
        return len(self._batches)

    @property
    def total_rows(self):
        return sum(len(b) for b in self._batches)
