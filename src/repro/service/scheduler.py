"""Job scheduler: a worker pool behind a bounded priority queue.

Admission is bounded — when ``max_queue_depth`` jobs are already
waiting, :meth:`JobScheduler.submit` raises
:class:`~repro.common.errors.QueueFullError` instead of buffering
without limit (back-pressure, not collapse).  Queued jobs are ordered
by ``(priority, submission)``: smaller priority numbers run first, FIFO
within a priority level.

Deadlines are *start* deadlines.  A job that is still queued when its
deadline passes is failed with
:class:`~repro.common.errors.DeadlineExceededError`; a job that has
started is never interrupted (Python threads cannot be safely killed,
and the underlying engines are not cancellable mid-pass).

``close()`` drains: already-admitted jobs still run, new submissions
raise :class:`~repro.common.errors.ServiceClosedError`.
"""

import heapq
import itertools
import threading
import time

from repro.common.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
)


class JobScheduler:
    """Runs :class:`~repro.service.jobs.Job` objects on worker threads."""

    def __init__(self, num_workers=4, max_queue_depth=64,
                 name="mining-service"):
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        self.num_workers = num_workers
        self.max_queue_depth = max_queue_depth
        self._heap = []  # (priority, seq, job)
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.jobs_started = 0
        self.jobs_finished = 0
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name="%s-worker-%d" % (name, i),
                daemon=True,
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- admission -----------------------------------------------------

    def submit(self, job):
        """Admit ``job``; raises typed errors on overflow/shutdown."""
        expired = []
        try:
            with self._not_empty:
                if self._closed:
                    raise ServiceClosedError(
                        "scheduler is closed; job %r rejected" % job.label
                    )
                if len(self._heap) >= self.max_queue_depth:
                    # Dead weight must not cause rejections: sweep
                    # queued jobs that already missed their deadline
                    # (or were completed by a waiting caller) before
                    # declaring the queue full.
                    expired = self._prune_dead_locked()
                if len(self._heap) >= self.max_queue_depth:
                    raise QueueFullError(
                        "admission queue is full (%d queued, max %d); "
                        "job %r rejected"
                        % (len(self._heap), self.max_queue_depth, job.label)
                    )
                heapq.heappush(
                    self._heap, (job.priority, next(self._seq), job)
                )
                self._not_empty.notify()
        finally:
            # Fail expired jobs outside the queue lock: their on_done
            # callbacks may take other locks.
            for dead in expired:
                dead.fail(DeadlineExceededError(
                    "job %r waited %.3fs in queue, past its deadline"
                    % (dead.label, dead.queue_wait_seconds)
                ))
        return job

    def _prune_dead_locked(self):
        """Remove expired/already-done queued jobs; returns the expired."""
        now = time.monotonic()
        keep, expired = [], []
        for entry in self._heap:
            job = entry[2]
            if job.done():
                continue  # completed by a waiter; drop silently
            if job.deadline is not None and now > job.deadline:
                expired.append(job)
            else:
                keep.append(entry)
        if len(keep) != len(self._heap):
            self._heap = keep
            heapq.heapify(self._heap)
        return expired

    @property
    def queue_depth(self):
        """Jobs admitted but not yet started."""
        with self._lock:
            return len(self._heap)

    # -- workers -------------------------------------------------------

    def _worker_loop(self):
        while True:
            with self._not_empty:
                while not self._heap and not self._closed:
                    self._not_empty.wait()
                if not self._heap:
                    return  # closed and drained
                _, _, job = heapq.heappop(self._heap)
                self.jobs_started += 1
            if job.done():
                # Completed while queued (a waiter enforced the
                # deadline); nothing left to run.
                with self._lock:
                    self.jobs_finished += 1
                continue
            if job.deadline is not None and time.monotonic() > job.deadline:
                job.fail(DeadlineExceededError(
                    "job %r waited %.3fs in queue, past its deadline"
                    % (job.label, job.queue_wait_seconds)
                ))
                with self._lock:
                    self.jobs_finished += 1
                continue
            job.started_at = time.monotonic()
            try:
                job.finish(job.fn())
            except BaseException as exc:  # surfaces via JobHandle.result()
                job.fail(exc)
            with self._lock:
                self.jobs_finished += 1

    # -- shutdown ------------------------------------------------------

    def close(self, wait=True):
        """Stop admissions; optionally wait for queued jobs to drain."""
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            self._not_empty.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    @property
    def closed(self):
        return self._closed

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
