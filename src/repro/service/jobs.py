"""Job primitives shared by the scheduler and the service façade.

A :class:`Job` is one unit of admitted work: a thunk plus its priority,
optional deadline and completion state.  Exactly one :class:`Job`
exists per *distinct* in-flight request — coalesced duplicates receive
extra :class:`JobHandle` views onto the same job, so they share its
result (or exception) without re-executing anything.

Timing fields are monotonic-clock stamps; :class:`JobMetrics` turns
them into the queue-wait / run-time numbers the service aggregates into
its :class:`~repro.engine.metrics.MetricsRegistry`.
"""

import itertools
import threading
import time

from repro.common.errors import DeadlineExceededError, ResultTimeoutError

#: Admission priorities: smaller numbers are scheduled first.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 10
PRIORITY_LOW = 20

_job_ids = itertools.count(1)


class JobMetrics:
    """Per-job timing and provenance, derived from a finished job."""

    __slots__ = (
        "job_id", "label", "priority", "queue_wait_seconds",
        "run_seconds", "cache_hit", "coalesced",
        "requested_parallelism", "granted_parallelism",
        "budget_wait_seconds", "placement_slots",
    )

    def __init__(self, job_id, label, priority, queue_wait_seconds,
                 run_seconds, cache_hit, coalesced,
                 requested_parallelism=None, granted_parallelism=None,
                 budget_wait_seconds=None, placement_slots=None):
        self.job_id = job_id
        self.label = label
        self.priority = priority
        self.queue_wait_seconds = queue_wait_seconds
        self.run_seconds = run_seconds
        self.cache_hit = cache_hit
        self.coalesced = coalesced
        #: Engine-worker degree the job asked the budget for, what it
        #: was actually granted, and how long it waited for the grant.
        #: All None when the job ran without budget admission (SQL
        #: jobs, cache hits, admission="oversubscribe").
        self.requested_parallelism = requested_parallelism
        self.granted_parallelism = granted_parallelism
        self.budget_wait_seconds = budget_wait_seconds
        #: Engine-worker slot ids the budget placed the job on (one
        #: per granted worker); None without budget admission.
        self.placement_slots = placement_slots

    def snapshot(self):
        return {
            "job_id": self.job_id,
            "label": self.label,
            "priority": self.priority,
            "queue_wait_seconds": self.queue_wait_seconds,
            "run_seconds": self.run_seconds,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "requested_parallelism": self.requested_parallelism,
            "granted_parallelism": self.granted_parallelism,
            "budget_wait_seconds": self.budget_wait_seconds,
            "placement_slots": self.placement_slots,
        }

    def __repr__(self):
        return (
            "JobMetrics(job=%d, wait=%.4fs, run=%.4fs, cache_hit=%s, "
            "coalesced=%s)" % (
                self.job_id, self.queue_wait_seconds, self.run_seconds,
                self.cache_hit, self.coalesced,
            )
        )


class Job:
    """One admitted unit of work with its completion state.

    ``deadline_seconds`` is a start deadline: if the job is still
    queued when it expires, the scheduler fails it with
    :class:`~repro.common.errors.DeadlineExceededError` instead of
    running it.  ``on_done(job)`` is invoked exactly once, after the
    completion state is set but before waiters wake (the service uses
    it to retire in-flight registry entries and fold in metrics).
    """

    __slots__ = (
        "job_id", "fn", "label", "priority", "deadline",
        "submitted_at", "started_at", "finished_at",
        "result", "exception", "on_done", "budget_info",
        "_event", "_done_lock", "_completed",
    )

    def __init__(self, fn, label="job", priority=PRIORITY_NORMAL,
                 deadline_seconds=None, on_done=None):
        self.job_id = next(_job_ids)
        self.fn = fn
        self.label = label
        self.priority = priority
        self.submitted_at = time.monotonic()
        self.deadline = (
            None if deadline_seconds is None
            else self.submitted_at + deadline_seconds
        )
        self.started_at = None
        self.finished_at = None
        self.result = None
        self.exception = None
        self.on_done = on_done
        #: Filled by the runner when the job acquires an engine-worker
        #: budget grant: requested/granted degree and wait seconds.
        self.budget_info = {}
        self._event = threading.Event()
        self._done_lock = threading.Lock()
        self._completed = False

    # -- completion ----------------------------------------------------
    #
    # Completion is once-only: a job may be failed concurrently by a
    # deadline watcher while a worker finishes it (or vice versa); the
    # first completion wins and later attempts are ignored, so on_done
    # fires exactly once and waiters observe one consistent outcome.

    def finish(self, result):
        """Record success; returns False if the job was already done."""
        return self._complete(result, None)

    def fail(self, exception):
        """Record failure; returns False if the job was already done."""
        return self._complete(None, exception)

    def _complete(self, result, exception):
        with self._done_lock:
            if self._completed:
                return False
            self._completed = True
            self.result = result
            self.exception = exception
            self.finished_at = time.monotonic()
        if self.on_done is not None:
            self.on_done(self)
        self._event.set()
        return True

    def done(self):
        return self._event.is_set()

    def wait(self, timeout=None):
        """Block until completion; returns False if ``timeout`` expired."""
        return self._event.wait(timeout)

    # -- timings -------------------------------------------------------

    @property
    def queue_wait_seconds(self):
        """Seconds spent queued (up to start, or to failure if never run)."""
        end = self.started_at if self.started_at is not None else self.finished_at
        if end is None:
            end = time.monotonic()
        return max(0.0, end - self.submitted_at)

    @property
    def run_seconds(self):
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else time.monotonic()
        return max(0.0, end - self.started_at)

    def __repr__(self):
        state = "done" if self.done() else (
            "running" if self.started_at is not None else "queued"
        )
        return "Job(%d, %r, priority=%d, %s)" % (
            self.job_id, self.label, self.priority, state
        )


class JobHandle:
    """A caller's view of a submitted request.

    Multiple handles may share one underlying job (request coalescing);
    cache hits get a pre-completed job.  ``result()`` re-raises the
    job's exception in the caller's thread.
    """

    __slots__ = ("_job", "cache_hit", "coalesced")

    def __init__(self, job, cache_hit=False, coalesced=False):
        self._job = job
        self.cache_hit = cache_hit
        self.coalesced = coalesced

    @classmethod
    def completed(cls, value, cache_hit=False):
        """A handle that is already done (cache fast path)."""
        job = Job(fn=None, label="cached")
        job.started_at = job.submitted_at
        job.finish(value)
        return cls(job, cache_hit=cache_hit)

    @property
    def job_id(self):
        return self._job.job_id

    @property
    def label(self):
        return self._job.label

    def done(self):
        return self._job.done()

    def result(self, timeout=None):
        """The job's result, blocking up to ``timeout`` seconds.

        A waiter does not sleep past the job's own start deadline: if
        the deadline lapses while the job is still queued, the job is
        failed here with :class:`DeadlineExceededError` immediately,
        instead of blocking until a worker eventually pops it.  (If a
        worker picks the job up at that same instant, completion is
        once-only — whichever outcome lands first is the one reported.)
        """
        job = self._job
        waited_until = None if timeout is None else time.monotonic() + timeout
        while True:
            wait_for = (
                None if waited_until is None
                else max(0.0, waited_until - time.monotonic())
            )
            if job.deadline is not None and job.started_at is None:
                until_deadline = max(
                    0.0, job.deadline - time.monotonic()
                ) + 0.005
                wait_for = (
                    until_deadline if wait_for is None
                    else min(wait_for, until_deadline)
                )
            if job.wait(wait_for):
                break
            if (job.deadline is not None and job.started_at is None
                    and time.monotonic() > job.deadline):
                job.fail(DeadlineExceededError(
                    "job %r missed its start deadline after %.3fs queued"
                    % (job.label, job.queue_wait_seconds)
                ))
                break
            if (waited_until is not None
                    and time.monotonic() >= waited_until):
                raise ResultTimeoutError(
                    "timed out after %.3fs waiting for %r" % (timeout, job)
                )
        if job.exception is not None:
            raise job.exception
        return job.result

    def metrics(self):
        """Timing/provenance for this request (see :class:`JobMetrics`)."""
        budget = self._job.budget_info
        return JobMetrics(
            job_id=self._job.job_id,
            label=self._job.label,
            priority=self._job.priority,
            queue_wait_seconds=self._job.queue_wait_seconds,
            run_seconds=self._job.run_seconds,
            cache_hit=self.cache_hit,
            coalesced=self.coalesced,
            requested_parallelism=budget.get("requested"),
            granted_parallelism=budget.get("granted"),
            budget_wait_seconds=budget.get("wait_seconds"),
            placement_slots=budget.get("slots"),
        )

    def __repr__(self):
        flags = []
        if self.cache_hit:
            flags.append("cache_hit")
        if self.coalesced:
            flags.append("coalesced")
        suffix = (" [%s]" % ", ".join(flags)) if flags else ""
        return "JobHandle(%r)%s" % (self._job, suffix)
