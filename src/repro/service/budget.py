"""Engine-worker budget: admission control for intra-job parallelism.

The service multiplies two parallelism axes: ``num_workers`` concurrent
jobs, each running a simulated cluster with its own ``parallelism``
engine workers.  Left alone they oversubscribe — 8 jobs x 4 engine
workers is 32 runnable threads (or processes) on a 4-core host — which
inflates tail latency exactly where the paper's interactive story
needs it flat.

:class:`EngineBudget` treats total engine workers as one machine-wide
resource.  Each job *requests* a degree (its configured
``parallelism``) and is *granted* a degree between ``min_parallelism``
and the request, never exceeding what is left of
``max_engine_workers``:

- while at least ``min_parallelism`` slots are free, admission is
  immediate and the grant is clamped to the free slots (a job asking
  for 4 when 2 are free runs with 2 — *degraded*, possibly to serial);
- when fewer than ``min_parallelism`` slots are free the request
  *blocks* (FIFO, no barging) until running jobs release slots, so the
  aggregate degree never exceeds the budget;
- releases wake the queue head first, and a request that arrives after
  a release is granted against the replenished pool — queued jobs
  *re-expand* instead of being pinned at their degraded degree.

Degraded grants are safe because the engine's determinism contract
(PR 3/4) makes the granted degree unobservable in results: rules,
lambda estimates and every simulated metric are bit-identical from
serial through any worker count.  The budget therefore only shapes
wall-clock behaviour, never output.

A :class:`BudgetGrant` releases its slots exactly once — explicitly,
via context manager, or through the cluster that carries it
(:class:`~repro.engine.cluster.ClusterContext` releases its grant on
``close()``, which the service's job runners invoke in ``finally`` on
every completion *and* abort path).

With ``remote_workers`` the budget also tracks shard-worker capacity
on other hosts, turning the single-host worker budget into a small
cluster scheduler: when the local pool cannot admit a job, the grant
*spills* — it is placed entirely onto free remote workers instead
(``grant.remote_addresses`` names them), and the service builds the
job's cluster with ``executor="remote"``.  Grants never mix hosts
with local slots: a stage runs either on this host's pools or on
shard workers, and determinism (above) makes the choice unobservable
in results.
"""

import os
import threading
import time

from collections import deque

from repro.common.errors import BudgetExhaustedError, ServiceError

#: Admission policies for :class:`~repro.service.service.ServiceConfig`.
ADMISSION_BUDGET = "budget"
ADMISSION_OVERSUBSCRIBE = "oversubscribe"
ADMISSION_POLICIES = (ADMISSION_BUDGET, ADMISSION_OVERSUBSCRIBE)


def default_max_engine_workers():
    """The machine's usable core count (the budget's default capacity)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # platforms without affinity
        return max(1, os.cpu_count() or 1)


class BudgetGrant:
    """One job's slot allocation; release exactly once when the job ends.

    Grants are *placed*: ``slots`` names the machine-wide worker slot
    ids (``0 .. max_engine_workers - 1``) this job holds, lowest-free
    first, so ``len(slots) == granted``.  A cluster built on a placed
    grant pins shard i to slot ``slots[i % granted]`` — sticky
    worker↔shard affinity across stages and coalesced jobs.  Slots
    return to the budget's free pool on release.
    """

    __slots__ = ("requested", "granted", "wait_seconds", "slots",
                 "remote_addresses", "_budget", "_lock", "_released")

    def __init__(self, budget, requested, granted, wait_seconds,
                 slots=(), remote_addresses=()):
        self._budget = budget
        self.requested = requested
        self.granted = granted
        self.wait_seconds = wait_seconds
        self.slots = tuple(slots)
        self.remote_addresses = tuple(remote_addresses)
        self._lock = threading.Lock()
        self._released = False

    @property
    def degraded(self):
        """True when the budget granted less than was requested."""
        return self.granted < self.requested

    @property
    def spilled(self):
        """True when the grant holds remote shard workers, not local
        slots — the job should run with ``executor="remote"`` against
        :attr:`remote_addresses`."""
        return bool(self.remote_addresses)

    @property
    def released(self):
        return self._released

    def release(self):
        """Return the slots to the budget (idempotent)."""
        with self._lock:
            if self._released:
                return False
            self._released = True
        self._budget._release(self)
        return True

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.release()

    def __repr__(self):
        return "BudgetGrant(requested=%d, granted=%d, slots=%r, " \
            "wait=%.4fs%s)" % (
                self.requested, self.granted, self.slots, self.wait_seconds,
                ", released" if self._released else "",
            )


class EngineBudget:
    """Budgets engine workers across concurrent jobs (see module doc).

    Parameters
    ----------
    max_engine_workers:
        Total engine-worker slots across all concurrent jobs; ``None``
        means the host's usable core count.
    min_parallelism:
        The smallest degree a job is ever granted (default 1 —
        degrade all the way to serial rather than block, as long as a
        single slot is free).  Must not exceed the capacity.
    remote_workers:
        Shard-worker addresses (``"host:port"``) on other hosts.  Each
        is one slot of *spill* capacity: a job the local pool cannot
        admit is granted free remote workers instead of blocking, so
        placed grants span hosts (see module doc).
    """

    def __init__(self, max_engine_workers=None, min_parallelism=1,
                 remote_workers=()):
        if max_engine_workers is None:
            max_engine_workers = default_max_engine_workers()
        if max_engine_workers < 1:
            raise ServiceError("max_engine_workers must be at least 1")
        if min_parallelism < 1:
            raise ServiceError("min_parallelism must be at least 1")
        if min_parallelism > max_engine_workers:
            raise ServiceError(
                "min_parallelism (%d) cannot exceed max_engine_workers (%d)"
                % (min_parallelism, max_engine_workers)
            )
        self.max_engine_workers = int(max_engine_workers)
        self.min_parallelism = int(min_parallelism)
        self.remote_workers = tuple(str(w) for w in remote_workers)
        self._cond = threading.Condition()
        self._in_use = 0
        self._remote_in_use = 0
        # Free placed slot ids, kept sorted so grants take the lowest
        # ids first — a job re-acquiring after a release tends to get
        # the same slots back, which keeps worker caches warm.  Remote
        # workers continue the id space above the local slots: slot
        # ``L + j`` is ``remote_workers[j]``.
        self._free_slots = list(range(self.max_engine_workers))
        self._free_remote = list(range(
            self.max_engine_workers,
            self.max_engine_workers + len(self.remote_workers),
        ))
        self._waiters = deque()  # FIFO admission: no barging past the head
        self._grants = 0
        self._degraded_grants = 0
        self._spilled_grants = 0
        self._releases = 0
        self._timeouts = 0
        self._total_wait_seconds = 0.0
        self._peak_in_use = 0

    # -- allocation ----------------------------------------------------

    def acquire(self, requested, timeout=None):
        """Block until a degree can be granted; returns a :class:`BudgetGrant`.

        ``requested`` is the job's desired parallelism; the grant is
        ``min(requested, free_slots)``, never below
        ``min(requested, min_parallelism)``.  ``timeout`` bounds the
        wait in seconds; on expiry :class:`BudgetExhaustedError`
        raises and no slots are held.

        Local slots are preferred.  When fewer than the floor are free
        but enough *remote* workers are, the grant spills: it holds
        free remote workers instead (``grant.spilled``), keeping the
        job admitted instead of queued behind the local pool.
        """
        requested = int(requested)
        if requested < 1:
            raise ServiceError("requested parallelism must be at least 1")
        # The request is recorded as asked — a job wanting 4 on a
        # capacity-1 budget is *degraded* to 1, and should read as
        # such — but no grant can exceed what exists.
        floor = min(requested, self.min_parallelism)
        started = time.monotonic()
        deadline = None if timeout is None else started + timeout
        ticket = object()
        with self._cond:
            self._waiters.append(ticket)
            try:
                while not (self._waiters[0] is ticket
                           and (self._available_locked() >= floor
                                or len(self._free_remote) >= floor)):
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        self._timeouts += 1
                        raise BudgetExhaustedError(
                            "no engine-worker slots freed within %.3fs "
                            "(%d/%d in use, %d waiting)" % (
                                timeout, self._in_use,
                                self.max_engine_workers,
                                len(self._waiters),
                            )
                        )
                    self._cond.wait(remaining)
                remote_addresses = ()
                if self._available_locked() >= floor:
                    granted = min(requested, self._available_locked())
                    slots = tuple(self._free_slots[:granted])
                    del self._free_slots[:granted]
                    self._in_use += granted
                    self._peak_in_use = max(self._peak_in_use,
                                            self._in_use)
                else:
                    # Spill: the local pool is exhausted but remote
                    # shard workers are free — place the whole grant
                    # there (all-remote, never mixed; a cluster runs
                    # one executor).
                    granted = min(requested, len(self._free_remote))
                    slots = tuple(self._free_remote[:granted])
                    del self._free_remote[:granted]
                    self._remote_in_use += granted
                    remote_addresses = tuple(
                        self.remote_workers[s - self.max_engine_workers]
                        for s in slots
                    )
                    self._spilled_grants += 1
                self._grants += 1
                if granted < requested:
                    self._degraded_grants += 1
                wait_seconds = time.monotonic() - started
                self._total_wait_seconds += wait_seconds
            finally:
                try:
                    self._waiters.remove(ticket)
                except ValueError:
                    pass
                # Whatever happened to this ticket, the next waiter may
                # now be at the head with slots available.
                self._cond.notify_all()
        return BudgetGrant(self, requested, granted, wait_seconds,
                           slots=slots, remote_addresses=remote_addresses)

    def _release(self, grant):
        with self._cond:
            local = [s for s in grant.slots
                     if s < self.max_engine_workers]
            remote = [s for s in grant.slots
                      if s >= self.max_engine_workers]
            self._in_use -= len(local)
            self._remote_in_use -= len(remote)
            self._free_slots.extend(local)
            self._free_slots.sort()
            self._free_remote.extend(remote)
            self._free_remote.sort()
            self._releases += 1
            self._cond.notify_all()

    def _available_locked(self):
        return self.max_engine_workers - self._in_use

    # -- introspection -------------------------------------------------

    @property
    def in_use(self):
        """Slots currently allocated to running jobs."""
        with self._cond:
            return self._in_use

    @property
    def available(self):
        """Slots free for the next admission."""
        with self._cond:
            return self._available_locked()

    @property
    def waiting(self):
        """Requests currently blocked on the budget."""
        with self._cond:
            return len(self._waiters)

    def stats(self):
        """One dict of budget counters, for the service's ``stats()``."""
        with self._cond:
            return {
                "max_engine_workers": self.max_engine_workers,
                "min_parallelism": self.min_parallelism,
                "in_use": self._in_use,
                "available": self._available_locked(),
                "waiting": len(self._waiters),
                "peak_in_use": self._peak_in_use,
                "remote_workers": len(self.remote_workers),
                "remote_in_use": self._remote_in_use,
                "remote_available": len(self._free_remote),
                "grants": self._grants,
                "degraded_grants": self._degraded_grants,
                "spilled_grants": self._spilled_grants,
                "releases": self._releases,
                "timeouts": self._timeouts,
                "total_wait_seconds": self._total_wait_seconds,
            }

    def __repr__(self):
        with self._cond:
            return "EngineBudget(%d/%d in use, %d waiting)" % (
                self._in_use, self.max_engine_workers, len(self._waiters)
            )
