"""Concurrent mining service: scheduler, coalescing, versioned cache.

    >>> from repro.service import RuleMiningService
    >>> service = RuleMiningService()
    >>> service.register_dataset("flights", flight_table())
    >>> handle = service.submit_mine("flights", k=3, variant="optimized")
    >>> result = handle.result()          # MiningResult, as from mine()
    >>> service.query("SELECT COUNT(*) FROM flights").scalar()

See :mod:`repro.service.service` for the architecture overview.
"""

from repro.service.budget import (
    ADMISSION_BUDGET,
    ADMISSION_OVERSUBSCRIBE,
    ADMISSION_POLICIES,
    BudgetGrant,
    EngineBudget,
)
from repro.service.cache import ResultCache
from repro.service.fingerprint import mining_fingerprint, sql_fingerprint
from repro.service.jobs import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    Job,
    JobHandle,
    JobMetrics,
)
from repro.service.scheduler import JobScheduler
from repro.service.service import (
    DatasetHandle,
    RuleMiningService,
    ServiceConfig,
)

__all__ = [
    "ADMISSION_BUDGET",
    "ADMISSION_OVERSUBSCRIBE",
    "ADMISSION_POLICIES",
    "BudgetGrant",
    "DatasetHandle",
    "EngineBudget",
    "Job",
    "JobHandle",
    "JobMetrics",
    "JobScheduler",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "ResultCache",
    "RuleMiningService",
    "ServiceConfig",
    "mining_fingerprint",
    "sql_fingerprint",
]
