"""`RuleMiningService`: concurrent serving façade over the SIRUM engines.

The paper frames informative rule mining as an *interactive* workload —
analysts re-issue overlapping mining and SQL requests against the same
datasets — so the service optimizes for exactly that shape:

1. **Admission** — a bounded priority queue in front of a worker pool
   (:mod:`repro.service.scheduler`); overflow rejects with
   :class:`~repro.common.errors.QueueFullError` rather than buffering
   unboundedly.
2. **Coalescing** — identical in-flight requests (same dataset version
   and canonical fingerprint, :mod:`repro.service.fingerprint`) share
   one execution; duplicates get extra handles onto the same job.
3. **Versioned result cache** — completed results live in a TTL + LRU
   cache (:mod:`repro.service.cache`) keyed by the catalog/dataset
   version counter, so re-registering a dataset structurally
   invalidates every cached result computed from its old contents.

Requests resolve to the existing engines: mining runs the operator
miner (:class:`~repro.core.miner.Sirum`) or the SQL-driven miner
(:class:`~repro.platforms.sql_sirum.SqlSirum`), optionally metered as a
named platform sim; SQL queries run on one shared thread-safe
:class:`~repro.sql.engine.SqlEngine`.  Per-job queue-wait and run-time
aggregate into a :class:`~repro.engine.metrics.MetricsRegistry`
(phases ``"queue_wait"`` / ``"execute"`` / ``"budget_wait"`` plus
counters), surfaced by :meth:`RuleMiningService.stats`.

A fourth mechanism keeps the two parallelism axes from multiplying:
**engine-worker budgeting** (:mod:`repro.service.budget`).  Each
mining job's simulated cluster runs real engine workers
(``engine_parallelism``), and with ``num_workers`` jobs in flight the
naive product oversubscribes the host.  Under
``ServiceConfig(admission="budget")`` (the default) every job acquires
its engine workers from one machine-wide
:class:`~repro.service.budget.EngineBudget` capped at
``max_engine_workers``: the granted degree shrinks toward
``min_engine_parallelism`` (serial, by default) when the machine is
busy and re-expands as running jobs release their slots, so the
aggregate never exceeds the cap.  Granted-vs-requested degree and
budget-wait time land in each job's :class:`JobMetrics` and the
service counters.  ``admission="oversubscribe"`` restores the old
N x M behaviour.
"""

import inspect
import threading

from repro.common.errors import ServiceClosedError, ServiceError
from repro.core.codec import RowCodec
from repro.engine.cluster import (
    EXECUTOR_REMOTE,
    EXECUTORS,
    default_parallelism,
)
from repro.core.config import variant_config
from repro.core.measure import MeasureTransform
from repro.core.miner import Sirum, make_default_cluster
from repro.engine.metrics import MetricsRegistry
from repro.service.budget import (
    ADMISSION_BUDGET,
    ADMISSION_POLICIES,
    EngineBudget,
)
from repro.service.cache import ResultCache
from repro.service.fingerprint import mining_fingerprint, sql_fingerprint
from repro.service.jobs import PRIORITY_NORMAL, Job, JobHandle
from repro.service.scheduler import JobScheduler
from repro.sql.engine import SqlEngine

#: Mining execution architectures the service can route to.
MINING_ENGINES = ("operators", "sql")


def _accepts_budget_grant(factory):
    """True when ``factory`` can receive a ``budget_grant`` keyword."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins/C callables: assume not
        return False
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if (param.name == "budget_grant"
                and param.kind is not inspect.Parameter.POSITIONAL_ONLY):
            return True
    return False


class ServiceConfig:
    """Tunables for :class:`RuleMiningService`."""

    def __init__(self, num_workers=4, max_queue_depth=64,
                 cache_capacity=256, cache_ttl_seconds=None,
                 default_priority=PRIORITY_NORMAL,
                 default_deadline_seconds=None,
                 engine_parallelism=None, engine_executor=None,
                 max_engine_workers=None, admission=ADMISSION_BUDGET,
                 min_engine_parallelism=1, budget_wait_seconds=None,
                 shard_workers=None):
        if num_workers < 1:
            raise ServiceError("num_workers must be at least 1")
        if max_queue_depth < 1:
            raise ServiceError("max_queue_depth must be at least 1")
        if engine_parallelism is not None and engine_parallelism < 1:
            raise ServiceError("engine_parallelism must be at least 1")
        if engine_executor is not None and engine_executor not in EXECUTORS:
            raise ServiceError(
                "engine_executor must be one of %s" % ", ".join(EXECUTORS)
            )
        if admission not in ADMISSION_POLICIES:
            raise ServiceError(
                "admission must be one of %s, got %r"
                % (", ".join(ADMISSION_POLICIES), admission)
            )
        if max_engine_workers is not None and max_engine_workers < 1:
            raise ServiceError("max_engine_workers must be at least 1")
        if min_engine_parallelism < 1:
            raise ServiceError("min_engine_parallelism must be at least 1")
        if budget_wait_seconds is not None and budget_wait_seconds <= 0:
            raise ServiceError("budget_wait_seconds must be positive")
        if engine_executor == EXECUTOR_REMOTE and not shard_workers:
            raise ServiceError(
                "engine_executor='remote' needs shard_workers "
                "(a list of 'host:port' addresses)"
            )
        self.num_workers = num_workers
        self.max_queue_depth = max_queue_depth
        self.cache_capacity = cache_capacity
        self.cache_ttl_seconds = cache_ttl_seconds
        self.default_priority = default_priority
        self.default_deadline_seconds = default_deadline_seconds
        #: Workers of each mining job's simulated-cluster engine
        #: (intra-request parallelism, on top of the worker pool's
        #: cross-request concurrency).  None defers to REPRO_PARALLELISM.
        #: Under ``admission="budget"`` this is the degree each job
        #: *requests*; the budget may grant less.
        self.engine_parallelism = engine_parallelism
        #: Pool kind those engine workers run on ("thread"/"process");
        #: None defers to REPRO_EXECUTOR.
        self.engine_executor = engine_executor
        #: Machine-wide engine-worker cap shared by all concurrent jobs
        #: (None: the host's usable core count).  Only meaningful with
        #: ``admission="budget"``.
        self.max_engine_workers = max_engine_workers
        #: ``"budget"`` (default): jobs acquire engine workers from a
        #: shared :class:`~repro.service.budget.EngineBudget` — the
        #: aggregate degree never exceeds ``max_engine_workers``, jobs
        #: degrade toward serial or wait when the machine is busy.
        #: ``"oversubscribe"``: the pre-budget behaviour — every job
        #: gets its full requested degree regardless of load.
        self.admission = admission
        #: Smallest degree the budget ever grants (degrade floor).
        self.min_engine_parallelism = min_engine_parallelism
        #: Bound on how long a job may wait for budget slots before
        #: failing with BudgetExhaustedError (None: wait indefinitely).
        self.budget_wait_seconds = budget_wait_seconds
        #: Remote shard-worker addresses ("host:port").  Required with
        #: ``engine_executor="remote"`` (every job runs on them); with
        #: a local executor they are *spill* capacity — under
        #: ``admission="budget"`` a job the local pool cannot admit is
        #: granted remote workers and runs with ``executor="remote"``
        #: instead of queuing.
        self.shard_workers = (
            tuple(str(w) for w in shard_workers) if shard_workers else ()
        )


class DatasetHandle:
    """One registered dataset version: table plus reusable derived state.

    ``version`` is the catalog version at registration — re-registering
    a name produces a *new* handle with a higher version, which is what
    keys (and therefore invalidates) cached results.  The row codec and
    measure transform are pure functions of the table, computed lazily
    once and shared by every mining job on this version (see
    ``Sirum.mine(dataset_state=...)``).
    """

    def __init__(self, name, table, version):
        self.name = name
        self.table = table
        self.version = version
        self._codec = None
        self._transform = None
        self._lock = threading.Lock()

    @property
    def codec(self):
        with self._lock:
            if self._codec is None:
                self._codec = RowCodec.from_table(self.table)
            return self._codec

    @property
    def transform(self):
        with self._lock:
            if self._transform is None:
                self._transform = MeasureTransform.fit(self.table.measure)
            return self._transform

    def __repr__(self):
        return "DatasetHandle(%r, version=%d, rows=%d)" % (
            self.name, self.version, len(self.table)
        )


class RuleMiningService:
    """Multiplexes concurrent mining and SQL requests over one engine set.

    Parameters
    ----------
    config:
        A :class:`ServiceConfig`; defaults are sized for tests/examples.
    make_cluster:
        Zero-argument factory for the simulated cluster each operator
        mining job runs on (fresh per job so metrics don't interleave).
    """

    def __init__(self, config=None, make_cluster=None):
        self.config = config or ServiceConfig()
        self.engine = SqlEngine()
        self.catalog = self.engine.catalog
        if self.config.admission == ADMISSION_BUDGET:
            # With a local executor, configured shard workers are the
            # budget's spill capacity; with engine_executor="remote"
            # every job already runs on them, so there is nothing to
            # spill *to*.
            spill_workers = (
                () if self.config.engine_executor == EXECUTOR_REMOTE
                else self.config.shard_workers
            )
            self._budget = EngineBudget(
                max_engine_workers=self.config.max_engine_workers,
                min_parallelism=self.config.min_engine_parallelism,
                remote_workers=spill_workers,
            )
        else:
            self._budget = None
        if make_cluster is None:
            parallelism = self.config.engine_parallelism
            executor = self.config.engine_executor
            shard_workers = self.config.shard_workers

            def make_cluster(budget_grant=None):
                # Under budget admission the configured parallelism was
                # the *request*; the grant carries the degree actually
                # allocated and the cluster releases it on close.  A
                # *spilled* grant holds remote shard workers instead of
                # local slots — the job runs on them.
                if budget_grant is not None and budget_grant.spilled:
                    return make_default_cluster(
                        executor=EXECUTOR_REMOTE,
                        workers=list(budget_grant.remote_addresses),
                        budget_grant=budget_grant,
                    )
                return make_default_cluster(
                    parallelism=(None if budget_grant is not None
                                 else parallelism),
                    executor=executor, budget_grant=budget_grant,
                    workers=(list(shard_workers)
                             if executor == EXECUTOR_REMOTE else None),
                )

        self._make_cluster = make_cluster
        if self._budget is not None and not _accepts_budget_grant(
                make_cluster):
            raise ServiceError(
                "admission='budget' needs a make_cluster factory that "
                "accepts a budget_grant keyword (the grant carries the "
                "allocated degree and must be released when the cluster "
                "closes); pass admission='oversubscribe' to opt out"
            )
        self._scheduler = JobScheduler(
            num_workers=self.config.num_workers,
            max_queue_depth=self.config.max_queue_depth,
        )
        self._cache = ResultCache(
            capacity=self.config.cache_capacity,
            ttl_seconds=self.config.cache_ttl_seconds,
        )
        self._datasets = {}
        self._inflight = {}  # key -> Job
        self._lock = threading.Lock()
        self._metrics = MetricsRegistry()
        self._stats_sections = {}
        # Service-wide placement totals, folded from each job cluster's
        # PlacementTracker just before the cluster closes.
        self._placement = {
            "shards": 0,
            "affinity_hits": 0,
            "affinity_misses": 0,
            "rebalances": 0,
            "worker_failures": 0,
            "placed_stages": 0,
            "unplaced_stages": 0,
            "placed_jobs": 0,
            "unplaced_jobs": 0,
        }
        self._closed = False

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------

    def register_dataset(self, name, table, row_id_column=None):
        """Register (or replace) dataset ``name``; returns its handle.

        Replacement bumps the catalog version: in-flight jobs against
        the old version finish against the old table object (their
        results are *not* cached into the new version), and every
        cached result for the old version is evicted.
        """
        with self._lock:
            # Same-name registrations serialize here, so the versioned
            # lookup below pairs *our* relation with a version that is
            # current for it (different-name registrations may inflate
            # the number, which keys just as uniquely).
            self.engine.register_table(
                name, table, row_id_column=row_id_column
            )
            _, version = self.catalog.lookup_with_version(name)
            handle = DatasetHandle(name, table, version)
            replacing = name in self._datasets
            self._datasets[name] = handle
            self._metrics.increment("datasets_registered")
        if replacing:
            self._cache.invalidate_dataset(name)
        return handle

    def dataset(self, name):
        """The current :class:`DatasetHandle` for ``name``."""
        with self._lock:
            try:
                return self._datasets[name]
            except KeyError:
                raise ServiceError(
                    "unknown dataset %r; register_dataset() it first" % name
                ) from None

    def datasets(self):
        """Registered dataset names with their current versions."""
        with self._lock:
            return {
                name: handle.version
                for name, handle in sorted(self._datasets.items())
            }

    # ------------------------------------------------------------------
    # Asynchronous API
    # ------------------------------------------------------------------

    def submit_mine(self, dataset, k=10, variant="optimized",
                    priority=None, deadline_seconds=None,
                    engine="operators", platform=None, **config_overrides):
        """Enqueue a mining request; returns a :class:`JobHandle`.

        ``engine="operators"`` runs :class:`Sirum` on a fresh simulated
        cluster; ``engine="sql"`` runs the §2.6.1 SQL-architecture
        miner.  ``platform`` names a platform sim (``"postgres"``,
        ``"hive"``, ...) to meter the job's cluster as.  Remaining
        keyword arguments override :class:`SirumConfig` fields.
        """
        if engine not in MINING_ENGINES:
            raise ServiceError(
                "unknown mining engine %r; choose from %s"
                % (engine, ", ".join(MINING_ENGINES))
            )
        handle = self.dataset(dataset)
        fingerprint = mining_fingerprint(
            variant=variant, engine=engine, platform=platform,
            k=k, **config_overrides
        )
        key = ("mine", dataset, handle.version, fingerprint)
        budget_info = {}

        def runner():
            # The job owns its cluster: close it however the job ends,
            # or every parallel mining job would leak a live worker
            # pool (the result only keeps a metrics snapshot) — and,
            # under budget admission, its engine-worker slots.
            cluster = self._job_cluster(
                platform, metered=engine == "operators",
                budget_info=budget_info,
            )
            try:
                if engine == "sql":
                    from repro.platforms.sql_sirum import SqlSirum

                    config = variant_config(variant, k=k, **config_overrides)
                    return SqlSirum(
                        k=config.k, epsilon=config.epsilon, cluster=cluster
                    ).mine(handle.table)
                config = variant_config(variant, k=k, **config_overrides)
                return Sirum(config).mine(
                    handle.table, cluster=cluster, dataset_state=handle
                )
            finally:
                if cluster is not None:
                    self._fold_placement(cluster.placement_stats())
                    cluster.close()

        def version_current():
            # Called with the service lock held (from on_done).
            return self._datasets.get(dataset) is handle

        return self._submit(
            key, runner, "mine:%s" % dataset, priority, deadline_seconds,
            version_current, budget_info=budget_info,
        )

    def submit_query(self, sql_text, priority=None, deadline_seconds=None):
        """Enqueue a SQL request against the shared engine/catalog.

        Cached results key on the *catalog-wide* version (a query may
        read any number of tables), so any registration invalidates
        them — the same conservative rule as the engine's plan cache.
        """
        version = self.catalog.version
        key = ("sql", version, sql_fingerprint(sql_text))

        def runner():
            return self.engine.query(sql_text)

        def version_current():
            return self.catalog.version == version

        return self._submit(
            key, runner, "sql", priority, deadline_seconds, version_current,
        )

    # ------------------------------------------------------------------
    # Synchronous wrappers
    # ------------------------------------------------------------------

    def mine(self, dataset, timeout=None, **kwargs):
        """Submit a mining request and wait for its result."""
        return self.submit_mine(dataset, **kwargs).result(timeout)

    def query(self, sql_text, timeout=None, **kwargs):
        """Submit a SQL request and wait for its :class:`ResultSet`."""
        return self.submit_query(sql_text, **kwargs).result(timeout)

    # ------------------------------------------------------------------
    # Shared submission path
    # ------------------------------------------------------------------

    def _job_cluster(self, platform, metered=True, budget_info=None):
        """Build one job's engine cluster, under budget admission.

        With the budget enabled, acquiring the engine-worker grant
        happens *here*, on the job's worker thread — a job blocked on
        slots holds a service worker but no engine workers, and the
        machine-wide aggregate degree stays within the budget.  The
        grant travels inside the cluster and is released by
        ``cluster.close()`` on every completion and abort path (the
        runners close in ``finally``).  SQL jobs build no cluster and
        spawn no engine workers, so they bypass the budget.
        """
        if platform is None and not metered:
            return None
        grant = None
        if self._budget is not None:
            requested = (self.config.engine_parallelism
                         or default_parallelism())
            grant = self._budget.acquire(
                requested, timeout=self.config.budget_wait_seconds
            )
            if budget_info is not None:
                budget_info.update(
                    requested=grant.requested,
                    granted=grant.granted,
                    wait_seconds=grant.wait_seconds,
                    slots=grant.slots,
                    spilled=grant.spilled,
                    remote_addresses=grant.remote_addresses,
                )
        try:
            if platform is not None:
                from repro.platforms.base import make_platform_cluster

                # Platform sims change the cost regime, not the real
                # execution mode: the configured executor/parallelism
                # (or the budget grant's degree) applies to them too.
                return make_platform_cluster(
                    platform,
                    parallelism=(None if grant is not None
                                 else self.config.engine_parallelism),
                    executor=self.config.engine_executor,
                    budget_grant=grant,
                )
            if grant is not None:
                return self._make_cluster(budget_grant=grant)
            return self._make_cluster()
        except BaseException:
            # The cluster never existed to release the grant for us.
            if grant is not None:
                grant.release()
            raise

    def _submit(self, key, runner, label, priority, deadline_seconds,
                version_current, budget_info=None):
        if priority is None:
            priority = self.config.default_priority
        if deadline_seconds is None:
            deadline_seconds = self.config.default_deadline_seconds
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            self._metrics.increment("jobs_submitted")
            hit, value = self._cache.get(key)
            if hit:
                self._metrics.increment("cache_hits")
                return JobHandle.completed(value, cache_hit=True)
            self._metrics.increment("cache_misses")
            leader = self._inflight.get(key)
            if leader is not None:
                self._metrics.increment("coalesce_hits")
                return JobHandle(leader, coalesced=True)

            def on_done(job, key=key):
                with self._lock:
                    # Publish to the cache *before* retiring the
                    # in-flight entry, inside one locked section:
                    # a duplicate submission therefore always sees
                    # either the in-flight leader or the cached result,
                    # never a gap in which it would re-execute.
                    if job.exception is None and version_current():
                        self._cache.put(key, job.result)
                    self._inflight.pop(key, None)
                    self._charge_phase("queue_wait", job.queue_wait_seconds)
                    self._charge_phase("execute", job.run_seconds)
                    info = job.budget_info
                    if "granted" in info:
                        self._charge_phase(
                            "budget_wait", info["wait_seconds"]
                        )
                        self._metrics.increment("budget_grants")
                        self._metrics.increment(
                            "budget_requested_workers", info["requested"]
                        )
                        self._metrics.increment(
                            "budget_granted_workers", info["granted"]
                        )
                        if info["granted"] < info["requested"]:
                            self._metrics.increment("budget_degraded_grants")
                        if info.get("spilled"):
                            self._metrics.increment("budget_spilled_grants")
                    if job.exception is None:
                        self._metrics.increment("jobs_completed")
                    else:
                        self._metrics.increment("jobs_failed")

            job = Job(
                runner, label=label, priority=priority,
                deadline_seconds=deadline_seconds, on_done=on_done,
            )
            if budget_info is not None:
                # The runner and the job share one dict, so grant
                # numbers surface in JobHandle.metrics() and on_done.
                job.budget_info = budget_info
            self._inflight[key] = job
        try:
            self._scheduler.submit(job)
        except ServiceError:
            with self._lock:
                self._inflight.pop(key, None)
                self._metrics.increment("queue_rejections")
            raise
        return JobHandle(job)

    def _charge_phase(self, phase, seconds):
        # MetricsRegistry's phase stack is not thread-safe; callers
        # hold the service lock, making push/charge/pop atomic here.
        self._metrics.push_phase(phase)
        self._metrics.charge(seconds)
        self._metrics.pop_phase()

    def _fold_placement(self, stats):
        """Fold one closing cluster's placement counters into the totals."""
        with self._lock:
            totals = self._placement
            totals["shards"] = max(totals["shards"], stats.get("shards", 0))
            for field in ("affinity_hits", "affinity_misses", "rebalances",
                          "worker_failures", "placed_stages",
                          "unplaced_stages"):
                totals[field] += stats.get(field, 0)
            if stats.get("enabled") and stats.get("placed_stages", 0):
                totals["placed_jobs"] += 1
            else:
                totals["unplaced_jobs"] += 1

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def register_stats_section(self, name, provider):
        """Attach ``provider()`` as one extra ``stats()[name]`` section.

        Front-ends wrapping the service (the network server) publish
        their own counters this way, so one ``stats()`` call reports
        the whole stack — mirroring the built-in budget/buffer-pool
        sections.
        """
        with self._lock:
            if name in self._stats_sections:
                raise ServiceError(
                    "stats section %r is already registered" % name
                )
            self._stats_sections[name] = provider

    def unregister_stats_section(self, name):
        """Detach a section registered by :meth:`register_stats_section`."""
        with self._lock:
            if name not in self._stats_sections:
                raise ServiceError("no stats section %r registered" % name)
            del self._stats_sections[name]

    def stats(self):
        """One dict with job, queue, cache and timing statistics."""
        with self._lock:
            counters = dict(self._metrics.counters)
            phases = dict(self._metrics.phase_seconds)
            inflight = len(self._inflight)
            sections = dict(self._stats_sections)
        extra = {name: provider() for name, provider in sections.items()}
        return dict({
            "jobs": {
                "submitted": counters.get("jobs_submitted", 0),
                "completed": counters.get("jobs_completed", 0),
                "failed": counters.get("jobs_failed", 0),
                "inflight": inflight,
            },
            "queue": {
                "depth": self._scheduler.queue_depth,
                "max_depth": self.config.max_queue_depth,
                "workers": self.config.num_workers,
                "rejections": counters.get("queue_rejections", 0),
            },
            "cache": self._cache.info,
            "coalesce_hits": counters.get("coalesce_hits", 0),
            "phase_seconds": phases,
            "plan_cache": self.engine.plan_cache_info,
            "datasets": self.datasets(),
            "budget": self.budget_stats(),
            "buffer_pool": self.buffer_pool_stats(),
            "placement": self.placement_stats(),
        }, **extra)

    def placement_stats(self):
        """Shard-placement totals across every finished job cluster.

        Shard count (largest seen), affinity hit/miss counters with the
        derived hit rate, rebalances, and how many stages/jobs ran
        placed versus unplaced (see
        :class:`~repro.engine.placement.PlacementTracker`).
        """
        with self._lock:
            stats = dict(self._placement)
        touched = stats["affinity_hits"] + stats["affinity_misses"]
        stats["affinity_hit_rate"] = (
            stats["affinity_hits"] / touched if touched else 0.0
        )
        return stats

    def buffer_pool_stats(self):
        """Buffer-pool counters of every file-backed registered dataset.

        ``{"attached": False}`` when no registered dataset is
        file-backed; otherwise per-dataset hit-rate / resident-bytes /
        eviction counters from each table's
        :class:`~repro.data.bufferpool.BufferPool`.  Either way the
        ``attachments`` entry carries this process's worker-side
        attachment-cache hit/miss counters
        (:func:`repro.engine.shm.attachment_cache_stats`) — repeat
        ``attached_handle``/``attached_segment`` hits are the
        observable payoff of placed execution.
        """
        from repro.data.table import FileBackedTable
        from repro.engine.shm import attachment_cache_stats

        with self._lock:
            handles = sorted(self._datasets.items())
        pools = {
            name: handle.table.buffer_pool.stats()
            for name, handle in handles
            if isinstance(handle.table, FileBackedTable)
        }
        attachments = attachment_cache_stats()
        if not pools:
            return {"attached": False, "attachments": attachments}
        return {
            "attached": True, "datasets": pools, "attachments": attachments,
        }

    def budget_stats(self):
        """Engine-worker budget state (admission policy + counters)."""
        if self._budget is None:
            return {"admission": self.config.admission}
        stats = self._budget.stats()
        stats["admission"] = self.config.admission
        return stats

    def close(self, wait=True):
        """Stop admissions and (by default) drain queued jobs."""
        with self._lock:
            self._closed = True
        self._scheduler.close(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
