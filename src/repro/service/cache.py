"""Versioned result cache: LRU capacity bound plus optional TTL.

Generalizes the SQL engine's plan cache (PR 1) from plans to full
request results.  Keys are tuples whose shape the service controls —
``("mine", dataset, version, fingerprint)`` and
``("sql", version, fingerprint)`` — so *version invalidation is
structural*: re-registering a dataset bumps the catalog version, every
new request keys to the new version, and stale entries simply become
unreachable until LRU eviction (or an explicit
:meth:`ResultCache.invalidate_dataset`) reclaims them.

TTL bounds staleness for time-sensitive deployments; ``ttl_seconds
= None`` (the default) trusts version invalidation alone, which is
exact for this engine because every data change goes through the
catalog.
"""

import threading
import time
from collections import OrderedDict


class ResultCache:
    """Thread-safe TTL + LRU mapping of request keys to results."""

    def __init__(self, capacity=256, ttl_seconds=None, clock=time.monotonic):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be None or positive")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries = OrderedDict()  # key -> (expires_at | None, value)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def get(self, key):
        """``(hit, value)`` — a miss returns ``(False, None)``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return False, None
            expires_at, value = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key, value):
        """Insert/overwrite ``key``; evicts LRU entries over capacity."""
        if self.capacity == 0:
            return
        expires_at = (
            None if self.ttl_seconds is None
            else self._clock() + self.ttl_seconds
        )
        with self._lock:
            self._entries[key] = (expires_at, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_dataset(self, dataset):
        """Eagerly drop mining entries keyed to ``dataset``.

        Matches the key *structurally* — ``("mine", dataset, ...)`` —
        so a dataset that happens to be named ``"sql"`` or ``"mine"``
        cannot wipe unrelated entries.  Version-keyed entries would die
        of unreachability anyway; this frees their memory immediately
        on re-registration.  Returns the number of entries removed.
        """
        return self.invalidate_where(
            lambda key: len(key) >= 2 and key[0] == "mine"
            and key[1] == dataset
        )

    def invalidate_where(self, predicate):
        """Drop every entry whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    @property
    def info(self):
        """Statistics dict mirroring ``SqlEngine.plan_cache_info``."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "size": len(self._entries),
                "max_size": self.capacity,
                "ttl_seconds": self.ttl_seconds,
            }
