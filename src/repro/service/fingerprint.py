"""Request fingerprints: canonical keys for coalescing and caching.

Two requests coalesce (and share cache entries) exactly when their
fingerprints match, so fingerprints must be *canonical* — insensitive
to spelling differences that cannot change the answer — and *total* —
every semantically distinct request maps to a distinct key.

Mining requests canonicalize through the resolved
:class:`~repro.core.config.SirumConfig`: variant presets and explicit
overrides that land on the same configuration (e.g. ``variant="rct"``
vs ``variant="baseline", use_rct=True``) fingerprint identically.

SQL requests canonicalize through parse → render: whitespace, keyword
case and redundant parentheses disappear, while identifier spelling is
preserved (the engine itself is case-insensitive on names, but keeping
the analyst's spelling makes fingerprints debuggable).  Text the parser
rejects falls back to whitespace-normalized form — such requests still
coalesce with byte-identical duplicates, and all of them fail with the
same syntax error.
"""

from repro.core.config import variant_config
from repro.sql.errors import SqlError
from repro.sql.parser import parse
from repro.sql.render import render


def mining_fingerprint(variant="optimized", engine="operators",
                       platform=None, **config_overrides):
    """Canonical hashable key for one mining request.

    ``engine`` selects the execution architecture (``"operators"`` for
    the Spark-style miner, ``"sql"`` for the §2.6.1 SQL-driven miner);
    ``platform`` optionally names a metered platform sim.  All
    remaining keyword arguments are :class:`SirumConfig` overrides.
    """
    config = variant_config(variant, **config_overrides)
    if engine == "sql":
        # The SQL-architecture miner only consumes k and epsilon, so
        # variant flags must not split otherwise-identical requests.
        fields = (("epsilon", config.epsilon), ("k", config.k))
    else:
        fields = tuple(sorted(config.__dict__.items()))
    return (("engine", engine), ("platform", platform)) + fields


def sql_fingerprint(sql_text):
    """Canonical form of ``sql_text`` (see module docstring)."""
    try:
        return render(parse(sql_text))
    except SqlError:
        return " ".join(sql_text.split())
