"""The wire protocol: length-prefixed frames with JSON payloads.

Every frame is a fixed 12-byte header followed by a JSON payload::

    >B  version    protocol version (PROTOCOL_VERSION)
    >B  kind       frame kind (KIND_*)
    >H  flags      reserved, must be zero
    >I  request_id caller-chosen id echoed on the response
    >I  length     payload byte length

Frames are self-delimiting, so any number may share a TCP segment and
one may span many segments; :class:`FrameDecoder` reassembles them from
arbitrary chunks.  Payloads are compact JSON (msgpack is not in the
container's dependency set; JSON round-trips Python floats bit-exactly
via repr, which the result codec in :mod:`repro.net.wire` relies on).

Error containment is per-frame where the header allows it: an
oversized-but-well-formed frame is *skipped* (its payload drained and
discarded) and surfaced as a :class:`FrameError` carrying the request
id, so the server can answer with a typed error and keep the
connection.  An unknown protocol version is fatal — later versions may
change the header layout, so nothing after the version byte can be
trusted — and raises :class:`~repro.common.errors.ProtocolError`.

The frame layer is direction-agnostic: on the shard-worker connection
(:mod:`repro.net.worker`) the *worker* also initiates ``KIND_REQUEST``
frames back at the driver (``block_fetch``, for colfile block
shipping), using request ids at or above ``WORKER_CALLBACK_ID_BASE``
so the two id spaces on the shared socket never collide.  The
normative wire spec — header layout, op tables for both directions,
error-code registry and bit-identity encoding rules — lives in
``docs/protocol.md``.
"""

import json
import struct

import numpy as np

from repro.common.errors import FrameTooLargeError, ProtocolError

PROTOCOL_VERSION = 1

#: Frame kinds.
KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_ERROR = 3
KIND_EVENT = 4
KIND_GOAWAY = 5

_KINDS = (KIND_REQUEST, KIND_RESPONSE, KIND_ERROR, KIND_EVENT, KIND_GOAWAY)

_HEADER = struct.Struct(">BBHII")
HEADER_BYTES = _HEADER.size

#: Default cap on one frame's payload.  Large enough for any result the
#: test/bench datasets produce, small enough that a hostile length
#: field cannot balloon the reassembly buffer.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024


def _json_default(value):
    # Numpy scalars leak into payloads (counts, measures); their Python
    # equivalents round-trip bit-exactly for int64/float64.
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(
        "payload value %r of type %s is not wire-serializable"
        % (value, type(value).__name__)
    )


def dumps(payload):
    """Encode one payload object as compact UTF-8 JSON bytes."""
    try:
        return json.dumps(
            payload, separators=(",", ":"), default=_json_default
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(str(exc)) from None


def loads(data):
    """Decode payload bytes; raises ProtocolError on malformed JSON."""
    try:
        return json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("malformed frame payload: %s" % exc) from None


class Frame:
    """One decoded frame."""

    __slots__ = ("kind", "request_id", "payload")

    def __init__(self, kind, request_id, payload):
        self.kind = kind
        self.request_id = request_id
        self.payload = payload

    def __repr__(self):
        return "Frame(kind=%d, request_id=%d)" % (self.kind, self.request_id)


class FrameError:
    """A recoverable per-frame decode failure (connection survives).

    Yielded by :meth:`FrameDecoder.feed` in place of a frame when the
    header was valid (so the stream stays delimited and the request id
    is known) but the frame itself must be rejected — oversized
    payload, unknown kind, malformed JSON.
    """

    __slots__ = ("request_id", "exception")

    def __init__(self, request_id, exception):
        self.request_id = request_id
        self.exception = exception

    def __repr__(self):
        return "FrameError(request_id=%d, %r)" % (
            self.request_id, self.exception,
        )


def encode_frame(kind, request_id, payload,
                 max_frame_bytes=DEFAULT_MAX_FRAME_BYTES):
    """Serialize one frame; raises FrameTooLargeError over the cap."""
    body = dumps(payload)
    if max_frame_bytes is not None and len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            "frame payload is %d bytes, over the %d-byte cap"
            % (len(body), max_frame_bytes)
        )
    header = _HEADER.pack(
        PROTOCOL_VERSION, kind, 0, request_id, len(body)
    )
    return header + body


class FrameDecoder:
    """Incremental frame reassembly from arbitrary byte chunks.

    ``feed(data)`` returns the list of :class:`Frame` /
    :class:`FrameError` events completed by ``data`` — possibly empty
    (mid-frame), possibly several (coalesced segments).  The decoder
    never buffers more than one header plus ``max_frame_bytes``:
    oversized frames are drained chunk-by-chunk and reported as a
    :class:`FrameError` once fully skipped.
    """

    def __init__(self, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._header = None       # parsed (kind, request_id, length)
        self._skip_remaining = 0  # bytes of an oversized payload left
        self._skip_request_id = 0
        self._skip_length = 0

    def feed(self, data):
        """Consume ``data``; returns completed Frame/FrameError events."""
        self._buffer.extend(data)
        events = []
        while True:
            if self._skip_remaining:
                drained = min(self._skip_remaining, len(self._buffer))
                del self._buffer[:drained]
                self._skip_remaining -= drained
                if self._skip_remaining:
                    return events  # oversized payload still arriving
                events.append(FrameError(
                    self._skip_request_id,
                    FrameTooLargeError(
                        "frame payload is %d bytes, over the %d-byte cap"
                        % (self._skip_length, self.max_frame_bytes)
                    ),
                ))
                continue
            if self._header is None:
                if len(self._buffer) < HEADER_BYTES:
                    return events
                version, kind, flags, request_id, length = _HEADER.unpack(
                    bytes(self._buffer[:HEADER_BYTES])
                )
                if version != PROTOCOL_VERSION:
                    # Fatal: a different version may not even share
                    # this header layout, so resynchronization is
                    # impossible.  Leave the buffer untouched for
                    # diagnostics and make every later feed fail too.
                    raise ProtocolError(
                        "unsupported protocol version %d (this end "
                        "speaks %d)" % (version, PROTOCOL_VERSION)
                    )
                del self._buffer[:HEADER_BYTES]
                if length > self.max_frame_bytes:
                    self._skip_remaining = length
                    self._skip_request_id = request_id
                    self._skip_length = length
                    continue
                self._header = (kind, request_id, length, flags)
            kind, request_id, length, flags = self._header
            if len(self._buffer) < length:
                return events
            body = bytes(self._buffer[:length])
            del self._buffer[:length]
            self._header = None
            if kind not in _KINDS:
                events.append(FrameError(request_id, ProtocolError(
                    "unknown frame kind %d" % kind
                )))
                continue
            if flags != 0:
                events.append(FrameError(request_id, ProtocolError(
                    "reserved flags must be zero, got %#x" % flags
                )))
                continue
            try:
                payload = loads(body)
            except ProtocolError as exc:
                events.append(FrameError(request_id, exc))
                continue
            events.append(Frame(kind, request_id, payload))
