"""Asyncio TCP front door for :class:`~repro.service.RuleMiningService`.

Architecture
------------
The server runs one asyncio event loop on its own thread (the service
itself is thread-based and blocking).  Each connection is a
:class:`ClientSession`; each request frame dispatches as its own task,
so a blocking ``result`` wait never stalls the connection's read loop.
Blocking service waits happen on a dedicated thread pool via
``run_in_executor`` — one waiter per distinct in-flight job, polling
``JobHandle.result`` so a server shutdown can abandon the wait.

Multi-tenancy
-------------
A session belongs to a *tenant* (declared by ``hello``; ``"default"``
otherwise).  Each tenant's :class:`TenantPolicy` carries a quota of
in-flight jobs — counted per *submission*, across all of the tenant's
connections — and a priority class that feeds the service's admission
queue.  Quota overflow rejects with
:class:`~repro.common.errors.TenantQuotaError` before the scheduler
ever sees the request.

Protocol-level coalescing
-------------------------
The server keys every submission by the service's own canonical
fingerprint (:mod:`repro.service.fingerprint`) plus the dataset
version, and concurrent identical requests — *from any connection* —
attach to one :class:`ServerJob` (one service submission, one result
serialization) instead of each entering the scheduler.  Hits surface
as ``stats()["net"]["coalesce_hits"]``.

Drain
-----
``drain()`` stops the listener, sends a GOAWAY frame to idle
connections, and waits for every accepted job to finish; sessions that
still have undelivered results stay connected so nothing accepted is
ever lost.  ``stop()`` then tears the loop down.

This front door is the only untrusted-facing endpoint: its ops (the
``_OPS`` table) accept data, never code.  Shard workers
(:mod:`repro.net.worker`) speak the same frame layer but execute
pickled kernels, and must stay on trusted networks.  The normative
wire spec for both endpoints is ``docs/protocol.md``.
"""

import asyncio
import itertools
import threading

from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro.common.errors import (
    ProtocolError,
    ResultTimeoutError,
    ServiceClosedError,
    ServiceError,
    TenantQuotaError,
    to_wire,
)
from repro.engine.metrics import MetricsRegistry
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    KIND_ERROR,
    KIND_EVENT,
    KIND_GOAWAY,
    KIND_REQUEST,
    KIND_RESPONSE,
    Frame,
    FrameDecoder,
    FrameError,
    encode_frame,
)
from repro.net.wire import result_to_wire, sanitize
from repro.service.fingerprint import mining_fingerprint, sql_fingerprint
from repro.service.jobs import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
)

#: Priority classes a tenant (or request) may name on the wire.
PRIORITY_CLASSES = {
    "high": PRIORITY_HIGH,
    "normal": PRIORITY_NORMAL,
    "low": PRIORITY_LOW,
}

DEFAULT_TENANT = "default"

#: Capabilities this server advertises in its ``hello`` response, so a
#: client can discover surface without probing: ``stats.placement``
#: (``stats()`` carries the shard-placement section) and
#: ``stats.buffer_pool.attachments`` (worker attachment-cache
#: counters).  Shard *execution* workers are a separate, trusted-only
#: endpoint (:mod:`repro.net.worker`) and are deliberately not part of
#: this untrusted-facing front door.
SERVER_FEATURES = ("stats.placement", "stats.buffer_pool.attachments")


class TenantPolicy:
    """Per-tenant admission policy: in-flight quota + priority class."""

    def __init__(self, max_inflight=8, priority="normal"):
        if max_inflight < 1:
            raise ServiceError("max_inflight must be at least 1")
        if priority not in PRIORITY_CLASSES:
            raise ServiceError(
                "priority must be one of %s, got %r"
                % (", ".join(sorted(PRIORITY_CLASSES)), priority)
            )
        self.max_inflight = max_inflight
        self.priority = priority

    @property
    def priority_value(self):
        return PRIORITY_CLASSES[self.priority]

    def __repr__(self):
        return "TenantPolicy(max_inflight=%d, priority=%r)" % (
            self.max_inflight, self.priority,
        )


class NetConfig:
    """Tunables for :class:`ServiceServer`."""

    def __init__(self, host="127.0.0.1", port=0, tenants=None,
                 default_tenant=None, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES,
                 completed_job_retention=1024, waiter_threads=32,
                 waiter_poll_seconds=0.25):
        self.host = host
        #: Port 0 binds an ephemeral port; read it back from
        #: ``ServiceServer.port`` after ``start()``.
        self.port = port
        #: tenant name -> :class:`TenantPolicy`.  Unlisted tenants get
        #: ``default_tenant``'s policy.
        self.tenants = dict(tenants or {})
        self.default_tenant = default_tenant or TenantPolicy()
        self.max_frame_bytes = max_frame_bytes
        #: Finished jobs kept addressable for late ``result`` fetches
        #: (e.g. after a client reconnects); oldest evicted first.
        self.completed_job_retention = completed_job_retention
        #: Threads for blocking result waits; more in-flight distinct
        #: jobs than this only delays completion *notifications*, never
        #: the jobs themselves.
        self.waiter_threads = waiter_threads
        #: Wait-loop poll interval — the latency bound on noticing a
        #: server shutdown from inside a blocking wait.
        self.waiter_poll_seconds = waiter_poll_seconds

    def policy_for(self, tenant):
        return self.tenants.get(tenant, self.default_tenant)


class ServerJob:
    """One distinct in-flight (or retained finished) wire job.

    Many submissions — across connections and tenants — may attach to
    one ServerJob; ``attached`` counts them per tenant so quota release
    on completion mirrors quota charge on submission.
    """

    __slots__ = (
        "job_id", "key", "handle", "label", "done_event", "ok",
        "result_payload", "error_payload", "attached", "finished",
        "cache_hit",
    )

    def __init__(self, job_id, key, handle, label):
        self.job_id = job_id
        self.key = key
        self.handle = handle
        self.label = label
        self.done_event = asyncio.Event()
        self.ok = None
        self.result_payload = None
        self.error_payload = None
        self.attached = Counter()
        self.finished = False
        self.cache_hit = handle.cache_hit


class ClientSession:
    """Per-connection state: tenant, in-flight jobs, stream flag."""

    __slots__ = (
        "session_id", "tenant", "writer", "write_lock", "subscribed",
        "jobs", "goaway_sent", "closed",
    )

    def __init__(self, session_id, writer):
        self.session_id = session_id
        self.tenant = DEFAULT_TENANT
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.subscribed = False
        self.jobs = set()
        self.goaway_sent = False
        self.closed = False


class ServiceServer:
    """Framed-protocol TCP server over one :class:`RuleMiningService`."""

    def __init__(self, service, config=None):
        self.service = service
        self.config = config or NetConfig()
        self.port = None
        self._loop = None
        self._thread = None
        self._listener = None
        self._started = threading.Event()
        self._start_error = None
        self._shutdown = None        # asyncio.Event, created on the loop
        self._stop_waiters = threading.Event()
        self._draining = False
        self._stopped = False
        self._sessions = {}
        self._session_ids = itertools.count(1)
        self._jobs = OrderedDict()   # job_id -> ServerJob (insert order)
        self._inflight_keys = {}     # coalesce key -> ServerJob
        self._tenant_inflight = Counter()
        self._tenant_counters = {}   # tenant -> Counter of event names
        self._metrics = MetricsRegistry()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.waiter_threads,
            thread_name_prefix="net-waiter",
        )

    # ------------------------------------------------------------------
    # Threaded lifecycle
    # ------------------------------------------------------------------

    def start(self, timeout=10.0):
        """Bind and serve on a background thread; returns the port."""
        if self._thread is not None:
            raise ServiceError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="net-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServiceError("server failed to start within %.1fs"
                               % timeout)
        if self._start_error is not None:
            raise self._start_error
        self.service.register_stats_section("net", self.net_stats)
        return self.port

    def _run_loop(self):
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start() or stop()
            self._start_error = exc
            self._started.set()

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            self._listener = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        except OSError as exc:
            self._start_error = ServiceError(
                "cannot bind %s:%d: %s"
                % (self.config.host, self.config.port, exc)
            )
            self._started.set()
            return
        self.port = self._listener.sockets[0].getsockname()[1]
        self._started.set()
        await self._shutdown.wait()
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        for session in list(self._sessions.values()):
            await self._close_session(session)

    def drain(self, timeout=None):
        """Stop accepting, flush in-flight jobs, GOAWAY idle clients.

        Returns True when every accepted job finished inside
        ``timeout`` (None: wait indefinitely).  Connected clients with
        undelivered results stay connected either way — drain never
        discards an accepted job's outcome.
        """
        self._require_running()
        future = asyncio.run_coroutine_threadsafe(
            self._drain(timeout), self._loop
        )
        return future.result()

    def stop(self):
        """Tear the server down (idempotent).  Drain first for grace."""
        if self._thread is None or self._stopped:
            return
        self._stopped = True
        self._stop_waiters.set()
        try:
            self.service.unregister_stats_section("net")
        except ServiceError:
            pass
        if self._start_error is None and self._loop is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout=30.0)
        self._executor.shutdown(wait=False)

    def _require_running(self):
        if self._thread is None or self._start_error is not None:
            raise ServiceError("server is not running")

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()

    # ------------------------------------------------------------------
    # Connection handling (loop thread)
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        if self._draining:
            # Refuse politely: a GOAWAY, then close.
            try:
                writer.write(encode_frame(KIND_GOAWAY, 0,
                                          {"reason": "draining"}))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        session = ClientSession(next(self._session_ids), writer)
        self._sessions[session.session_id] = session
        self._metrics.increment("net_connections_opened")
        decoder = FrameDecoder(self.config.max_frame_bytes)
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    break
                try:
                    events = decoder.feed(data)
                except ProtocolError as exc:
                    # Unknown version: answer once, then hang up — the
                    # stream cannot be re-delimited.
                    self._metrics.increment("net_protocol_errors")
                    await self._send(session, KIND_ERROR, 0, to_wire(exc))
                    break
                for event in events:
                    if isinstance(event, FrameError):
                        self._metrics.increment("net_protocol_errors")
                        await self._send(
                            session, KIND_ERROR, event.request_id,
                            to_wire(event.exception),
                        )
                        continue
                    self._metrics.increment("net_frames_in")
                    if event.kind != KIND_REQUEST:
                        self._metrics.increment("net_protocol_errors")
                        await self._send(
                            session, KIND_ERROR, event.request_id,
                            to_wire(ProtocolError(
                                "clients may only send REQUEST frames, "
                                "got kind %d" % event.kind
                            )),
                        )
                        continue
                    # Each request runs as its own task so a blocking
                    # `result` wait never stalls this read loop.
                    asyncio.ensure_future(
                        self._dispatch(session, event)
                    )
        except (ConnectionError, OSError):
            pass  # abrupt disconnect: jobs keep running (see below)
        except asyncio.CancelledError:
            # Loop teardown (stop()).  Swallowing the cancel lets the
            # task end cleanly instead of tripping asyncio.streams'
            # connection_made callback into logging a spurious
            # traceback; nothing outside awaits this task.
            pass
        finally:
            await self._close_session(session)

    async def _close_session(self, session):
        if session.closed:
            return
        session.closed = True
        self._sessions.pop(session.session_id, None)
        self._metrics.increment("net_connections_closed")
        # In-flight jobs deliberately survive their submitter: the
        # service computes them anyway and caches the result, so a
        # reconnecting client (or a coalesced peer) still gets it.
        try:
            session.writer.close()
        except (ConnectionError, OSError):
            pass

    async def _send(self, session, kind, request_id, payload):
        if session.closed:
            return
        try:
            frame = encode_frame(kind, request_id, payload,
                                 self.config.max_frame_bytes)
        except ProtocolError as exc:
            frame = encode_frame(KIND_ERROR, request_id, to_wire(exc))
        async with session.write_lock:
            if session.closed:
                return
            try:
                session.writer.write(frame)
                await session.writer.drain()
                self._metrics.increment("net_frames_out")
            except (ConnectionError, OSError):
                await self._close_session(session)

    # ------------------------------------------------------------------
    # Request dispatch (loop thread)
    # ------------------------------------------------------------------

    async def _dispatch(self, session, frame):
        op = None
        try:
            payload = frame.payload
            if not isinstance(payload, dict):
                raise ProtocolError("request payload must be an object")
            op = payload.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise ProtocolError("unknown op %r" % op)
            response = await handler(self, session, payload)
            await self._send(session, KIND_RESPONSE, frame.request_id,
                             response)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if op in ("submit_mine", "submit_query"):
                self._metrics.increment("net_submit_rejections")
            await self._send(session, KIND_ERROR, frame.request_id,
                             to_wire(exc))

    async def _op_hello(self, session, payload):
        tenant = payload.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError("tenant must be a non-empty string")
        session.tenant = tenant
        policy = self.config.policy_for(tenant)
        return {
            "tenant": tenant,
            "max_inflight": policy.max_inflight,
            "priority": policy.priority,
            "features": list(SERVER_FEATURES),
        }

    async def _op_submit_mine(self, session, payload):
        dataset = payload.get("dataset")
        if not isinstance(dataset, str):
            raise ProtocolError("submit_mine needs a dataset name")
        params = dict(payload.get("params") or {})
        handle = self.service.dataset(dataset)  # typed error if unknown
        fingerprint = mining_fingerprint(
            variant=params.get("variant", "optimized"),
            engine=params.get("engine", "operators"),
            platform=params.get("platform"),
            k=params.get("k", 10),
            **{k: v for k, v in params.items()
               if k not in ("variant", "engine", "platform", "k")}
        )
        key = ("mine", dataset, handle.version, fingerprint)

        def submit(priority, deadline_seconds):
            return self.service.submit_mine(
                dataset, priority=priority,
                deadline_seconds=deadline_seconds, **params
            )

        return self._admit(session, payload, key, "mine:%s" % dataset,
                           submit)

    async def _op_submit_query(self, session, payload):
        sql = payload.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("submit_query needs sql text")
        key = ("sql", self.service.catalog.version, sql_fingerprint(sql))

        def submit(priority, deadline_seconds):
            return self.service.submit_query(
                sql, priority=priority, deadline_seconds=deadline_seconds
            )

        return self._admit(session, payload, key, "sql", submit)

    def _admit(self, session, payload, key, label, submit):
        """Shared submission path: quota, coalescing, service handoff."""
        if self._draining:
            raise ServiceClosedError("server is draining; job rejected")
        tenant = session.tenant
        policy = self.config.policy_for(tenant)
        if self._tenant_inflight[tenant] >= policy.max_inflight:
            self._metrics.increment("net_quota_rejections")
            self._tenant_counter(tenant)["quota_rejections"] += 1
            raise TenantQuotaError(
                "tenant %r has %d jobs in flight (quota %d); job rejected"
                % (tenant, self._tenant_inflight[tenant],
                   policy.max_inflight)
            )
        priority = policy.priority_value
        requested = payload.get("priority")
        if requested is not None:
            if requested not in PRIORITY_CLASSES:
                raise ProtocolError(
                    "priority must be one of %s"
                    % ", ".join(sorted(PRIORITY_CLASSES))
                )
            # A request may only lower its urgency below the tenant
            # class, never raise it above.
            priority = max(priority, PRIORITY_CLASSES[requested])
        deadline_seconds = payload.get("deadline_seconds")
        net_coalesced = False
        job = self._inflight_keys.get(key)
        if job is not None and not job.finished:
            # Protocol-level coalescing: land on the in-flight job
            # without another trip through the service's scheduler.
            net_coalesced = True
            self._metrics.increment("net_coalesce_hits")
        else:
            service_handle = submit(priority, deadline_seconds)
            job = ServerJob(service_handle.job_id, key, service_handle,
                            label)
            self._jobs[job.job_id] = job
            self._inflight_keys[key] = job
            asyncio.ensure_future(self._wait_job(job))
            self._trim_finished_jobs()
        job.attached[tenant] += 1
        self._tenant_inflight[tenant] += 1
        session.jobs.add(job.job_id)
        self._tenant_counter(tenant)["submitted"] += 1
        self._metrics.increment("net_jobs_submitted")
        return {
            "job_id": job.job_id,
            "cache_hit": job.cache_hit,
            "coalesced": bool(job.handle.coalesced or net_coalesced),
            "net_coalesced": net_coalesced,
        }

    def _tenant_counter(self, tenant):
        counter = self._tenant_counters.get(tenant)
        if counter is None:
            counter = self._tenant_counters[tenant] = Counter()
        return counter

    def _trim_finished_jobs(self):
        retention = self.config.completed_job_retention
        finished = [
            job_id for job_id, job in self._jobs.items() if job.finished
        ]
        for job_id in finished[:max(0, len(finished) - retention)]:
            del self._jobs[job_id]

    # ------------------------------------------------------------------
    # Job completion (waiter thread -> loop thread)
    # ------------------------------------------------------------------

    def _blocking_result(self, handle):
        """Wait for a service job on a waiter thread, abandonable."""
        poll = self.config.waiter_poll_seconds
        while True:
            if self._stop_waiters.is_set():
                raise ServiceClosedError(
                    "server stopped while waiting for job"
                )
            try:
                return handle.result(timeout=poll)
            except ResultTimeoutError:
                continue

    async def _wait_job(self, job):
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor, self._blocking_result, job.handle
            )
            # Serialize once, off the loop; every fetcher reuses it.
            job.result_payload = await loop.run_in_executor(
                self._executor, result_to_wire, result
            )
            job.ok = True
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            job.ok = False
            job.error_payload = to_wire(exc)
        # Single-threaded from here (loop thread): retire atomically.
        job.finished = True
        if self._inflight_keys.get(job.key) is job:
            del self._inflight_keys[job.key]
        for tenant, count in job.attached.items():
            self._tenant_inflight[tenant] -= count
            if self._tenant_inflight[tenant] <= 0:
                del self._tenant_inflight[tenant]
        job.done_event.set()
        self._metrics.increment(
            "net_jobs_completed" if job.ok else "net_jobs_failed"
        )
        event = {
            "event": "job_done",
            "job_id": job.job_id,
            "label": job.label,
            "ok": job.ok,
        }
        if not job.ok:
            event["error"] = job.error_payload
        for session in list(self._sessions.values()):
            if session.subscribed:
                await self._send(session, KIND_EVENT, 0, event)

    # ------------------------------------------------------------------
    # Remaining ops
    # ------------------------------------------------------------------

    def _job_or_raise(self, payload):
        job = self._jobs.get(payload.get("job_id"))
        if job is None:
            raise ServiceError(
                "unknown job id %r (finished jobs are retained for the "
                "last %d completions)" % (
                    payload.get("job_id"),
                    self.config.completed_job_retention,
                )
            )
        return job

    async def _op_poll(self, session, payload):
        job = self._job_or_raise(payload)
        response = {"job_id": job.job_id, "done": job.finished}
        if job.finished:
            response["ok"] = job.ok
        return response

    async def _op_result(self, session, payload):
        job = self._job_or_raise(payload)
        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                await asyncio.wait_for(job.done_event.wait(), timeout)
            except (asyncio.TimeoutError, TimeoutError):
                raise ResultTimeoutError(
                    "timed out after %.3fs waiting for job %d"
                    % (timeout, job.job_id)
                ) from None
        else:
            await job.done_event.wait()
        if not job.ok:
            # Re-raise the job's own typed error so the client sees the
            # same exception type an in-process caller would.
            from repro.common.errors import from_wire

            raise from_wire(job.error_payload)
        return {
            "job_id": job.job_id,
            "result": job.result_payload,
            "cache_hit": job.cache_hit,
        }

    async def _op_stats(self, session, payload):
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(
            self._executor, self.service.stats
        )
        return sanitize(stats)

    async def _op_stream(self, session, payload):
        session.subscribed = bool(payload.get("subscribe", True))
        return {"subscribed": session.subscribed}

    _OPS = {
        "hello": _op_hello,
        "submit_mine": _op_submit_mine,
        "submit_query": _op_submit_query,
        "poll": _op_poll,
        "result": _op_result,
        "stats": _op_stats,
        "stream": _op_stream,
    }

    # ------------------------------------------------------------------
    # Drain (loop thread)
    # ------------------------------------------------------------------

    async def _drain(self, timeout):
        self._draining = True
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        # GOAWAY idle connections: no in-flight jobs of theirs remain
        # undelivered and they aren't waiting on a stream.
        for session in list(self._sessions.values()):
            inflight = [
                job_id for job_id in session.jobs
                if job_id in self._jobs and not self._jobs[job_id].finished
            ]
            if not inflight and not session.subscribed:
                session.goaway_sent = True
                await self._send(session, KIND_GOAWAY, 0,
                                 {"reason": "draining"})
        pending = [
            job.done_event.wait()
            for job in self._jobs.values() if not job.finished
        ]
        if pending:
            try:
                await asyncio.wait_for(asyncio.gather(*pending), timeout)
            except (asyncio.TimeoutError, TimeoutError):
                return False
        return True

    # ------------------------------------------------------------------
    # Introspection (any thread)
    # ------------------------------------------------------------------

    def net_stats(self):
        """The ``stats()["net"]`` section (see ISSUE acceptance)."""
        counters = dict(self._metrics.counters)
        tenants = {}
        for tenant in set(self._tenant_counters) | set(
                self._tenant_inflight):
            policy = self.config.policy_for(tenant)
            counter = self._tenant_counters.get(tenant, {})
            tenants[tenant] = {
                "inflight": self._tenant_inflight.get(tenant, 0),
                "max_inflight": policy.max_inflight,
                "priority": policy.priority,
                "submitted": counter.get("submitted", 0),
                "quota_rejections": counter.get("quota_rejections", 0),
            }
        return {
            "listening": self._listener is not None,
            "draining": self._draining,
            "connections": len(self._sessions),
            "connections_opened": counters.get("net_connections_opened", 0),
            "connections_closed": counters.get("net_connections_closed", 0),
            "frames_in": counters.get("net_frames_in", 0),
            "frames_out": counters.get("net_frames_out", 0),
            "jobs_submitted": counters.get("net_jobs_submitted", 0),
            "jobs_completed": counters.get("net_jobs_completed", 0),
            "jobs_failed": counters.get("net_jobs_failed", 0),
            "coalesce_hits": counters.get("net_coalesce_hits", 0),
            "quota_rejections": counters.get("net_quota_rejections", 0),
            "protocol_errors": counters.get("net_protocol_errors", 0),
            "tenants": tenants,
        }
