"""Result codec: engine results <-> wire payloads, bit-exactly.

The acceptance bar for the front door is that a mining job submitted
over the wire returns *bit-identical* rules, lambdas and estimates to
the same job run in-process.  Numpy arrays therefore travel as raw
little-endian bytes (base64) with their dtype and shape — no float
formatting in the loop — and scalar floats ride JSON's repr round-trip,
which is exact for Python doubles.

Three result shapes cross the wire:

- :class:`~repro.core.result.MiningResult` — rules with aggregates,
  multiplier/estimate arrays, the KL trace and the metrics snapshot;
- :class:`~repro.platforms.sql_sirum.SqlMiningResult` — the SQL-driven
  miner's variant (no multipliers; counts SQL statements instead);
- :class:`~repro.sql.result.ResultSet` — column names plus row tuples.

``sanitize()`` is the lenient cousin for *introspection* payloads
(``stats()`` dicts): it converts numpy scalars and tuples into plain
JSON types without promising reversibility.
"""

import base64

import numpy as np

from repro.common.errors import ProtocolError
from repro.core.config import SirumConfig
from repro.core.result import MinedRule, MiningResult, RuleSet
from repro.core.rule import Rule
from repro.platforms.sql_sirum import SqlMiningResult
from repro.sql.result import ResultSet


def encode_array(array):
    """One ndarray as a wire dict (dtype + shape + raw bytes)."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": array.dtype.str,  # '<f8' etc: endianness is explicit
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload):
    """Rebuild the exact ndarray ``encode_array`` serialized."""
    try:
        raw = base64.b64decode(payload["data"].encode("ascii"))
        array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        return array.reshape(payload["shape"]).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("malformed array payload: %s" % exc) from None


def sanitize(value):
    """Recursively coerce ``value`` into plain JSON-compatible types."""
    if isinstance(value, dict):
        return {str(k): sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [sanitize(v) for v in value.tolist()]
    return value


_MINING_KIND = "mining_result"
_SQL_MINING_KIND = "sql_mining_result"
_SQL_KIND = "result_set"


def _encode_rules(rule_set):
    return [
        {
            "values": list(mined.rule.values),
            "avg_measure": float(mined.avg_measure),
            "count": int(mined.count),
            "gain": float(mined.gain),
            "iteration": int(mined.iteration),
        }
        for mined in rule_set
    ]


def _decode_rules(entries):
    return RuleSet([
        MinedRule(
            rule=Rule(entry["values"]),
            avg_measure=entry["avg_measure"],
            count=entry["count"],
            gain=entry["gain"],
            iteration=entry["iteration"],
        )
        for entry in entries
    ])


def result_to_wire(result):
    """Serialize a mining or SQL result into a wire payload."""
    if isinstance(result, MiningResult):
        return {
            "kind": _MINING_KIND,
            "rules": _encode_rules(result.rule_set),
            "lambdas": encode_array(result.lambdas),
            "estimates": encode_array(result.estimates),
            "kl_trace": [float(v) for v in result.kl_trace],
            "information_gain": float(result.information_gain),
            "metrics": sanitize(result.metrics),
            "wall_seconds": float(result.wall_seconds),
            "scaling_iterations": int(result.scaling_iterations),
            "ancestors_emitted": int(result.ancestors_emitted),
            "candidates_scored": int(result.candidates_scored),
            "config": sanitize(dict(result.config.__dict__)),
        }
    if isinstance(result, SqlMiningResult):
        return {
            "kind": _SQL_MINING_KIND,
            "rules": _encode_rules(result.rule_set),
            "estimates": encode_array(result.estimates),
            "kl_trace": [float(v) for v in result.kl_trace],
            "queries_issued": int(result.queries_issued),
            "metrics": sanitize(result.metrics),
        }
    if isinstance(result, ResultSet):
        return {
            "kind": _SQL_KIND,
            "columns": list(result.columns),
            "rows": sanitize(result.rows),
        }
    raise ProtocolError(
        "cannot serialize result of type %s" % type(result).__name__
    )


def result_from_wire(payload):
    """Rebuild the typed result a ``result_to_wire`` payload describes."""
    kind = payload.get("kind")
    if kind == _MINING_KIND:
        try:
            return MiningResult(
                rule_set=_decode_rules(payload["rules"]),
                lambdas=decode_array(payload["lambdas"]),
                estimates=decode_array(payload["estimates"]),
                kl_trace=payload["kl_trace"],
                information_gain=payload["information_gain"],
                metrics=payload["metrics"],
                wall_seconds=payload["wall_seconds"],
                scaling_iterations=payload["scaling_iterations"],
                ancestors_emitted=payload["ancestors_emitted"],
                candidates_scored=payload["candidates_scored"],
                config=SirumConfig(**payload["config"]),
            )
        except (KeyError, TypeError) as exc:
            raise ProtocolError(
                "malformed mining result payload: %s" % exc
            ) from None
    if kind == _SQL_MINING_KIND:
        try:
            return SqlMiningResult(
                rule_set=_decode_rules(payload["rules"]),
                kl_trace=payload["kl_trace"],
                estimates=decode_array(payload["estimates"]),
                queries_issued=payload["queries_issued"],
                metrics=payload["metrics"],
            )
        except (KeyError, TypeError) as exc:
            raise ProtocolError(
                "malformed sql mining result payload: %s" % exc
            ) from None
    if kind == _SQL_KIND:
        try:
            return ResultSet(payload["columns"], payload["rows"])
        except (KeyError, TypeError) as exc:
            raise ProtocolError(
                "malformed result set payload: %s" % exc
            ) from None
    raise ProtocolError("unknown result kind %r" % kind)
