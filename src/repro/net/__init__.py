"""Network front door: framed-protocol server + client for the service.

    >>> from repro.net import ServiceServer, ServiceClient, NetConfig
    >>> server = ServiceServer(service, NetConfig(port=0))
    >>> server.start()
    >>> client = ServiceClient("127.0.0.1", server.port)
    >>> client.mine("flights", k=3)       # MiningResult, as in-process
    >>> client.stats()["net"]["connections"]

See :mod:`repro.net.protocol` for the wire format and
:mod:`repro.net.server` for the serving architecture.
"""

from repro.net.client import AsyncServiceClient, RemoteJob, ServiceClient
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    KIND_ERROR,
    KIND_EVENT,
    KIND_GOAWAY,
    KIND_REQUEST,
    KIND_RESPONSE,
    PROTOCOL_VERSION,
    Frame,
    FrameDecoder,
    FrameError,
    encode_frame,
)
from repro.net.server import (
    NetConfig,
    ServiceServer,
    TenantPolicy,
)
from repro.net.wire import result_from_wire, result_to_wire
from repro.net.worker import ShardWorker, ShardWorkerClient

__all__ = [
    "AsyncServiceClient",
    "DEFAULT_MAX_FRAME_BYTES",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "KIND_ERROR",
    "KIND_EVENT",
    "KIND_GOAWAY",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "NetConfig",
    "PROTOCOL_VERSION",
    "RemoteJob",
    "ServiceClient",
    "ServiceServer",
    "ShardWorker",
    "ShardWorkerClient",
    "TenantPolicy",
    "encode_frame",
    "result_from_wire",
    "result_to_wire",
]
