"""Remote shard worker: one placed shard executing on another host.

The placement layer makes a shard addressable — an
:class:`~repro.engine.shm.MmapTableBlock` is ``(path, file_key, row
range)``, which any process that can open the colfile can resolve.
This module is the minimal network leg of that story: a
:class:`ShardWorker` listens on the existing framed protocol
(:mod:`repro.net.protocol`) and executes stage tasks shipped to it by a
``ClusterContext(executor="remote", workers=[...])`` driver.

Ops (all ``KIND_REQUEST`` frames with an ``op`` field, mirroring the
front-door server's convention):

- ``worker_hello`` — identity/liveness: pid, protocol version,
  attachment-cache sizes.
- ``worker_attach`` — pre-open and verify a colfile by ``(path,
  file_key)`` through the worker's process-wide attachment cache
  (:func:`repro.engine.shm.attached_handle`), so a job's first
  ``run_stage`` finds the mmap hot and a stale file is refused before
  any kernel runs.
- ``run_stage`` — a pickled module-level kernel plus ``[(index,
  pickled partition), ...]`` task batch.  Tasks run in ascending
  shard order through the same body process-pool workers use
  (:func:`repro.engine.cluster._run_pickled_task`), so each returns
  ``(output, charges)`` — the driver applies charges to driver-side
  contexts in partition order and results stay bit-identical to
  serial.  On the first failing task the batch stops (abort
  semantics); the exception travels back pickled when it can, flagged
  as a pickling casualty when it cannot (the driver then reruns the
  stage on its local thread pool, exactly like process mode).

Trust model: ``run_stage`` executes **pickled code**.  That is the
same trust process-pool workers extend to the driver, but over TCP it
means a shard worker must only ever listen on a trusted network —
loopback, or a cluster-private interface.  There is no tenant layer
here; the front door (:mod:`repro.net.server`) stays the only
untrusted-facing endpoint.

Remote shards read *storage the worker can reach*: mmap blocks need
the colfile path visible on the worker's filesystem (shared storage,
or same host), and shm blocks resolve only on the driver's own host.
Loopback workers — the tested configuration — satisfy both.
"""

import base64
import pickle
import socket
import socketserver
import threading

from repro.common.errors import EngineError, ProtocolError, to_wire
from repro.net.protocol import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameDecoder,
    FrameError,
    encode_frame,
)

#: Stage outputs (rule aggregates, packed key arrays) are bigger than
#: front-door payloads; shard frames get a roomier cap.
WORKER_MAX_FRAME_BYTES = 64 * 1024 * 1024


def _encode_blob(data):
    return base64.b64encode(data).decode("ascii")


def _decode_blob(text):
    try:
        return base64.b64decode(text.encode("ascii"))
    except (AttributeError, ValueError) as exc:
        raise ProtocolError("malformed pickle blob: %s" % exc) from None


def parse_address(address):
    """``"host:port"`` or ``(host, port)`` as a ``(host, port)`` tuple."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    text = str(address)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise EngineError(
            "worker address must be 'host:port', got %r" % address
        )
    try:
        return host, int(port)
    except ValueError:
        raise EngineError(
            "worker address must be 'host:port', got %r" % address
        ) from None


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------


def _run_batch(kernel_blob, tasks):
    """Execute one ``run_stage`` batch; returns (records, failures).

    Tasks run in ascending index order and the batch stops at the
    first failure — the driver aborts the stage anyway, so later tasks
    would be wasted work.  Output records and exceptions that do not
    pickle are reported as pickling casualties rather than crashing
    the worker.
    """
    from repro.engine.cluster import _run_pickled_task

    records = []
    failures = []
    for index, part_blob in sorted(tasks, key=lambda t: t[0]):
        try:
            partition = pickle.loads(part_blob)
            record = _run_pickled_task(kernel_blob, index, partition)
            record_blob = pickle.dumps(
                record, protocol=pickle.HIGHEST_PROTOCOL
            )
        except BaseException as exc:  # noqa: BLE001 — shipped to driver
            try:
                exc_blob = pickle.dumps(
                    exc, protocol=pickle.HIGHEST_PROTOCOL
                )
                pickle.loads(exc_blob)  # some instances dump but not load
                failures.append({
                    "index": index,
                    "error": _encode_blob(exc_blob),
                    "repr": repr(exc),
                    "pickling": False,
                })
            except BaseException:
                failures.append({
                    "index": index,
                    "error": None,
                    "repr": repr(exc),
                    "pickling": True,
                })
            break
        records.append({"index": index, "record": _encode_blob(record_blob)})
    return records, failures


class _WorkerConnection(socketserver.BaseRequestHandler):
    """One driver connection: read frames, dispatch ops, answer."""

    def handle(self):
        worker = self.server.shard_worker
        decoder = FrameDecoder(WORKER_MAX_FRAME_BYTES)
        sock = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while not worker.closing:
            try:
                data = sock.recv(1 << 20)
            except OSError:
                return
            if not data:
                return
            try:
                events = decoder.feed(data)
            except ProtocolError:
                return  # unknown protocol version: nothing to salvage
            for event in events:
                if isinstance(event, FrameError):
                    self._send(KIND_ERROR, event.request_id,
                               to_wire(event.exception))
                    continue
                if event.kind != KIND_REQUEST:
                    continue
                self._dispatch(worker, event)

    def _dispatch(self, worker, frame):
        op = frame.payload.get("op")
        handler = worker.ops.get(op)
        if handler is None:
            self._send(KIND_ERROR, frame.request_id, to_wire(
                ProtocolError("unknown worker op %r" % op)
            ))
            return
        try:
            response = handler(frame.payload)
        except Exception as exc:  # typed errors cross as wire codes
            self._send(KIND_ERROR, frame.request_id, to_wire(exc))
            return
        self._send(KIND_RESPONSE, frame.request_id, response)

    def _send(self, kind, request_id, payload):
        try:
            self.request.sendall(encode_frame(
                kind, request_id, payload, WORKER_MAX_FRAME_BYTES
            ))
        except OSError:
            pass  # driver went away mid-answer; connection loop exits


class _WorkerServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ShardWorker:
    """A TCP shard worker: start, serve stage batches, stop.

    Runs its accept loop on a daemon thread (``start`` returns once the
    socket is bound, so the bound ``port`` is immediately usable with
    ``host='127.0.0.1', port=0`` in tests).  Each connection is served
    by its own thread; stage batches within a connection run serially,
    which is exactly the single-worker-pool semantics placed execution
    pins shards with.
    """

    def __init__(self, host="127.0.0.1", port=0):
        self.host = host
        self.port = int(port)
        self.closing = False
        self._server = None
        self._thread = None
        self._stages = 0
        self._tasks = 0
        self._lock = threading.Lock()
        self.ops = {
            "worker_hello": self._op_hello,
            "worker_attach": self._op_attach,
            "run_stage": self._op_run_stage,
        }

    # -- lifecycle -----------------------------------------------------

    def start(self):
        if self._server is not None:
            raise EngineError("shard worker is already running")
        self._server = _WorkerServer(
            (self.host, self.port), _WorkerConnection
        )
        self._server.shard_worker = self
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-shard-worker",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self):
        self.closing = True
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def address(self):
        return "%s:%d" % (self.host, self.port)

    def stats(self):
        """Stage/task counters served so far."""
        with self._lock:
            return {"stages": self._stages, "tasks": self._tasks}

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    # -- ops -----------------------------------------------------------

    def _op_hello(self, payload):
        import os

        from repro.engine.shm import attachment_cache_stats
        from repro.net.protocol import PROTOCOL_VERSION

        with self._lock:
            stages, tasks = self._stages, self._tasks
        return {
            "ok": True,
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "stages": stages,
            "tasks": tasks,
            "attachments": attachment_cache_stats(),
        }

    def _op_attach(self, payload):
        from repro.engine.shm import attached_handle

        try:
            path = payload["path"]
            file_key = payload["file_key"]
        except KeyError as exc:
            raise ProtocolError(
                "worker_attach needs %s" % exc
            ) from None
        handle = attached_handle(path, file_key)
        return {
            "ok": True,
            "num_rows": handle.num_rows,
            "num_blocks": handle.num_blocks,
        }

    def _op_run_stage(self, payload):
        try:
            kernel_blob = _decode_blob(payload["kernel"])
            tasks = [
                (int(task["index"]), _decode_blob(task["partition"]))
                for task in payload["tasks"]
            ]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(
                "malformed run_stage payload: %s" % exc
            ) from None
        records, failures = _run_batch(kernel_blob, tasks)
        with self._lock:
            self._stages += 1
            self._tasks += len(records)
        return {"records": records, "failures": failures}


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------


class ShardWorkerClient:
    """Blocking client a driver holds per remote shard worker.

    One socket, used from one driver thread at a time (the cluster
    routes each worker's batches through its own thread-pool slot).
    Connects lazily on first use and verifies the peer with
    ``worker_hello``.
    """

    def __init__(self, address, timeout=120.0):
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self._sock = None
        self._decoder = None
        self._request_id = 0

    # -- connection ----------------------------------------------------

    def _connect(self):
        if self._sock is not None:
            return
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise EngineError(
                "cannot reach shard worker %s:%d: %s"
                % (self.host, self.port, exc)
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder(WORKER_MAX_FRAME_BYTES)
        hello = self._roundtrip("worker_hello", {})
        if not hello.get("ok"):
            raise EngineError(
                "shard worker %s:%d refused hello" % (self.host, self.port)
            )

    def close(self):
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- request/response ----------------------------------------------

    def _roundtrip(self, op, payload):
        self._request_id += 1
        request_id = self._request_id
        body = dict(payload)
        body["op"] = op
        self._sock.sendall(encode_frame(
            KIND_REQUEST, request_id, body, WORKER_MAX_FRAME_BYTES
        ))
        self._sock.settimeout(self.timeout)
        while True:
            try:
                data = self._sock.recv(1 << 20)
            except socket.timeout:
                raise EngineError(
                    "shard worker %s:%d did not answer within %.0fs"
                    % (self.host, self.port, self.timeout)
                ) from None
            if not data:
                raise EngineError(
                    "shard worker %s:%d closed the connection"
                    % (self.host, self.port)
                )
            for event in self._decoder.feed(data):
                if isinstance(event, FrameError):
                    raise event.exception
                if event.request_id != request_id:
                    continue
                if event.kind == KIND_ERROR:
                    from repro.common.errors import from_wire

                    raise from_wire(event.payload)
                return event.payload

    def _call(self, op, payload):
        self._connect()
        try:
            return self._roundtrip(op, payload)
        except (ConnectionError, EOFError, OSError) as exc:
            self.close()
            raise EngineError(
                "connection to shard worker %s:%d lost: %s"
                % (self.host, self.port, exc)
            ) from exc

    # -- API the cluster consumes --------------------------------------

    def hello(self):
        return self._call("worker_hello", {})

    def attach(self, path, file_key):
        """Pre-open/verify a colfile on the worker (warm its mmap)."""
        return self._call("worker_attach", {
            "path": str(path), "file_key": list(file_key),
        })

    def run_stage(self, kernel_bytes, batch):
        """Run ``[(index, partition_blob), ...]`` on the worker.

        Returns ``(records, failures)``: ``records`` maps shard index
        to its ``(output, charges)`` record; ``failures`` is a list of
        ``(index, exception, is_pickling)`` for the batch's first
        failing task (empty on success).
        """
        reply = self._call("run_stage", {
            "kernel": _encode_blob(kernel_bytes),
            "tasks": [
                {"index": index, "partition": _encode_blob(blob)}
                for index, blob in batch
            ],
        })
        records = {}
        for entry in reply.get("records", ()):
            records[int(entry["index"])] = pickle.loads(
                _decode_blob(entry["record"])
            )
        failures = []
        for entry in reply.get("failures", ()):
            exc = None
            pickling = bool(entry.get("pickling"))
            blob = entry.get("error")
            if blob is not None and not pickling:
                try:
                    exc = pickle.loads(_decode_blob(blob))
                except BaseException:
                    pickling = True
            if exc is None and not pickling:
                exc = EngineError(
                    "remote task %s failed: %s"
                    % (entry.get("index"), entry.get("repr"))
                )
            failures.append((int(entry["index"]), exc, pickling))
        return records, failures

    def __repr__(self):
        return "ShardWorkerClient(%s:%d)" % (self.host, self.port)
