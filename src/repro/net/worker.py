"""Remote shard worker: one placed shard executing on another host.

The placement layer makes a shard addressable — an
:class:`~repro.engine.shm.MmapTableBlock` is ``(path, file_key, row
range)``, which any process that can *reach the bytes* can resolve.
This module is the network leg of that story: a :class:`ShardWorker`
listens on the existing framed protocol (:mod:`repro.net.protocol`)
and executes stage tasks shipped to it by a
``ClusterContext(executor="remote", workers=[...])`` driver, fetching
any colfile blocks it cannot open locally back from the driver over
the same connection.

Driver-initiated ops (``KIND_REQUEST`` frames with an ``op`` field,
mirroring the front-door server's convention):

- ``worker_hello`` — identity/liveness: pid, protocol version,
  attachment-cache and block-cache sizes.
- ``heartbeat`` — minimal liveness probe; the driver's health checks
  use it with a short deadline (:meth:`ShardWorkerClient.heartbeat`).
- ``worker_attach`` — pre-open and verify a colfile by ``(path,
  file_key)`` through the worker's process-wide attachment cache
  (:func:`repro.engine.shm.attached_handle`), so a job's first
  ``run_stage`` finds the mmap hot and a stale file is refused before
  any kernel runs.  Refused when the worker runs with
  ``local_files=False``.
- ``run_stage`` — a pickled module-level kernel plus ``[(index,
  pickled partition), ...]`` task batch.  Tasks run in ascending
  shard order through the same body process-pool workers use
  (:func:`repro.engine.cluster._run_pickled_task`), so each returns
  ``(output, charges)`` — the driver applies charges to driver-side
  contexts in partition order and results stay bit-identical to
  serial.  On the first failing task the batch stops (abort
  semantics); the exception travels back pickled when it can, flagged
  as a pickling casualty when it cannot (the driver then reruns the
  stage on its local thread pool, exactly like process mode).

Worker-initiated ops (``DRIVER_OPS`` — the *reverse* direction, sent
while a ``run_stage`` is executing and answered by the driver's
client from inside its own wait loop):

- ``block_fetch`` — colfile block shipping.  A worker that cannot
  resolve an :class:`~repro.engine.shm.MmapTableBlock` locally (no
  shared filesystem, or ``local_files=False``) asks the driver for the
  raw bytes of the block indices it needs, plus the file's layout meta
  on first contact.  The driver serves them from its own live mmap
  (:func:`repro.engine.shm.resolve_local_handle` — which works even if
  the file has since been deleted), and the worker caches them in a
  bounded LRU :class:`WorkerBlockCache` keyed by ``(path, file_key,
  block)``, so repeat stages over the same dataset version hit warm
  cache instead of the wire.  :class:`RemoteColFile` rebuilds
  ``read_rows`` from those bytes with the exact block-boundary
  semantics of :class:`~repro.data.colfile.ColFileHandle`, so remote
  arrays are bit-identical to a local mmap.

Trust model: ``run_stage`` executes **pickled code**.  That is the
same trust process-pool workers extend to the driver, but over TCP it
means a shard worker must only ever listen on a trusted network —
loopback, or a cluster-private interface.  There is no tenant layer
here; the front door (:mod:`repro.net.server`) stays the only
untrusted-facing endpoint.
"""

import base64
import os
import pickle
import socket
import socketserver
import threading

from collections import deque

import numpy as np

from repro.common.errors import (
    DataError,
    EngineError,
    ProtocolError,
    from_wire,
    to_wire,
)
from repro.engine.memory import EvictionIndex
from repro.engine.metrics import MetricsRegistry
from repro.net.protocol import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameDecoder,
    FrameError,
    encode_frame,
)

#: Stage outputs (rule aggregates, packed key arrays) are bigger than
#: front-door payloads; shard frames get a roomier cap.
WORKER_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Ops a *worker* may initiate against the driver mid-stage (reverse
#: RPC on the stage connection); everything else flows driver→worker.
DRIVER_OPS = ("block_fetch",)

#: Worker-initiated request ids start far above any driver-side id
#: (drivers count up from 1), so the two id spaces on the shared
#: socket can never collide.
WORKER_CALLBACK_ID_BASE = 1 << 20

#: Default bound on bytes of fetched colfile blocks a worker keeps.
DEFAULT_BLOCK_CACHE_BYTES = 256 * 1024 * 1024

#: Default request deadline (seconds) for driver↔worker calls.
DEFAULT_WORKER_TIMEOUT = 120.0


def default_block_cache_bytes():
    """Worker block-cache bound from ``REPRO_WORKER_BLOCK_CACHE_BYTES``.

    Unset/empty means :data:`DEFAULT_BLOCK_CACHE_BYTES`.
    """
    value = os.environ.get("REPRO_WORKER_BLOCK_CACHE_BYTES", "").strip()
    if not value:
        return DEFAULT_BLOCK_CACHE_BYTES
    try:
        parsed = int(value)
    except ValueError:
        raise EngineError(
            "REPRO_WORKER_BLOCK_CACHE_BYTES must be an integer, got %r"
            % value
        ) from None
    if parsed < 1:
        raise EngineError(
            "REPRO_WORKER_BLOCK_CACHE_BYTES must be at least 1"
        )
    return parsed


def default_worker_timeout():
    """Shard-call deadline from ``REPRO_WORKER_TIMEOUT`` (seconds).

    Unset/empty means :data:`DEFAULT_WORKER_TIMEOUT`.  The deadline is
    the driver's hang detector: a worker that does not answer within
    it is treated as dead and its shards are re-placed.
    """
    value = os.environ.get("REPRO_WORKER_TIMEOUT", "").strip()
    if not value:
        return DEFAULT_WORKER_TIMEOUT
    try:
        parsed = float(value)
    except ValueError:
        raise EngineError(
            "REPRO_WORKER_TIMEOUT must be a number of seconds, got %r"
            % value
        ) from None
    if parsed <= 0:
        raise EngineError("REPRO_WORKER_TIMEOUT must be positive")
    return parsed


def _encode_blob(data):
    return base64.b64encode(data).decode("ascii")


def _decode_blob(text):
    try:
        return base64.b64decode(text.encode("ascii"))
    except (AttributeError, ValueError) as exc:
        raise ProtocolError("malformed pickle blob: %s" % exc) from None


def parse_address(address):
    """``"host:port"`` or ``(host, port)`` as a ``(host, port)`` tuple."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    text = str(address)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise EngineError(
            "worker address must be 'host:port', got %r" % address
        )
    try:
        return host, int(port)
    except ValueError:
        raise EngineError(
            "worker address must be 'host:port', got %r" % address
        ) from None


# ----------------------------------------------------------------------
# Worker-local block cache and remote colfile reader
# ----------------------------------------------------------------------


class WorkerBlockCache:
    """Bounded worker-local cache of shipped colfile blocks (LRU).

    Keys are ``(path, file_key, block_index)`` — the file *state*, not
    just the path, so a rewritten dataset never serves stale bytes.
    Values are the raw block payloads exactly as shipped; byte
    accounting and recency run on the shared
    :class:`~repro.engine.memory.EvictionIndex` ledger, and the
    ``worker_block_cache_*`` counters land in a
    :class:`~repro.engine.metrics.MetricsRegistry` (hits, misses,
    evictions, fetched bytes).
    """

    def __init__(self, capacity_bytes=None, metrics=None):
        if capacity_bytes is None:
            capacity_bytes = default_block_cache_bytes()
        if capacity_bytes < 1:
            raise EngineError("block cache capacity must be at least 1 byte")
        self.capacity_bytes = int(capacity_bytes)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._blocks = {}
        self._index = EvictionIndex()
        self._lock = threading.Lock()

    def get(self, key):
        """The cached bytes for ``key``, or None (counted hit/miss)."""
        with self._lock:
            data = self._blocks.get(key)
            if data is None:
                self.metrics.increment("worker_block_cache_misses")
                return None
            self._index.touch(key)
            self.metrics.increment("worker_block_cache_hits")
            return data

    def put(self, key, data):
        """Insert freshly fetched bytes, evicting cold blocks to fit."""
        size = len(data)
        with self._lock:
            if key in self._blocks:
                self._index.touch(key)
                return
            self.metrics.increment("worker_block_cache_fetched_bytes", size)
            if size > self.capacity_bytes:
                return  # larger than the whole cache: never cached
            self._blocks[key] = data
            self._index.add(key, size)
            while self._index.total_bytes > self.capacity_bytes:
                victim = self._index.pop_coldest()
                if victim is None:
                    break
                self._blocks.pop(victim[0], None)
                self.metrics.increment("worker_block_cache_evictions")

    def stats(self):
        """Capacity, residency and counters, one dict."""
        with self._lock:
            counters = dict(self.metrics.counters)
            return {
                "capacity_bytes": self.capacity_bytes,
                "resident_bytes": self._index.total_bytes,
                "blocks": len(self._blocks),
                "hits": counters.get("worker_block_cache_hits", 0),
                "misses": counters.get("worker_block_cache_misses", 0),
                "evictions": counters.get("worker_block_cache_evictions", 0),
                "fetched_bytes": counters.get(
                    "worker_block_cache_fetched_bytes", 0
                ),
            }


class RemoteColFile:
    """``read_rows`` over the wire: a colfile read without the file.

    The shared-nothing counterpart of
    :class:`~repro.data.colfile.ColFileHandle`: block payloads arrive
    as the raw bytes the driver mmaps (via ``block_fetch`` on the stage
    connection), column views are rebuilt with ``np.frombuffer`` at the
    same offsets, and :meth:`read_rows` reproduces the handle's
    block-boundary semantics — single-block ranges are zero-copy views
    of the cached bytes, spanning ranges concatenate exactly the same
    per-block slices — so remote arrays are bit-identical to a local
    mmap.  Missing blocks for one ``read_rows`` call are fetched in a
    single round trip and cached in the worker's
    :class:`WorkerBlockCache`.
    """

    def __init__(self, path, file_key, cache, connection, meta=None,
                 timeout=None):
        self.path = str(path)
        self.file_key = tuple(file_key)
        self._cache = cache
        self._connection = connection
        self._timeout = timeout
        self.num_rows = None
        self.block_rows = None
        self.num_dimensions = None
        if meta is not None:
            self._apply_meta(meta)

    def _apply_meta(self, meta):
        try:
            self.num_rows = int(meta["num_rows"])
            self.block_rows = int(meta["block_rows"])
            self.num_dimensions = int(meta["num_dimensions"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                "malformed block_fetch meta: %s" % exc
            ) from None
        if self.block_rows < 1 or self.num_rows < 0 \
                or self.num_dimensions < 0:
            raise ProtocolError("malformed block_fetch meta")

    @property
    def row_bytes(self):
        return 8 * (self.num_dimensions + 1)

    def fetch_meta(self):
        """Layout meta for this file state, fetched if not yet known."""
        if self.num_rows is None:
            self._fetch_blocks(())
        return {
            "num_rows": self.num_rows,
            "block_rows": self.block_rows,
            "num_dimensions": self.num_dimensions,
        }

    # -- wire ----------------------------------------------------------

    def _fetch_blocks(self, indices):
        """One ``block_fetch`` round trip; returns index -> raw bytes."""
        reply = self._connection.call_back("block_fetch", {
            "path": self.path,
            "file_key": list(self.file_key),
            "blocks": [int(i) for i in indices],
            "want_meta": self.num_rows is None,
        }, timeout=self._timeout)
        if self.num_rows is None:
            self._apply_meta(reply.get("meta") or {})
        fetched = {}
        for entry in reply.get("blocks", ()):
            fetched[int(entry["index"])] = _decode_blob(entry["data"])
        missing = set(indices) - set(fetched)
        if missing:
            raise ProtocolError(
                "driver answered block_fetch without blocks %s"
                % sorted(missing)
            )
        return fetched

    # -- block math (mirrors ColFileHandle) ----------------------------

    def block_range(self, index):
        start = index * self.block_rows
        return start, min(start + self.block_rows, self.num_rows)

    def _block_bytes(self, first, last):
        """Raw bytes for blocks ``first..last``, through the cache."""
        got = {}
        wanted = []
        for index in range(first, last + 1):
            data = self._cache.get((self.path, self.file_key, index))
            if data is None:
                wanted.append(index)
            else:
                got[index] = data
        if wanted:
            for index, data in self._fetch_blocks(wanted).items():
                start, stop = self.block_range(index)
                if len(data) != (stop - start) * self.row_bytes:
                    raise ProtocolError(
                        "block %d of %s arrived with %d bytes, expected %d"
                        % (index, self.path, len(data),
                           (stop - start) * self.row_bytes)
                    )
                self._cache.put((self.path, self.file_key, index), data)
                got[index] = data
        return got

    def _views(self, index, data):
        """(columns, measure) views over one block's raw bytes."""
        start, stop = self.block_range(index)
        rows = stop - start
        columns = []
        for j in range(self.num_dimensions):
            columns.append(np.frombuffer(
                data, dtype=np.int64, count=rows, offset=8 * j * rows
            ))
        measure = np.frombuffer(
            data, dtype=np.float64, count=rows,
            offset=8 * self.num_dimensions * rows,
        )
        return columns, measure

    def read_rows(self, start, stop):
        """(columns, measure) for [start, stop); see ColFileHandle."""
        if self.num_rows is None:
            self.fetch_meta()
        if not 0 <= start <= stop <= self.num_rows:
            raise DataError(
                "row range [%d, %d) out of bounds for %d rows"
                % (start, stop, self.num_rows)
            )
        if start == stop:
            empty_dims = [np.zeros(0, dtype=np.int64)
                          for _ in range(self.num_dimensions)]
            return empty_dims, np.zeros(0, dtype=np.float64)
        first = start // self.block_rows
        last = (stop - 1) // self.block_rows
        blocks = self._block_bytes(first, last)
        if first == last:
            b_start, _ = self.block_range(first)
            columns, measure = self._views(first, blocks[first])
            lo, hi = start - b_start, stop - b_start
            return [col[lo:hi] for col in columns], measure[lo:hi]
        dim_parts = [[] for _ in range(self.num_dimensions)]
        measure_parts = []
        for index in range(first, last + 1):
            b_start, b_stop = self.block_range(index)
            columns, measure = self._views(index, blocks[index])
            lo = max(start, b_start) - b_start
            hi = min(stop, b_stop) - b_start
            for j, col in enumerate(columns):
                dim_parts[j].append(col[lo:hi])
            measure_parts.append(measure[lo:hi])
        out_columns = [np.concatenate(parts) for parts in dim_parts]
        out_measure = np.concatenate(measure_parts)
        for col in out_columns:
            col.setflags(write=False)
        out_measure.setflags(write=False)
        return out_columns, out_measure

    def __repr__(self):
        return "RemoteColFile(%r, key=%r)" % (self.path, self.file_key)


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------


def _run_batch(kernel_blob, tasks):
    """Execute one ``run_stage`` batch; returns (records, failures).

    Tasks run in ascending index order and the batch stops at the
    first failure — the driver aborts the stage anyway, so later tasks
    would be wasted work.  Output records and exceptions that do not
    pickle are reported as pickling casualties rather than crashing
    the worker.
    """
    from repro.engine.cluster import _run_pickled_task

    records = []
    failures = []
    for index, part_blob in sorted(tasks, key=lambda t: t[0]):
        try:
            partition = pickle.loads(part_blob)
            record = _run_pickled_task(kernel_blob, index, partition)
            record_blob = pickle.dumps(
                record, protocol=pickle.HIGHEST_PROTOCOL
            )
        except BaseException as exc:  # noqa: BLE001 — shipped to driver
            try:
                exc_blob = pickle.dumps(
                    exc, protocol=pickle.HIGHEST_PROTOCOL
                )
                pickle.loads(exc_blob)  # some instances dump but not load
                failures.append({
                    "index": index,
                    "error": _encode_blob(exc_blob),
                    "repr": repr(exc),
                    "pickling": False,
                })
            except BaseException:
                failures.append({
                    "index": index,
                    "error": None,
                    "repr": repr(exc),
                    "pickling": True,
                })
            break
        records.append({"index": index, "record": _encode_blob(record_blob)})
    return records, failures


class _WorkerConnection(socketserver.BaseRequestHandler):
    """One driver connection: read frames, dispatch ops, answer.

    The connection is also the worker's path *back* to the driver:
    while ``run_stage`` executes, a shard that cannot resolve its
    colfile locally issues ``block_fetch`` requests over this same
    socket (:meth:`call_back`), and the driver answers from inside its
    own ``run_stage`` wait loop — one socket, two directions, no extra
    listener on the driver.
    """

    def setup(self):
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.decoder = FrameDecoder(WORKER_MAX_FRAME_BYTES)
        self._events = deque()  # decoded, not yet processed
        self._callback_id = WORKER_CALLBACK_ID_BASE

    def _next_event(self):
        """The next decoded frame event, or None when the peer is gone."""
        while True:
            if self._events:
                return self._events.popleft()
            try:
                data = self.request.recv(1 << 20)
            except OSError:
                return None
            if not data:
                return None
            try:
                self._events.extend(self.decoder.feed(data))
            except ProtocolError:
                return None  # unknown protocol version: nothing to salvage

    def handle(self):
        worker = self.server.shard_worker
        while not worker.closing:
            event = self._next_event()
            if event is None:
                return
            if worker.closing:
                # Stopped while this connection was idle: refuse the
                # just-arrived request by closing — the driver reads
                # EOF, marks the worker dead and re-places its shards.
                return
            if isinstance(event, FrameError):
                self._send(KIND_ERROR, event.request_id,
                           to_wire(event.exception))
                continue
            if event.kind != KIND_REQUEST:
                continue
            self._dispatch(worker, event)

    def call_back(self, op, payload, timeout=None):
        """Worker-initiated request to the driver over this connection.

        Sent mid-``run_stage``, while the driver's client is parked in
        its own wait loop servicing exactly these (``DRIVER_OPS``).
        Frames for other request ids observed while waiting are stashed
        and handled after the running dispatch returns, so a
        well-behaved driver loses nothing.
        """
        self._callback_id += 1
        request_id = self._callback_id
        body = dict(payload)
        body["op"] = op
        sock = self.request
        stashed = []
        sock.settimeout(timeout)
        try:
            sock.sendall(encode_frame(
                KIND_REQUEST, request_id, body, WORKER_MAX_FRAME_BYTES
            ))
            while True:
                event = self._next_event()
                if event is None:
                    raise EngineError(
                        "driver did not answer %s (connection lost or "
                        "deadline exceeded)" % op
                    )
                if isinstance(event, FrameError):
                    if event.request_id == request_id:
                        raise event.exception
                    continue
                if event.request_id != request_id:
                    stashed.append(event)
                    continue
                if event.kind == KIND_ERROR:
                    raise from_wire(event.payload)
                return event.payload
        except OSError as exc:
            raise EngineError(
                "driver connection lost during %s: %s" % (op, exc)
            ) from exc
        finally:
            try:
                sock.settimeout(None)
            except OSError:
                pass
            for event in reversed(stashed):
                self._events.appendleft(event)

    def _dispatch(self, worker, frame):
        op = frame.payload.get("op")
        handler = worker.ops.get(op)
        if handler is None:
            self._send(KIND_ERROR, frame.request_id, to_wire(
                ProtocolError("unknown worker op %r" % op)
            ))
            return
        try:
            response = handler(frame.payload, self)
        except Exception as exc:  # typed errors cross as wire codes
            self._send(KIND_ERROR, frame.request_id, to_wire(exc))
            return
        self._send(KIND_RESPONSE, frame.request_id, response)

    def _send(self, kind, request_id, payload):
        try:
            self.request.sendall(encode_frame(
                kind, request_id, payload, WORKER_MAX_FRAME_BYTES
            ))
        except OSError:
            pass  # driver went away mid-answer; connection loop exits


class _WorkerServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ShardWorker:
    """A TCP shard worker: start, serve stage batches, stop.

    Runs its accept loop on a daemon thread (``start`` returns once the
    socket is bound, so the bound ``port`` is immediately usable with
    ``host='127.0.0.1', port=0`` in tests).  Each connection is served
    by its own thread; stage batches within a connection run serially,
    which is exactly the single-worker-pool semantics placed execution
    pins shards with.

    ``block_cache_bytes`` bounds the worker-local cache of colfile
    blocks fetched from the driver (default
    ``REPRO_WORKER_BLOCK_CACHE_BYTES``, else 256 MiB).
    ``local_files=False`` runs the worker *shared-nothing*: every mmap
    block resolves through ``block_fetch``, never the worker's own
    filesystem — the correct stance when driver and worker do not
    share storage, even if equal paths happen to exist on both.
    """

    def __init__(self, host="127.0.0.1", port=0, block_cache_bytes=None,
                 local_files=True):
        self.host = host
        self.port = int(port)
        self.local_files = bool(local_files)
        self.fetch_timeout = default_worker_timeout()
        self.closing = False
        self.metrics = MetricsRegistry()
        self.block_cache = WorkerBlockCache(
            block_cache_bytes, metrics=self.metrics
        )
        self._meta_cache = {}  # (path, file_key) -> layout meta
        self._server = None
        self._thread = None
        self._stages = 0
        self._tasks = 0
        self._lock = threading.Lock()
        self.ops = {
            "worker_hello": self._op_hello,
            "heartbeat": self._op_heartbeat,
            "worker_attach": self._op_attach,
            "run_stage": self._op_run_stage,
        }

    # -- lifecycle -----------------------------------------------------

    def start(self):
        if self._server is not None:
            raise EngineError("shard worker is already running")
        self._server = _WorkerServer(
            (self.host, self.port), _WorkerConnection
        )
        self._server.shard_worker = self
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-shard-worker",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self):
        self.closing = True
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def address(self):
        return "%s:%d" % (self.host, self.port)

    def stats(self):
        """Stage/task counters and block-cache state served so far."""
        with self._lock:
            stages, tasks = self._stages, self._tasks
        return {
            "stages": stages,
            "tasks": tasks,
            "local_files": self.local_files,
            "block_cache": self.block_cache.stats(),
        }

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    # -- ops -----------------------------------------------------------

    def _op_hello(self, payload, connection):
        from repro.engine.shm import attachment_cache_stats
        from repro.net.protocol import PROTOCOL_VERSION

        with self._lock:
            stages, tasks = self._stages, self._tasks
        return {
            "ok": True,
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "stages": stages,
            "tasks": tasks,
            "local_files": self.local_files,
            "attachments": attachment_cache_stats(),
            "block_cache": self.block_cache.stats(),
        }

    def _op_heartbeat(self, payload, connection):
        """Minimal liveness probe: no caches touched, no locks held
        beyond the counter read — answers even while stages grind."""
        return {"ok": True, "pid": os.getpid(), "closing": self.closing}

    def _op_attach(self, payload, connection):
        from repro.engine.shm import attached_handle

        if not self.local_files:
            raise EngineError(
                "worker runs with local_files disabled; blocks are "
                "fetched from the driver, there is nothing to attach"
            )
        try:
            path = payload["path"]
            file_key = payload["file_key"]
        except KeyError as exc:
            raise ProtocolError(
                "worker_attach needs %s" % exc
            ) from None
        handle = attached_handle(path, file_key)
        return {
            "ok": True,
            "num_rows": handle.num_rows,
            "num_blocks": handle.num_blocks,
        }

    def _op_run_stage(self, payload, connection):
        from repro.engine.shm import block_fetcher

        try:
            kernel_blob = _decode_blob(payload["kernel"])
            tasks = [
                (int(task["index"]), _decode_blob(task["partition"]))
                for task in payload["tasks"]
            ]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(
                "malformed run_stage payload: %s" % exc
            ) from None

        def fetch(path, file_key):
            return self._remote_source(connection, path, file_key)

        with block_fetcher(fetch, local_files=self.local_files):
            records, failures = _run_batch(kernel_blob, tasks)
        with self._lock:
            self._stages += 1
            self._tasks += len(records)
        return {"records": records, "failures": failures}

    def _remote_source(self, connection, path, file_key):
        """A :class:`RemoteColFile` for one unresolvable mmap block.

        Layout meta is cached per file state on the worker, so only the
        first contact with a dataset version pays the meta round trip;
        block payloads live in the shared :class:`WorkerBlockCache`
        across stages and connections.
        """
        key = (str(path), tuple(file_key))
        with self._lock:
            meta = self._meta_cache.get(key)
        source = RemoteColFile(
            path, file_key, self.block_cache, connection,
            meta=meta, timeout=self.fetch_timeout,
        )
        if meta is None:
            fetched = source.fetch_meta()
            with self._lock:
                self._meta_cache[key] = fetched
        return source


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------


class ShardWorkerClient:
    """Blocking client a driver holds per remote shard worker.

    One socket, used from one driver thread at a time (the cluster
    routes each worker's batches through its own thread-pool slot).
    Connects lazily on first use and verifies the peer with
    ``worker_hello``.  While waiting for a ``run_stage`` answer the
    client services the worker's reverse ``block_fetch`` requests
    inline (:meth:`_serve`), counting ``blocks_shipped`` /
    ``bytes_shipped``.

    ``healthy`` is the cluster's routing flag: :meth:`mark_dead` clears
    it when a call times out or the connection drops, and the retry
    loop re-places the dead worker's shards onto the survivors.
    ``timeout`` (default ``REPRO_WORKER_TIMEOUT``, else 120 s) is the
    per-call deadline that turns a hung worker into a dead one.
    """

    def __init__(self, address, timeout=None):
        self.host, self.port = parse_address(address)
        self.timeout = (default_worker_timeout() if timeout is None
                        else timeout)
        self.healthy = True
        self.blocks_shipped = 0
        self.bytes_shipped = 0
        self._sock = None
        self._decoder = None
        self._request_id = 0

    # -- connection ----------------------------------------------------

    def _connect(self):
        if self._sock is not None:
            return
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise EngineError(
                "cannot reach shard worker %s:%d: %s"
                % (self.host, self.port, exc)
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder(WORKER_MAX_FRAME_BYTES)
        hello = self._roundtrip("worker_hello", {})
        if not hello.get("ok"):
            raise EngineError(
                "shard worker %s:%d refused hello" % (self.host, self.port)
            )

    def close(self):
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def mark_dead(self):
        """Flag the worker unusable and drop the connection.

        The cluster's retry loop calls this on a timed-out or
        connection-lost ``run_stage``; a dead client is skipped by all
        further routing for the cluster's lifetime.
        """
        self.healthy = False
        self.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- request/response ----------------------------------------------

    def _roundtrip(self, op, payload):
        self._request_id += 1
        request_id = self._request_id
        body = dict(payload)
        body["op"] = op
        self._sock.sendall(encode_frame(
            KIND_REQUEST, request_id, body, WORKER_MAX_FRAME_BYTES
        ))
        self._sock.settimeout(self.timeout)
        while True:
            try:
                data = self._sock.recv(1 << 20)
            except socket.timeout:
                raise EngineError(
                    "shard worker %s:%d did not answer within %.0fs"
                    % (self.host, self.port, self.timeout)
                ) from None
            if not data:
                raise EngineError(
                    "shard worker %s:%d closed the connection"
                    % (self.host, self.port)
                )
            for event in self._decoder.feed(data):
                if isinstance(event, FrameError):
                    raise event.exception
                if event.kind == KIND_REQUEST:
                    # The worker asking *us* for something (block
                    # shipping) while we wait on its stage answer.
                    self._serve(event)
                    continue
                if event.request_id != request_id:
                    continue
                if event.kind == KIND_ERROR:
                    raise from_wire(event.payload)
                return event.payload

    def _call(self, op, payload):
        self._connect()
        try:
            return self._roundtrip(op, payload)
        except (ConnectionError, EOFError, OSError) as exc:
            self.close()
            raise EngineError(
                "connection to shard worker %s:%d lost: %s"
                % (self.host, self.port, exc)
            ) from exc

    # -- reverse RPC: the worker fetches blocks from us ----------------

    def _serve(self, frame):
        """Answer one worker-initiated request (``DRIVER_OPS``)."""
        op = frame.payload.get("op")
        try:
            if op == "block_fetch":
                payload = self._serve_block_fetch(frame.payload)
            else:
                raise ProtocolError(
                    "unknown worker-initiated op %r" % op
                )
        except Exception as exc:  # typed errors cross as wire codes
            self._sock.sendall(encode_frame(
                KIND_ERROR, frame.request_id, to_wire(exc),
                WORKER_MAX_FRAME_BYTES,
            ))
            return
        self._sock.sendall(encode_frame(
            KIND_RESPONSE, frame.request_id, payload,
            WORKER_MAX_FRAME_BYTES,
        ))

    def _serve_block_fetch(self, payload):
        from repro.engine.shm import resolve_local_handle

        try:
            path = payload["path"]
            file_key = tuple(payload["file_key"])
            indices = [int(i) for i in payload.get("blocks", ())]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                "malformed block_fetch payload: %s" % exc
            ) from None
        handle = resolve_local_handle(path, file_key)
        blocks = []
        for index in indices:
            if not 0 <= index < handle.num_blocks:
                raise DataError(
                    "block %d out of range for %s (%d blocks)"
                    % (index, path, handle.num_blocks)
                )
            data = handle.block_raw_bytes(index)
            blocks.append({"index": index, "data": _encode_blob(data)})
            self.blocks_shipped += 1
            self.bytes_shipped += len(data)
        reply = {"blocks": blocks}
        if payload.get("want_meta"):
            reply["meta"] = handle.wire_meta()
        return reply

    # -- API the cluster consumes --------------------------------------

    def hello(self):
        return self._call("worker_hello", {})

    def heartbeat(self, timeout=5.0):
        """Liveness probe under its own (short) deadline.

        Returns True iff the worker answers in time — reconnecting
        first if the client has no live socket.  Never raises: a
        refused, lost or silent worker is simply ``False``, which is
        what the cluster's health check wants to know.
        """
        previous = self.timeout
        if timeout is not None:
            self.timeout = timeout
        try:
            return bool(self._call("heartbeat", {}).get("ok"))
        except EngineError:
            return False
        finally:
            self.timeout = previous

    def attach(self, path, file_key):
        """Pre-open/verify a colfile on the worker (warm its mmap)."""
        return self._call("worker_attach", {
            "path": str(path), "file_key": list(file_key),
        })

    def run_stage(self, kernel_bytes, batch):
        """Run ``[(index, partition_blob), ...]`` on the worker.

        Returns ``(records, failures)``: ``records`` maps shard index
        to its ``(output, charges)`` record; ``failures`` is a list of
        ``(index, exception, is_pickling)`` for the batch's first
        failing task (empty on success).
        """
        reply = self._call("run_stage", {
            "kernel": _encode_blob(kernel_bytes),
            "tasks": [
                {"index": index, "partition": _encode_blob(blob)}
                for index, blob in batch
            ],
        })
        records = {}
        for entry in reply.get("records", ()):
            records[int(entry["index"])] = pickle.loads(
                _decode_blob(entry["record"])
            )
        failures = []
        for entry in reply.get("failures", ()):
            exc = None
            pickling = bool(entry.get("pickling"))
            blob = entry.get("error")
            if blob is not None and not pickling:
                try:
                    exc = pickle.loads(_decode_blob(blob))
                except BaseException:
                    pickling = True
            if exc is None and not pickling:
                exc = EngineError(
                    "remote task %s failed: %s"
                    % (entry.get("index"), entry.get("repr"))
                )
            failures.append((int(entry["index"]), exc, pickling))
        return records, failures

    def __repr__(self):
        return "ShardWorkerClient(%s:%d)" % (self.host, self.port)
