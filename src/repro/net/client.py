"""Clients for the framed protocol: blocking and asyncio flavors.

:class:`ServiceClient` is the workhorse — a plain-socket blocking
client whose methods mirror the in-process service façade
(``submit_mine`` / ``submit_query`` / ``mine`` / ``query`` / ``poll``
/ ``result`` / ``stats``) and raise the *same typed exceptions* a
local caller would (the server ships them as stable wire codes, see
:mod:`repro.common.errors`).  Results come back as real
:class:`~repro.core.result.MiningResult` /
:class:`~repro.sql.result.ResultSet` objects, bit-identical to
in-process execution.

Reconnect semantics: when ``reconnect=True`` (default) a dropped
connection is re-established once per call and the request retried.
Every protocol op is safe to retry — submissions land on the server's
coalescer/result cache rather than re-executing, and job ids remain
addressable across connections because the server's job registry is
global, not per-session.

:class:`AsyncServiceClient` is the asyncio mirror for callers already
inside an event loop (no retry loop; awaitable methods, same wire
behaviour).
"""

import asyncio
import itertools
import socket
import time

from collections import deque

from repro.common.errors import (
    ProtocolError,
    ServiceClosedError,
    ServiceError,
    from_wire,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    KIND_ERROR,
    KIND_EVENT,
    KIND_GOAWAY,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameDecoder,
    FrameError,
    encode_frame,
)
from repro.net.wire import result_from_wire

#: Extra socket slack past a server-side blocking wait, so the server's
#: own (typed) timeout answer beats the client's socket timeout.
_TIMEOUT_SLACK = 5.0


class RemoteJob:
    """Client-side handle to one server job (mirrors ``JobHandle``)."""

    __slots__ = ("_client", "job_id", "cache_hit", "coalesced",
                 "net_coalesced")

    def __init__(self, client, payload):
        self._client = client
        self.job_id = payload["job_id"]
        self.cache_hit = payload.get("cache_hit", False)
        self.coalesced = payload.get("coalesced", False)
        self.net_coalesced = payload.get("net_coalesced", False)

    def done(self):
        return self._client.poll(self.job_id)["done"]

    def result(self, timeout=None):
        return self._client.result(self.job_id, timeout=timeout)

    def __repr__(self):
        return "RemoteJob(%d)" % self.job_id


class ServiceClient:
    """Blocking framed-protocol client; one socket, retry on reconnect."""

    def __init__(self, host, port, tenant=None, timeout=30.0,
                 reconnect=True, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.reconnect = reconnect
        self.max_frame_bytes = max_frame_bytes
        self.goaway_received = False
        self._request_ids = itertools.count(1)
        self._events = deque()
        self._frames = deque()  # decoded but not yet consumed
        self._sock = None
        self._decoder = None
        self._connect()

    # -- connection ----------------------------------------------------

    def _connect(self):
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder(self.max_frame_bytes)
        self._frames.clear()
        if self.tenant is not None:
            self._roundtrip("hello", {"tenant": self.tenant},
                            self.timeout)

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- core request/response -----------------------------------------

    def _call(self, op, payload, timeout=None):
        if self._sock is None:
            raise ServiceError("client is closed")
        try:
            return self._roundtrip(op, payload, timeout)
        except (ConnectionError, OSError, EOFError) as exc:
            if not self.reconnect:
                raise ServiceError(
                    "connection to %s:%d lost: %s"
                    % (self.host, self.port, exc)
                ) from exc
            self.close()
            try:
                self._connect()
                return self._roundtrip(op, payload, timeout)
            except (ConnectionError, OSError, EOFError) as retry_exc:
                self._sock = None
                if self.goaway_received:
                    raise ServiceClosedError(
                        "server sent GOAWAY and is no longer accepting "
                        "connections"
                    ) from retry_exc
                raise ServiceError(
                    "connection to %s:%d lost and reconnect failed: %s"
                    % (self.host, self.port, retry_exc)
                ) from retry_exc

    def _roundtrip(self, op, payload, timeout):
        request_id = next(self._request_ids)
        body = dict(payload)
        body["op"] = op
        self._sock.sendall(
            encode_frame(KIND_REQUEST, request_id, body,
                         self.max_frame_bytes)
        )
        wait = self.timeout if timeout is None else timeout
        deadline = None if wait is None else time.monotonic() + wait
        while True:
            frame = self._read_frame(deadline)
            if frame.kind == KIND_EVENT:
                self._events.append({"type": "event", **frame.payload})
                continue
            if frame.kind == KIND_GOAWAY:
                self.goaway_received = True
                self._events.append({"type": "goaway", **frame.payload})
                continue
            if frame.request_id != request_id:
                continue  # stale response from a pre-reconnect request
            if frame.kind == KIND_ERROR:
                raise from_wire(frame.payload)
            if frame.kind == KIND_RESPONSE:
                return frame.payload
            raise ProtocolError(
                "unexpected frame kind %d from server" % frame.kind
            )

    def _read_frame(self, deadline):
        while True:
            if self._frames:
                event = self._frames.popleft()
                if isinstance(event, FrameError):
                    raise event.exception
                return event
            remaining = (
                None if deadline is None
                else max(0.001, deadline - time.monotonic())
            )
            self._sock.settimeout(remaining)
            try:
                data = self._sock.recv(64 * 1024)
            except socket.timeout:
                raise ServiceError(
                    "timed out waiting for a server response"
                ) from None
            if not data:
                raise EOFError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))

    # -- service façade ------------------------------------------------

    def hello(self, tenant):
        """Declare (or switch) this connection's tenant."""
        self.tenant = tenant
        return self._call("hello", {"tenant": tenant})

    def submit_mine(self, dataset, priority=None, deadline_seconds=None,
                    **params):
        """Enqueue a mining request; returns a :class:`RemoteJob`."""
        payload = {"dataset": dataset, "params": params}
        if priority is not None:
            payload["priority"] = priority
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return RemoteJob(self, self._call("submit_mine", payload))

    def submit_query(self, sql, priority=None, deadline_seconds=None):
        """Enqueue a SQL request; returns a :class:`RemoteJob`."""
        payload = {"sql": sql}
        if priority is not None:
            payload["priority"] = priority
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return RemoteJob(self, self._call("submit_query", payload))

    def poll(self, job_id):
        """Non-blocking completion check: ``{"done": ..., "ok": ...}``."""
        return self._call("poll", {"job_id": job_id})

    def result(self, job_id, timeout=None):
        """Block (server-side) for a job's result; raises its error."""
        wait = self.timeout if timeout is None else timeout
        payload = {"job_id": job_id}
        if wait is not None:
            payload["timeout"] = wait
        response = self._call(
            "result", payload,
            timeout=None if wait is None else wait + _TIMEOUT_SLACK,
        )
        return result_from_wire(response["result"])

    def mine(self, dataset, timeout=None, **params):
        """Submit a mining request and wait for its result."""
        job = self.submit_mine(dataset, **params)
        return job.result(timeout=timeout)

    def query(self, sql, timeout=None, **kwargs):
        """Submit a SQL request and wait for its :class:`ResultSet`."""
        job = self.submit_query(sql, **kwargs)
        return job.result(timeout=timeout)

    def stats(self):
        """The service's ``stats()`` dict (including the net section)."""
        return self._call("stats", {})

    def subscribe(self, subscribe=True):
        """Opt in/out of job-completion EVENT frames."""
        return self._call("stream", {"subscribe": subscribe})

    def next_event(self, timeout=None):
        """The next queued EVENT/GOAWAY, reading the socket as needed.

        Returns a dict with a ``"type"`` key (``"event"`` /
        ``"goaway"``); raises :class:`ServiceError` when ``timeout``
        passes without one.
        """
        if self._events:
            return self._events.popleft()
        wait = self.timeout if timeout is None else timeout
        deadline = None if wait is None else time.monotonic() + wait
        while not self._events:
            try:
                frame = self._read_frame(deadline)
            except EOFError:
                raise ServiceError(
                    "connection closed while waiting for an event"
                ) from None
            if frame.kind == KIND_EVENT:
                self._events.append({"type": "event", **frame.payload})
            elif frame.kind == KIND_GOAWAY:
                self.goaway_received = True
                self._events.append({"type": "goaway", **frame.payload})
            # RESPONSE/ERROR frames with no waiter are stale; drop them.
        return self._events.popleft()


class AsyncServiceClient:
    """Asyncio mirror of :class:`ServiceClient` (no retry loop).

    Usage::

        client = await AsyncServiceClient.connect(host, port, tenant="a")
        result = await client.mine("flights", k=3)
        await client.close()
    """

    def __init__(self, reader, writer, tenant=None,
                 max_frame_bytes=DEFAULT_MAX_FRAME_BYTES):
        self._reader = reader
        self._writer = writer
        self.tenant = tenant
        self.max_frame_bytes = max_frame_bytes
        self.goaway_received = False
        self._request_ids = itertools.count(1)
        self._events = deque()
        self._frames = deque()
        self._decoder = FrameDecoder(max_frame_bytes)

    @classmethod
    async def connect(cls, host, port, tenant=None,
                      max_frame_bytes=DEFAULT_MAX_FRAME_BYTES):
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, tenant=tenant,
                     max_frame_bytes=max_frame_bytes)
        if tenant is not None:
            await client._call("hello", {"tenant": tenant})
        return client

    async def close(self):
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _call(self, op, payload):
        request_id = next(self._request_ids)
        body = dict(payload)
        body["op"] = op
        self._writer.write(
            encode_frame(KIND_REQUEST, request_id, body,
                         self.max_frame_bytes)
        )
        await self._writer.drain()
        while True:
            frame = await self._read_frame()
            if frame.kind == KIND_EVENT:
                self._events.append({"type": "event", **frame.payload})
                continue
            if frame.kind == KIND_GOAWAY:
                self.goaway_received = True
                self._events.append({"type": "goaway", **frame.payload})
                continue
            if frame.request_id != request_id:
                continue
            if frame.kind == KIND_ERROR:
                raise from_wire(frame.payload)
            return frame.payload

    async def _read_frame(self):
        while True:
            if self._frames:
                event = self._frames.popleft()
                if isinstance(event, FrameError):
                    raise event.exception
                return event
            data = await self._reader.read(64 * 1024)
            if not data:
                raise EOFError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))

    async def submit_mine(self, dataset, priority=None,
                          deadline_seconds=None, **params):
        payload = {"dataset": dataset, "params": params}
        if priority is not None:
            payload["priority"] = priority
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return await self._call("submit_mine", payload)

    async def submit_query(self, sql, priority=None,
                           deadline_seconds=None):
        payload = {"sql": sql}
        if priority is not None:
            payload["priority"] = priority
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return await self._call("submit_query", payload)

    async def poll(self, job_id):
        return await self._call("poll", {"job_id": job_id})

    async def result(self, job_id, timeout=None):
        payload = {"job_id": job_id}
        if timeout is not None:
            payload["timeout"] = timeout
        response = await self._call("result", payload)
        return result_from_wire(response["result"])

    async def mine(self, dataset, timeout=None, **params):
        submitted = await self.submit_mine(dataset, **params)
        return await self.result(submitted["job_id"], timeout=timeout)

    async def query(self, sql, timeout=None):
        submitted = await self.submit_query(sql)
        return await self.result(submitted["job_id"], timeout=timeout)

    async def stats(self):
        return await self._call("stats", {})

    async def subscribe(self, subscribe=True):
        return await self._call("stream", {"subscribe": subscribe})
