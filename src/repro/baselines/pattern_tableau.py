"""Data-Auditor-style pattern tableaux (Golab et al. [17]).

Data Auditor summarizes where a constraint holds or fails by computing
a *pattern tableau*: a small set of patterns (rules, in SIRUM terms)
each with high support and high confidence on the dirty tuples, chosen
greedily to cover as many dirty tuples as possible.  The thesis cites
it as the prior data-cleansing technology whose role SIRUM's
information-based rules can play (§1, Chapter 6).

The mechanics here follow the "on-demand" tableau generation model:

1. candidate patterns are the cube-lattice elements of the dirty
   tuples' sample (the same LCA construction SIRUM uses);
2. a pattern *qualifies* if it covers >= ``min_support`` tuples and its
   dirty rate is >= ``min_confidence``;
3. patterns are selected by greedy maximum marginal cover of the dirty
   tuples until ``coverage`` of them are explained (or no qualifying
   pattern adds coverage).
"""

import numpy as np

from repro.common.errors import ConfigError, DataError
from repro.common.rng import make_rng
from repro.core.rule import Rule


class TableauPattern:
    """One selected pattern with its audit statistics."""

    def __init__(self, rule, support, dirty_covered, confidence):
        self.rule = rule
        self.support = support
        self.dirty_covered = dirty_covered
        self.confidence = confidence

    def decode(self, table):
        return self.rule.decode(table)

    def __repr__(self):
        return "TableauPattern(%r, support=%d, confidence=%.3f)" % (
            self.rule,
            self.support,
            self.confidence,
        )


class PatternTableau:
    """The generated tableau plus aggregate coverage statistics."""

    def __init__(self, patterns, dirty_total, dirty_covered):
        self.patterns = list(patterns)
        self.dirty_total = dirty_total
        self.dirty_covered = dirty_covered

    @property
    def coverage(self):
        """Fraction of dirty tuples covered by at least one pattern."""
        if self.dirty_total == 0:
            return 1.0
        return self.dirty_covered / self.dirty_total

    def rules(self):
        return [pattern.rule for pattern in self.patterns]

    def __len__(self):
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)


def generate_tableau(
    table,
    min_support=2,
    min_confidence=0.8,
    coverage=0.9,
    max_patterns=20,
    sample_size=32,
    seed=0,
):
    """Generate a pattern tableau for a binary dirtiness measure.

    Parameters mirror Data Auditor's support / confidence / coverage
    knobs.  Candidates come from the cube lattice of a sample of the
    *dirty* tuples — patterns must describe dirty data, so sampling
    clean rows would only produce unusable candidates.
    """
    if min_support < 1:
        raise ConfigError("min_support must be at least 1")
    if not 0.0 < min_confidence <= 1.0:
        raise ConfigError("min_confidence must be in (0, 1]")
    if not 0.0 < coverage <= 1.0:
        raise ConfigError("coverage must be in (0, 1]")
    measure = np.asarray(table.measure)
    unique = np.unique(measure)
    if not np.all(np.isin(unique, (0.0, 1.0))):
        raise DataError("pattern tableaux require a 0/1 measure")

    dirty_mask = measure == 1.0
    dirty_total = int(dirty_mask.sum())
    if dirty_total == 0:
        return PatternTableau([], 0, 0)

    candidates = _candidate_patterns(table, dirty_mask, sample_size, seed)
    qualified = []
    for rule in candidates:
        cover = rule.match_mask(table)
        support = int(cover.sum())
        if support < min_support:
            continue
        dirty_covered = int((cover & dirty_mask).sum())
        confidence = dirty_covered / support
        if confidence < min_confidence:
            continue
        qualified.append((rule, cover, support, confidence))

    selected = []
    covered = np.zeros(len(table), dtype=bool)
    target = coverage * dirty_total
    while len(selected) < max_patterns:
        if (covered & dirty_mask).sum() >= target:
            break
        best = None
        best_gain = 0
        for entry in qualified:
            rule, cover, _support, _confidence = entry
            gain = int((cover & dirty_mask & ~covered).sum())
            if gain > best_gain:
                best_gain = gain
                best = entry
        if best is None:
            break
        rule, cover, support, confidence = best
        selected.append(
            TableauPattern(
                rule,
                support=support,
                dirty_covered=int((cover & dirty_mask).sum()),
                confidence=confidence,
            )
        )
        covered |= cover
        qualified.remove(best)

    return PatternTableau(
        selected, dirty_total, int((covered & dirty_mask).sum())
    )


def _candidate_patterns(table, dirty_mask, sample_size, seed):
    """Cube-lattice candidates from a sample of the dirty tuples."""
    rng = make_rng(seed)
    dirty_indices = np.flatnonzero(dirty_mask)
    size = min(sample_size, len(dirty_indices))
    chosen = rng.choice(dirty_indices, size=size, replace=False)
    out = set()
    for i in chosen:
        base = Rule.from_tuple(table.encoded_row(int(i)))
        # Patterns up to two bound attributes: tableaux favour short,
        # readable patterns (matching the thesis's interpretability
        # framing); deeper patterns rarely pass min_support anyway.
        for ancestor in base.ancestors():
            if ancestor.num_bound <= 2:
                out.add(ancestor)
    out.discard(Rule.all_wildcards(table.schema.arity))
    return sorted(out, key=lambda r: (r.num_bound, r.values))
