"""Prior-work baselines the thesis positions SIRUM against.

Compared experimentally (§5.6):

- :mod:`~repro.baselines.elgebaly` — interpretable/informative
  explanations over binary measures [16]: the centralized one-rule-at-
  a-time miner whose straightforward distributed port is Naive SIRUM;
- :mod:`~repro.baselines.sarawagi` — user-cognizant data-cube
  exploration [29]: iterative scaling that resets every multiplier to 1
  whenever a rule is added, which §5.6.2 shows dominates its runtime.

Cited as the alternative data-cleansing technology (§1, Chapter 6):

- :mod:`~repro.baselines.pattern_tableau` — Data Auditor [17]:
  support/confidence pattern tableaux over a dirtiness measure;
- :mod:`~repro.baselines.dataxray` — Data X-Ray [35]: description-
  length cost descent selecting error-explaining features.
"""

from repro.baselines.elgebaly import ElGebalyMiner, binary_kl_divergence
from repro.baselines.sarawagi import SarawagiExplorer
from repro.baselines.pattern_tableau import PatternTableau, generate_tableau
from repro.baselines.dataxray import Diagnosis, diagnose

__all__ = [
    "Diagnosis",
    "ElGebalyMiner",
    "PatternTableau",
    "SarawagiExplorer",
    "binary_kl_divergence",
    "diagnose",
    "generate_tableau",
]
