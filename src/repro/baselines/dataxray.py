"""Data-X-Ray-style error diagnosis (Wang, Dong, Meliou [35]).

Data X-Ray explains systematic errors by selecting *features* (value
conjunctions — rules, in SIRUM terms) that minimize a description-
length cost balancing three terms:

    cost(F) = alpha * |F|                    (explanation complexity)
            + sum over f in F of (clean tuples f claims)   (false pos.)
            + (dirty tuples no feature covers)             (false neg.)

The original system searches a feature hierarchy top-down; this
reproduction searches the same space SIRUM's candidates come from (the
cube lattice of the dirty sample) with the paper's greedy cost descent:
repeatedly add the feature with the largest cost reduction until no
addition helps.  The thesis positions this as the alternative
data-cleansing diagnosis technique (§1, Chapter 6); the cleaning-app
benchmark compares its explanations against SIRUM's rules.
"""

import numpy as np

from repro.common.errors import ConfigError, DataError
from repro.baselines.pattern_tableau import _candidate_patterns


class Diagnosis:
    """Selected features plus the cost breakdown of the explanation."""

    def __init__(self, features, cost, false_positives, false_negatives,
                 alpha):
        self.features = list(features)
        self.cost = cost
        self.false_positives = false_positives
        self.false_negatives = false_negatives
        self.alpha = alpha

    def rules(self):
        return list(self.features)

    def decode(self, table):
        return [feature.decode(table) for feature in self.features]

    def __len__(self):
        return len(self.features)

    def __repr__(self):
        return (
            "Diagnosis(features=%d, cost=%.2f, fp=%d, fn=%d)"
            % (len(self.features), self.cost, self.false_positives,
               self.false_negatives)
        )


def diagnose(table, alpha=2.0, sample_size=32, max_features=20, seed=0):
    """Explain the dirty tuples of a binary measure via cost descent.

    ``alpha`` is the per-feature complexity charge: larger values buy
    fewer, broader features (the paper's accuracy/conciseness dial).
    """
    if alpha < 0:
        raise ConfigError("alpha must be non-negative")
    if max_features < 1:
        raise ConfigError("max_features must be at least 1")
    measure = np.asarray(table.measure)
    unique = np.unique(measure)
    if not np.all(np.isin(unique, (0.0, 1.0))):
        raise DataError("diagnosis requires a 0/1 measure")
    dirty_mask = measure == 1.0
    if not dirty_mask.any():
        return Diagnosis([], 0.0, 0, 0, alpha)

    candidates = _candidate_patterns(table, dirty_mask, sample_size, seed)
    covers = [(rule, rule.match_mask(table)) for rule in candidates]

    selected = []
    covered = np.zeros(len(table), dtype=bool)
    current_cost = _cost(len(selected), covered, dirty_mask, alpha)
    while len(selected) < max_features:
        best = None
        best_cost = current_cost
        for rule, cover in covers:
            if any(rule == chosen for chosen, _c in selected):
                continue
            candidate_cost = _cost(
                len(selected) + 1, covered | cover, dirty_mask, alpha
            )
            if candidate_cost < best_cost:
                best_cost = candidate_cost
                best = (rule, cover)
        if best is None:
            break
        selected.append(best)
        covered |= best[1]
        current_cost = best_cost

    false_positives = int((covered & ~dirty_mask).sum())
    false_negatives = int((dirty_mask & ~covered).sum())
    return Diagnosis(
        [rule for rule, _cover in selected],
        current_cost,
        false_positives,
        false_negatives,
        alpha,
    )


def _cost(num_features, covered, dirty_mask, alpha):
    false_positives = int((covered & ~dirty_mask).sum())
    false_negatives = int((dirty_mask & ~covered).sum())
    return alpha * num_features + false_positives + false_negatives
