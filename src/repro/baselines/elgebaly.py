"""El Gebaly et al. [16]: informative explanations over binary measures.

The thesis's §2.4 problem statement comes from this work: given a
binary measure, greedily build the smallest rule list whose maximum-
entropy estimate drives the KL-divergence below a threshold.  SIRUM's
Naive variant is the straightforward distributed port of this
technique; this module provides the *centralized* original for
correctness cross-checks and the binary (Bernoulli) KL-divergence the
paper uses.
"""

import numpy as np

from repro.common.errors import DataError
from repro.common.rng import make_rng
from repro.core.candidates import generate_from_lcas
from repro.core.divergence import kl_divergence
from repro.core.rule import Rule
from repro.core.sampling import (
    draw_sample_rows,
    lca_aggregates_baseline,
)
from repro.core.scaling import iterative_scale


def binary_kl_divergence(measure, estimates):
    """Per-tuple Bernoulli KL summed over the dataset.

    [16] treats each tuple's binary measure as a Bernoulli variable
    with estimated success probability clip(m-hat); the divergence is
    sum_t  m log(m / m-hat) + (1 - m) log((1 - m) / (1 - m-hat)),
    with 0 log 0 = 0.
    """
    m = np.asarray(measure, dtype=np.float64)
    q = np.asarray(estimates, dtype=np.float64)
    if m.shape != q.shape:
        raise DataError("length mismatch")
    if not np.all(np.isin(np.unique(m), (0.0, 1.0))):
        raise DataError("binary KL requires a 0/1 measure")
    q = np.clip(q, 1e-12, 1.0 - 1e-12)
    ones = m == 1.0
    total = -np.log(q[ones]).sum()
    total += -np.log(1.0 - q[~ones]).sum()
    return float(total)


class ElGebalyMiner:
    """Centralized greedy miner for binary measures (one rule per step).

    Mirrors SIRUM's Naive algorithm without any distribution: sample-
    based candidate pruning, Eq. 2.2 gain ranking, Algorithm 1 iterative
    scaling carried out directly over the dataset arrays.

    Parameters
    ----------
    k: number of rules beyond the all-wildcards rule.
    sample_size: candidate-pruning sample size |s|.
    epsilon: scaling convergence threshold.
    kl_threshold: optional early stop once the (standard) KL-divergence
        falls below this value — the Problem 1 formulation.
    """

    def __init__(self, k=10, sample_size=64, epsilon=0.01, kl_threshold=None,
                 seed=0):
        self.k = k
        self.sample_size = sample_size
        self.epsilon = epsilon
        self.kl_threshold = kl_threshold
        self.seed = seed

    def mine(self, table):
        measure = np.asarray(table.measure, dtype=np.float64)
        if not np.all(np.isin(np.unique(measure), (0.0, 1.0))):
            raise DataError("ElGebalyMiner requires a binary measure")
        if measure.sum() == 0:
            raise DataError("the measure has no positive tuples to explain")
        rng = make_rng(self.seed)
        sample_rows = draw_sample_rows(table, self.sample_size, rng)
        columns = table.dimension_columns()

        rules = [Rule.all_wildcards(table.schema.arity)]
        masks = [np.ones(len(table), dtype=bool)]
        scaled = iterative_scale(masks, measure, epsilon=self.epsilon)
        estimates = scaled.estimates
        lambdas = scaled.lambdas
        kl_trace = [kl_divergence(measure, estimates)]

        while len(rules) - 1 < self.k:
            if self.kl_threshold is not None and kl_trace[-1] <= self.kl_threshold:
                break
            lca = lca_aggregates_baseline(
                columns, measure, estimates, sample_rows
            )
            candidates = generate_from_lcas(lca, sample_rows)
            picked = None
            for idx in candidates.order_by_gain():
                rule = candidates.rules[idx]
                if candidates.gains[idx] <= 0:
                    break
                if rule not in set(rules):
                    picked = rule
                    break
            if picked is None:
                break
            rules.append(picked)
            masks.append(picked.match_mask(table))
            lambdas = np.concatenate([lambdas, [1.0]])
            scaled = iterative_scale(
                masks, measure, lambdas=lambdas, estimates=estimates,
                epsilon=self.epsilon,
            )
            estimates = scaled.estimates
            lambdas = scaled.lambdas
            kl_trace.append(kl_divergence(measure, estimates))
        return ElGebalyResult(rules, lambdas, estimates, kl_trace, measure)


class ElGebalyResult:
    """Rules, multipliers, estimates and both divergence flavours."""

    def __init__(self, rules, lambdas, estimates, kl_trace, measure):
        self.rules = rules
        self.lambdas = lambdas
        self.estimates = estimates
        self.kl_trace = kl_trace
        self._measure = measure

    @property
    def final_kl(self):
        return self.kl_trace[-1]

    @property
    def final_binary_kl(self):
        return binary_kl_divergence(self._measure, np.clip(self.estimates, 0, 1))
