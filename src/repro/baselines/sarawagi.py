"""Sarawagi [29]: user-cognizant multidimensional analysis.

The cube-exploration prior work.  Its iterative-scaling procedure —
implemented here exactly as the thesis describes in §5.6.2 — resets all
multipliers to one and re-scales the entire rule set from scratch every
time a rule is added, which Figure 5.15 shows is why the baseline
spends most of its time in iterative scaling.  It also considers the
full cube (no candidate pruning) and restricts overlap: a new rule may
overlap an existing one only if one contains the other.
"""

import numpy as np

from repro.common.errors import DataError
from repro.core.candidates import (
    candidate_set_from_cube,
    generate_exhaustive,
    merge_exhaustive,
)
from repro.core.divergence import kl_divergence
from repro.core.measure import MeasureTransform
from repro.core.rule import Rule
from repro.core.scaling import iterative_scale


class SarawagiExplorer:
    """Centralized reference implementation of the [29] explorer."""

    def __init__(self, k=10, epsilon=0.01, restrict_overlap=True, seed=0):
        self.k = k
        self.epsilon = epsilon
        self.restrict_overlap = restrict_overlap
        self.seed = seed

    def explore(self, table, prior_rules=()):
        transform = MeasureTransform.fit(table.measure)
        measure = transform.transformed
        columns = table.dimension_columns()

        rules = [Rule.all_wildcards(table.schema.arity)]
        for rule in prior_rules:
            rule = rule if isinstance(rule, Rule) else Rule(rule)
            if rule not in rules:
                rules.append(rule)
        masks = [r.match_mask(table) for r in rules]
        for rule, mask in zip(rules, masks):
            if not mask.any():
                raise DataError("prior rule %r covers no tuples" % (rule,))
        estimates, total_iterations = self._rescale_from_scratch(
            masks, measure
        )
        kl_trace = [kl_divergence(measure, estimates)]

        num_prior = len(rules)
        while len(rules) - num_prior < self.k:
            cube, _ = generate_exhaustive(columns, measure, estimates)
            merged = merge_exhaustive([cube])
            candidates = candidate_set_from_cube(merged, 0)
            picked = None
            existing = set(rules)
            for idx in candidates.order_by_gain():
                if candidates.gains[idx] <= 0:
                    break
                rule = candidates.rules[idx]
                if rule in existing:
                    continue
                if self.restrict_overlap and not self._admissible(rule, rules):
                    continue
                picked = rule
                break
            if picked is None:
                break
            rules.append(picked)
            masks.append(picked.match_mask(table))
            estimates, iterations = self._rescale_from_scratch(masks, measure)
            total_iterations += iterations
            kl_trace.append(kl_divergence(measure, estimates))
        return SarawagiResult(
            rules, transform.inverse(estimates), kl_trace, total_iterations
        )

    def _rescale_from_scratch(self, masks, measure):
        """The [29] behaviour: lambdas reset to 1 on every invocation."""
        result = iterative_scale(masks, measure, epsilon=self.epsilon)
        return result.estimates, result.iterations

    def _admissible(self, rule, rules):
        """[29] disallows overlap unless one rule contains the other."""
        for existing in rules:
            if existing.is_disjoint(rule):
                continue
            if existing.is_ancestor_of(rule) or rule.is_ancestor_of(existing):
                continue
            return False
        return True


class SarawagiResult:
    """Rules, original-unit estimates and the scaling-iteration count."""

    def __init__(self, rules, estimates, kl_trace, scaling_iterations):
        self.rules = rules
        self.estimates = estimates
        self.kl_trace = kl_trace
        self.scaling_iterations = scaling_iterations

    @property
    def final_kl(self):
        return self.kl_trace[-1]
