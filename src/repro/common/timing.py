"""Wall-clock timing helpers used by the profiler and benchmarks."""

import time
from collections import OrderedDict


class Stopwatch:
    """Measure elapsed wall-clock time, usable as a context manager.

    >>> with Stopwatch() as sw:
    ...     pass
    >>> sw.elapsed >= 0
    True
    """

    def __init__(self):
        self._start = None
        self.elapsed = 0.0

    def start(self):
        self._start = time.perf_counter()
        return self

    def stop(self):
        if self._start is None:
            raise RuntimeError("Stopwatch was never started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


class StepTimer:
    """Accumulate named step durations, preserving insertion order.

    SIRUM's profiler uses one StepTimer per mining run to attribute time
    to candidate pruning, ancestor generation, gain computation and
    iterative scaling (thesis Figures 3.1 and 3.2).
    """

    def __init__(self):
        self._totals = OrderedDict()

    def time(self, name):
        """Return a context manager that adds its duration to ``name``."""
        timer = self

        class _Step:
            def __enter__(self):
                self._sw = Stopwatch().start()
                return self

            def __exit__(self, exc_type, exc, tb):
                timer.add(name, self._sw.stop())
                return False

        return _Step()

    def add(self, name, seconds):
        self._totals[name] = self._totals.get(name, 0.0) + seconds

    def total(self, name=None):
        if name is not None:
            return self._totals.get(name, 0.0)
        return sum(self._totals.values())

    def as_dict(self):
        return dict(self._totals)

    def merge(self, other):
        for name, seconds in other.as_dict().items():
            self.add(name, seconds)
        return self
