"""Shared utilities: errors, RNG, timing and validation helpers."""

from repro.common.errors import (
    ReproError,
    ConfigError,
    DataError,
    EngineError,
    ConvergenceError,
)
from repro.common.rng import make_rng
from repro.common.timing import Stopwatch, StepTimer

__all__ = [
    "ReproError",
    "ConfigError",
    "DataError",
    "EngineError",
    "ConvergenceError",
    "make_rng",
    "Stopwatch",
    "StepTimer",
]
