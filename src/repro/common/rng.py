"""Deterministic random number generation.

All stochastic behaviour in the library (dataset generation, sampling,
straggler simulation) flows through :func:`make_rng` so experiments are
reproducible from a single integer seed.
"""

import numpy as np


def make_rng(seed):
    """Return a numpy Generator seeded deterministically.

    Accepts an ``int`` seed or an existing ``numpy.random.Generator``
    (returned unchanged), so functions can take either.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng, salt):
    """Derive an independent child generator from ``rng`` and ``salt``.

    Used when a deterministic sub-stream is needed (e.g. one stream per
    partition) without consuming state from the parent in an
    order-dependent way.
    """
    base = make_rng(rng)
    seed = int(base.integers(0, 2**63 - 1)) ^ (hash(salt) & (2**63 - 1))
    return np.random.default_rng(seed)
