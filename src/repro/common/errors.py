"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at application boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DataError(ReproError):
    """A dataset, schema or encoding is malformed."""


class EngineError(ReproError):
    """The dataflow engine was used incorrectly or hit an internal fault."""


class ConvergenceError(ReproError):
    """Iterative scaling failed to converge within its iteration budget."""


class ServiceError(ReproError):
    """The concurrent mining service was used incorrectly or failed."""


class QueueFullError(ServiceError):
    """The service's bounded admission queue rejected a new job."""


class DeadlineExceededError(ServiceError):
    """A job missed its deadline before it could start executing."""


class ServiceClosedError(ServiceError):
    """A job was submitted to a service that has been shut down."""


class BudgetExhaustedError(ServiceError):
    """An engine-worker budget request could not be granted in time."""
