"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at application boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DataError(ReproError):
    """A dataset, schema or encoding is malformed."""


class EngineError(ReproError):
    """The dataflow engine was used incorrectly or hit an internal fault."""


class ConvergenceError(ReproError):
    """Iterative scaling failed to converge within its iteration budget."""
