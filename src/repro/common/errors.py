"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at application boundaries.

Errors also cross the network front door (:mod:`repro.net`): every
class here owns a *stable* integer wire code (:data:`WIRE_ERROR_CODES`)
so a server-side exception arrives client-side as the *same type* —
``to_wire()`` / ``from_wire()`` round-trip type and message.  Codes are
append-only: never renumber or reuse one, or old clients will raise
the wrong type against new servers.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DataError(ReproError):
    """A dataset, schema or encoding is malformed."""


class EngineError(ReproError):
    """The dataflow engine was used incorrectly or hit an internal fault."""


class ConvergenceError(ReproError):
    """Iterative scaling failed to converge within its iteration budget."""


class ServiceError(ReproError):
    """The concurrent mining service was used incorrectly or failed."""


class QueueFullError(ServiceError):
    """The service's bounded admission queue rejected a new job."""


class DeadlineExceededError(ServiceError):
    """A job missed its deadline before it could start executing."""


class ServiceClosedError(ServiceError):
    """A job was submitted to a service that has been shut down."""


class BudgetExhaustedError(ServiceError):
    """An engine-worker budget request could not be granted in time."""


class ResultTimeoutError(ServiceError):
    """A blocking wait for a job result exhausted its caller timeout.

    Distinct from :class:`DeadlineExceededError` (the *job* missed its
    start deadline and failed); here only the *wait* gave up — the job
    is still queued or running and may yet complete.
    """


class TenantQuotaError(ServiceError):
    """A tenant exceeded its per-tenant in-flight job quota."""


class ProtocolError(ReproError):
    """A network frame violated the wire protocol."""


class FrameTooLargeError(ProtocolError):
    """A frame's declared payload exceeds the negotiated maximum."""


#: Stable wire codes (append-only — see module docstring).  Subclasses
#: not listed here map to their nearest registered ancestor, so adding
#: an error type without a code degrades gracefully instead of failing.
WIRE_ERROR_CODES = {
    ReproError: 1,
    ConfigError: 2,
    DataError: 3,
    EngineError: 4,
    ConvergenceError: 5,
    ServiceError: 10,
    QueueFullError: 11,
    DeadlineExceededError: 12,
    ServiceClosedError: 13,
    BudgetExhaustedError: 14,
    ResultTimeoutError: 15,
    TenantQuotaError: 16,
    ProtocolError: 20,
    FrameTooLargeError: 21,
}

_ERRORS_BY_CODE = {code: cls for cls, code in WIRE_ERROR_CODES.items()}
assert len(_ERRORS_BY_CODE) == len(WIRE_ERROR_CODES), "duplicate wire code"


def wire_code(error):
    """The stable code for ``error`` (an instance or a class).

    Unregistered subclasses report their nearest registered ancestor's
    code; anything outside the hierarchy reports :class:`ReproError`'s.
    """
    cls = error if isinstance(error, type) else type(error)
    for ancestor in cls.__mro__:
        code = WIRE_ERROR_CODES.get(ancestor)
        if code is not None:
            return code
    return WIRE_ERROR_CODES[ReproError]


def to_wire(error):
    """Serialize an exception into a wire-safe error payload."""
    return {
        "code": wire_code(error),
        "error": type(error).__name__,
        "message": str(error),
    }


def from_wire(payload):
    """Rebuild the typed exception a ``to_wire()`` payload describes.

    Unknown codes come back as a plain :class:`ReproError` carrying the
    original type name in the message, so newer servers stay debuggable
    from older clients.
    """
    code = payload.get("code")
    message = payload.get("message", "")
    cls = _ERRORS_BY_CODE.get(code)
    if cls is None:
        name = payload.get("error", "unknown error")
        return ReproError("%s (unknown wire code %r): %s"
                          % (name, code, message))
    return cls(message)
