"""Benchmark harness helpers: dataset registry, runners, table output."""

from repro.bench.harness import (
    dataset_by_name,
    make_cluster,
    print_table,
    run_variant,
    speedup,
)

__all__ = [
    "dataset_by_name",
    "make_cluster",
    "print_table",
    "run_variant",
    "speedup",
]
