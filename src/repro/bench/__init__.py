"""Benchmark harness helpers: dataset registry, runners, table output."""

from repro.bench.harness import (
    bench_smoke_enabled,
    build_mining_burst_workload,
    build_service_workload,
    dataset_by_name,
    json_result_line,
    latency_summary,
    make_cluster,
    mining_results_identical,
    print_table,
    run_serial_reference,
    run_service_workload,
    run_variant,
    service_results_match,
    speedup,
)

__all__ = [
    "bench_smoke_enabled",
    "build_mining_burst_workload",
    "build_service_workload",
    "dataset_by_name",
    "json_result_line",
    "latency_summary",
    "make_cluster",
    "mining_results_identical",
    "print_table",
    "run_serial_reference",
    "run_service_workload",
    "run_variant",
    "service_results_match",
    "speedup",
]
