"""Benchmark harness helpers: dataset registry, runners, table output."""

from repro.bench.harness import (
    build_service_workload,
    dataset_by_name,
    latency_summary,
    make_cluster,
    print_table,
    run_serial_reference,
    run_service_workload,
    run_variant,
    service_results_match,
    speedup,
)

__all__ = [
    "build_service_workload",
    "dataset_by_name",
    "latency_summary",
    "make_cluster",
    "print_table",
    "run_serial_reference",
    "run_service_workload",
    "run_variant",
    "service_results_match",
    "speedup",
]
