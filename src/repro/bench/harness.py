"""Shared plumbing for the per-figure benchmark scripts.

Each ``benchmarks/bench_fig_*.py`` file regenerates one thesis figure:
it builds the figure's workload, runs the SIRUM variants involved, and
prints the series the figure plots (plus the expected shape from the
thesis).  These helpers keep those scripts small and uniform.

The ``*_service_*`` helpers drive the concurrent mining service
(:mod:`repro.service`) with a scripted mixed mining + SQL workload;
they are shared by ``repro.cli serve`` and the service concurrency
ablation benchmark so both measure exactly the same thing.
"""

import json
import threading
import time

from repro.common.errors import ConfigError, ServiceError
from repro.core.config import variant_config
from repro.core.miner import Sirum
from repro.data.generators import (
    gdelt_table,
    income_table,
    susy_table,
    tlc_table,
)
from repro.engine.cluster import (
    ClusterContext,
    default_executor,
    default_parallelism,
)
from repro.engine.cost import ClusterSpec, CostModel
from repro.engine.placement import default_placement

_DATASETS = {
    "income": income_table,
    "gdelt": gdelt_table,
    "susy": susy_table,
    "tlc": tlc_table,
}

#: Falsy spellings of REPRO_BENCH_SMOKE — "0"/"false" must mean *off*.
_FALSY = ("", "0", "false", "no", "off")


def bench_smoke_enabled():
    """True when ``REPRO_BENCH_SMOKE`` requests the shrunk CI workload."""
    import os

    return os.environ.get(
        "REPRO_BENCH_SMOKE", ""
    ).strip().lower() not in _FALSY


def dataset_by_name(name, num_rows=None, **kwargs):
    """Build one of the evaluation datasets by thesis name."""
    try:
        factory = _DATASETS[name]
    except KeyError:
        raise ConfigError(
            "unknown dataset %r; choose from %s"
            % (name, ", ".join(sorted(_DATASETS)))
        ) from None
    return factory(num_rows=num_rows, **kwargs)


def make_cluster(
    num_executors=8,
    cores_per_executor=8,
    executor_memory_bytes=256 * 1024**2,
    storage_fraction=0.6,
    straggler_sigma=0.0,
    seed=7,
    parallelism=None,
    executor=None,
    budget_grant=None,
    placed=None,
    workers=None,
):
    """The benchmarks' default cluster (a scaled-down thesis cluster).

    ``parallelism`` sets the real worker count partition kernels run
    on and ``executor`` the pool kind (None defers to a
    ``budget_grant``'s granted degree when one is given, then to
    ``REPRO_PARALLELISM`` / ``REPRO_EXECUTOR``); ``placed`` pins shards
    to workers (None defers to ``REPRO_PLACEMENT``) and ``workers``
    lists remote shard-worker addresses for ``executor="remote"``.
    Simulated metrics are identical across settings, only wall-clock
    changes.
    """
    spec = ClusterSpec(
        num_executors=num_executors,
        cores_per_executor=cores_per_executor,
        executor_memory_bytes=executor_memory_bytes,
        storage_fraction=storage_fraction,
        straggler_sigma=straggler_sigma,
        seed=seed,
    )
    return ClusterContext(spec, CostModel(), parallelism=parallelism,
                          executor=executor, budget_grant=budget_grant,
                          placed=placed, workers=workers)


def run_variant(table, variant, cluster=None, prior_rules=None,
                parallelism=None, executor=None, **overrides):
    """Mine ``table`` with a Table 4.2 variant on a fresh cluster.

    Returns the :class:`~repro.core.result.MiningResult`; its
    ``simulated_seconds`` / phase breakdowns are the benchmark metrics.
    ``parallelism`` / ``executor`` configure the fresh cluster's
    workers (ignored when an explicit ``cluster`` is passed); an
    internally created cluster is closed before returning.
    """
    owns_cluster = cluster is None
    cluster = cluster or make_cluster(parallelism=parallelism,
                                      executor=executor)
    config = variant_config(variant, **overrides)
    try:
        return Sirum(config).mine(table, cluster=cluster,
                                  prior_rules=prior_rules)
    finally:
        if owns_cluster:
            cluster.close()


def mining_results_identical(a, b):
    """True when two mining results are bit-identical.

    The engine's cross-execution-mode guarantee, as one predicate:
    same rules, lambdas, estimates, KL trace and every simulated
    metric (counters, phase attribution, simulated seconds).
    """
    import numpy as np

    if [tuple(m.rule.values) for m in a.rule_set] != [
        tuple(m.rule.values) for m in b.rule_set
    ]:
        return False
    if not np.array_equal(a.lambdas, b.lambdas):
        return False
    if not np.array_equal(a.estimates, b.estimates):
        return False
    if a.kl_trace != b.kl_trace:
        return False
    return a.metrics == b.metrics


def json_result_line(tag, payload):
    """One machine-readable benchmark result line, tagged for grepping.

    Every line records the engine execution mode — ``executor`` kind,
    ``parallelism``, whether execution was ``placement``-pinned and the
    ``shards`` the workload partitioned into (None when the benchmark
    didn't record one) — so result files from differently-configured
    runs stay interpretable; explicit keys in ``payload`` win over the
    environment-derived defaults.
    """
    payload = dict(payload)
    payload.setdefault("executor", default_executor())
    payload.setdefault("parallelism", default_parallelism())
    payload.setdefault("placement", default_placement())
    payload.setdefault("shards", None)
    return "%s %s" % (tag, json.dumps(payload))


#: Mining variants cycled through by the scripted service workload —
#: a handful of distinct configurations, repeated, is the interactive
#: shape the service's cache and coalescing are built for.
SERVICE_WORKLOAD_VARIANTS = ("optimized", "rct", "fastpruning", "baseline")


def build_service_workload(dataset, dimensions, measure, num_requests=32,
                           k=3, sample_size=16, seed=0,
                           distinct_mine_configs=2, distinct_queries=2):
    """A deterministic mixed mine + SQL request script.

    Alternates mining and SQL requests, cycling through
    ``distinct_mine_configs`` mining variants and ``distinct_queries``
    per-dimension aggregation queries — so the script *repeats itself*,
    as interactive analysis does.  Returns ``[(kind, payload), ...]``
    where kind is ``"mine"`` (payload: keyword dict) or ``"sql"``
    (payload: query text).
    """
    distinct_mine_configs = max(
        1, min(distinct_mine_configs, len(SERVICE_WORKLOAD_VARIANTS))
    )
    distinct_queries = max(1, min(distinct_queries, len(dimensions)))
    requests = []
    for i in range(num_requests):
        turn = i // 2
        if i % 2 == 0:
            variant = SERVICE_WORKLOAD_VARIANTS[turn % distinct_mine_configs]
            requests.append(("mine", {
                "k": k, "variant": variant,
                "sample_size": sample_size, "seed": seed,
            }))
        else:
            dim = dimensions[turn % distinct_queries]
            requests.append(("sql", (
                "SELECT %s, COUNT(*) AS c, AVG(%s) AS a FROM %s "
                "GROUP BY %s ORDER BY c DESC, %s" % (
                    dim, measure, dataset, dim, dim,
                )
            )))
    return requests


def build_mining_burst_workload(num_requests=8, k=3, sample_size=16,
                                variant="optimized", seed_base=1000):
    """``num_requests`` *distinct* mining requests (per-request seeds).

    Unlike :func:`build_service_workload` nothing here repeats, so the
    cache and coalescing collapse nothing: every request runs a real
    engine job.  This is the worst-case concurrency shape the
    engine-worker budget exists for — N simultaneous clusters all
    wanting their full ``parallelism``.
    """
    return [
        ("mine", {
            "k": k, "variant": variant, "sample_size": sample_size,
            "seed": seed_base + i,
        })
        for i in range(num_requests)
    ]


def run_service_workload(service, dataset, requests, num_clients=8,
                         timeout=120.0):
    """Fire ``requests`` at ``service`` from ``num_clients`` threads.

    Client ``j`` issues requests ``j, j + num_clients, ...`` in order,
    mimicking independent analysts replaying overlapping sessions.
    ``timeout`` bounds each *request*; a client may therefore
    legitimately run for up to ``timeout`` times its share of the
    script, and the workload waits that long before declaring the run
    hung (raising instead of silently reporting partial results).
    Returns per-request results and latencies (request order), total
    wall seconds and requests/second.
    """
    results = [None] * len(requests)
    latencies = [0.0] * len(requests)
    errors = []

    def client(first):
        try:
            for i in range(first, len(requests), num_clients):
                kind, payload = requests[i]
                started = time.perf_counter()
                if kind == "mine":
                    results[i] = service.mine(
                        dataset, timeout=timeout, **payload
                    )
                else:
                    results[i] = service.query(payload, timeout=timeout)
                latencies[i] = time.perf_counter() - started
        except BaseException as exc:  # re-raised on the caller's thread
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(j,), daemon=True)
        for j in range(min(num_clients, len(requests)))
    ]
    requests_per_client = -(-len(requests) // max(1, num_clients))
    join_deadline = (
        time.monotonic() + timeout * requests_per_client + 5.0
    )
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(max(0.0, join_deadline - time.monotonic()))
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    alive = [thread for thread in threads if thread.is_alive()]
    if alive:
        raise ServiceError(
            "service workload hung: %d of %d clients still running after "
            "%.0fs" % (len(alive), len(threads), wall)
        )
    return {
        "results": results,
        "latencies": latencies,
        "wall_seconds": wall,
        "throughput_rps": len(requests) / wall if wall > 0 else float("inf"),
    }


def run_serial_reference(table, dataset, requests):
    """The same script, serially and uncached (the pre-service path).

    Every mining request runs a full :func:`repro.core.miner.mine`;
    every SQL request gets a fresh engine with plan caching disabled —
    the cost a caller paid before the service existed.
    """
    from repro.core.miner import mine
    from repro.sql import SqlEngine

    results = []
    latencies = []
    started_all = time.perf_counter()
    for kind, payload in requests:
        started = time.perf_counter()
        if kind == "mine":
            results.append(mine(table, **payload))
        else:
            engine = SqlEngine(plan_cache_size=0)
            engine.register_table(dataset, table)
            results.append(engine.query(payload))
        latencies.append(time.perf_counter() - started)
    wall = time.perf_counter() - started_all
    return {
        "results": results,
        "latencies": latencies,
        "wall_seconds": wall,
        "throughput_rps": len(requests) / wall if wall > 0 else float("inf"),
    }


def service_results_match(a, b):
    """True when two workload result lists are bit-identical.

    Mining results compare on the exact rule tuples, per-rule counts
    and the full KL trace; SQL results compare on the exact row lists.
    """
    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if hasattr(left, "rule_set"):
            if not hasattr(right, "rule_set"):
                return False
            left_rules = [
                (tuple(m.rule.values), m.count, m.avg_measure)
                for m in left.rule_set
            ]
            right_rules = [
                (tuple(m.rule.values), m.count, m.avg_measure)
                for m in right.rule_set
            ]
            if left_rules != right_rules:
                return False
            if list(left.kl_trace) != list(right.kl_trace):
                return False
        else:
            if left.rows != right.rows or left.columns != right.columns:
                return False
    return True


def latency_summary(latencies):
    """Mean / p50 / p95 / max of a latency list, in seconds."""
    ordered = sorted(latencies)
    n = len(ordered)
    if n == 0:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": sum(ordered) / n,
        "p50": ordered[n // 2],
        "p95": ordered[min(n - 1, (n * 95) // 100)],
        "max": ordered[-1],
    }


def speedup(baseline_seconds, optimized_seconds):
    """Baseline / optimized ratio, guarded against zero."""
    if optimized_seconds <= 0:
        return float("inf")
    return baseline_seconds / optimized_seconds


def print_table(title, headers, rows, note=None):
    """Print one figure's data series as an aligned text table."""
    rendered = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    print()
    print("== %s ==" % title)
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rendered:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        print("shape: %s" % note)
    print()


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return "%.3g" % value
        return "%.3f" % value
    return str(value)
