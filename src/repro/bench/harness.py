"""Shared plumbing for the per-figure benchmark scripts.

Each ``benchmarks/bench_fig_*.py`` file regenerates one thesis figure:
it builds the figure's workload, runs the SIRUM variants involved, and
prints the series the figure plots (plus the expected shape from the
thesis).  These helpers keep those scripts small and uniform.
"""

from repro.common.errors import ConfigError
from repro.core.config import variant_config
from repro.core.miner import Sirum
from repro.data.generators import (
    gdelt_table,
    income_table,
    susy_table,
    tlc_table,
)
from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel

_DATASETS = {
    "income": income_table,
    "gdelt": gdelt_table,
    "susy": susy_table,
    "tlc": tlc_table,
}


def dataset_by_name(name, num_rows=None, **kwargs):
    """Build one of the evaluation datasets by thesis name."""
    try:
        factory = _DATASETS[name]
    except KeyError:
        raise ConfigError(
            "unknown dataset %r; choose from %s"
            % (name, ", ".join(sorted(_DATASETS)))
        ) from None
    return factory(num_rows=num_rows, **kwargs)


def make_cluster(
    num_executors=8,
    cores_per_executor=8,
    executor_memory_bytes=256 * 1024**2,
    storage_fraction=0.6,
    straggler_sigma=0.0,
    seed=7,
):
    """The benchmarks' default cluster (a scaled-down thesis cluster)."""
    spec = ClusterSpec(
        num_executors=num_executors,
        cores_per_executor=cores_per_executor,
        executor_memory_bytes=executor_memory_bytes,
        storage_fraction=storage_fraction,
        straggler_sigma=straggler_sigma,
        seed=seed,
    )
    return ClusterContext(spec, CostModel())


def run_variant(table, variant, cluster=None, prior_rules=None, **overrides):
    """Mine ``table`` with a Table 4.2 variant on a fresh cluster.

    Returns the :class:`~repro.core.result.MiningResult`; its
    ``simulated_seconds`` / phase breakdowns are the benchmark metrics.
    """
    cluster = cluster or make_cluster()
    config = variant_config(variant, **overrides)
    return Sirum(config).mine(table, cluster=cluster, prior_rules=prior_rules)


def speedup(baseline_seconds, optimized_seconds):
    """Baseline / optimized ratio, guarded against zero."""
    if optimized_seconds <= 0:
        return float("inf")
    return baseline_seconds / optimized_seconds


def print_table(title, headers, rows, note=None):
    """Print one figure's data series as an aligned text table."""
    rendered = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    print()
    print("== %s ==" % title)
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rendered:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        print("shape: %s" % note)
    print()


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return "%.3g" % value
        return "%.3f" % value
    return str(value)
