"""AST -> logical plan translation (name resolution and binding).

The planner resolves column references against the FROM-clause scope,
classifies the query as plain or aggregating, and emits a plan tree of
:mod:`repro.sql.plan` nodes with all expressions bound to integer row
slots.  Semantic violations raise :class:`SqlAnalysisError`.
"""

from repro.sql import ast, plan
from repro.sql.errors import SqlAnalysisError
from repro.sql.functions import is_aggregate_name, lookup_scalar


class Scope:
    """Visible columns of a FROM clause: (qualifier, name) -> slot."""

    def __init__(self):
        self.entries = []  # (qualifier_lower_or_None, name_lower, display_name)

    def extend(self, qualifier, names):
        qualifier = qualifier.lower() if qualifier else None
        for name in names:
            self.entries.append((qualifier, name.lower(), name))

    def resolve(self, ref):
        """Resolve a ColumnRef to its slot; raises on unknown/ambiguous."""
        wanted_table = ref.table.lower() if ref.table else None
        wanted_name = ref.name.lower()
        matches = [
            i
            for i, (qualifier, name, _display) in enumerate(self.entries)
            if name == wanted_name
            and (wanted_table is None or qualifier == wanted_table)
        ]
        if not matches:
            raise SqlAnalysisError("unknown column %r" % _display_ref(ref))
        if len(matches) > 1:
            raise SqlAnalysisError("ambiguous column %r" % _display_ref(ref))
        return matches[0]

    def slots_for_star(self, qualifier=None):
        qualifier = qualifier.lower() if qualifier else None
        slots = [
            i
            for i, (entry_qualifier, _name, _display) in enumerate(self.entries)
            if qualifier is None or entry_qualifier == qualifier
        ]
        if not slots:
            raise SqlAnalysisError("unknown table %r in star expansion" % qualifier)
        return slots

    def display_name(self, slot):
        return self.entries[slot][2]

    def __len__(self):
        return len(self.entries)


def _display_ref(ref):
    return "%s.%s" % (ref.table, ref.name) if ref.table else ref.name


class Planner:
    """Stateless translator; one instance may plan many queries."""

    def __init__(self, catalog):
        self._catalog = catalog

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def plan_select(self, select):
        source_plan, scope = self._plan_source(select.source)
        if select.where is not None:
            predicate = self._bind_scalar(select.where, scope)
            source_plan = plan.Filter(source_plan, predicate)
        if self._is_aggregate_query(select):
            return self._plan_aggregate_query(select, source_plan, scope)
        return self._plan_plain_query(select, source_plan, scope)

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _plan_source(self, source):
        if isinstance(source, ast.TableRef):
            relation = self._catalog.lookup(source.name)
            node = plan.Scan(
                source.name, relation, list(range(len(relation.columns)))
            )
            scope = Scope()
            scope.extend(source.alias or source.name, relation.columns)
            return node, scope
        if isinstance(source, ast.Join):
            return self._plan_join(source)
        raise SqlAnalysisError("unsupported FROM clause %r" % (source,))

    def _plan_join(self, join):
        left_plan, left_scope = self._plan_source(join.left)
        right_plan, right_scope = self._plan_source(join.right)
        scope = Scope()
        scope.entries = list(left_scope.entries) + list(right_scope.entries)
        if join.condition is None:
            return plan.CrossJoin(left_plan, right_plan), scope
        equi_pairs, residual_conjuncts = self._split_join_condition(
            join.condition, left_scope, right_scope
        )
        if equi_pairs:
            left_keys = [("col", left_slot) for left_slot, _r in equi_pairs]
            right_keys = [("col", right_slot) for _l, right_slot in equi_pairs]
            residual = None
            if residual_conjuncts:
                residual = self._bind_conjunction(residual_conjuncts, scope)
            return (
                plan.HashJoin(left_plan, right_plan, left_keys, right_keys, residual),
                scope,
            )
        condition = self._bind_scalar(join.condition, scope)
        return plan.CrossJoin(left_plan, right_plan, condition), scope

    def _split_join_condition(self, condition, left_scope, right_scope):
        """Partition AND-ed conjuncts into equi-key pairs and residuals.

        A conjunct ``a = b`` where one side resolves in the left scope
        and the other in the right becomes a hash-join key pair; every
        other conjunct stays as a residual filter.
        """
        equi_pairs = []
        residual = []
        for conjunct in _flatten_and(condition):
            pair = self._as_equi_pair(conjunct, left_scope, right_scope)
            if pair is not None:
                equi_pairs.append(pair)
            else:
                residual.append(conjunct)
        return equi_pairs, residual

    def _as_equi_pair(self, conjunct, left_scope, right_scope):
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        sides = (conjunct.left, conjunct.right)
        if not all(isinstance(side, ast.ColumnRef) for side in sides):
            return None
        for first, second in ((sides[0], sides[1]), (sides[1], sides[0])):
            left_slot = _try_resolve(left_scope, first)
            right_slot = _try_resolve(right_scope, second)
            if left_slot is not None and right_slot is not None:
                return left_slot, right_slot
        return None

    def _bind_conjunction(self, conjuncts, scope):
        bound = self._bind_scalar(conjuncts[0], scope)
        for conjunct in conjuncts[1:]:
            bound = ("and", bound, self._bind_scalar(conjunct, scope))
        return bound

    # ------------------------------------------------------------------
    # Plain (non-aggregate) queries
    # ------------------------------------------------------------------

    def _plan_plain_query(self, select, source_plan, scope):
        exprs, names = self._expand_select_items(select.items, scope)
        bound = [self._bind_scalar(e, scope) for e in exprs]
        node = plan.Project(source_plan, bound, names)
        if select.order:
            node = self._plan_order(select, node, exprs, names, scope)
        # Distinct preserves first-occurrence order, so applying it after
        # the sort keeps ORDER BY semantics.
        node = self._apply_distinct(select, node)
        return self._apply_limit(select, node)

    def _plan_order(self, select, node, select_exprs, names, scope):
        keys = []
        extra = []  # sort keys not present in the select list
        for item in select.order:
            slot = self._order_key_slot(item.expr, select_exprs, names)
            if slot is not None:
                keys.append(("col", slot))
            else:
                keys.append(("col", len(names) + len(extra)))
                extra.append(self._bind_scalar(item.expr, scope))
        if extra:
            # Widen the projection with hidden sort keys, sort, then trim.
            widened = plan.Project(
                node.child,
                list(node.exprs) + extra,
                list(node.names) + ["$sort%d" % i for i in range(len(extra))],
            )
            sort = plan.Sort(widened, keys, [i.ascending for i in select.order])
            trim = [("col", i) for i in range(len(names))]
            return plan.Project(sort, trim, names)
        return plan.Sort(node, keys, [i.ascending for i in select.order])

    def _order_key_slot(self, expr, select_exprs, names):
        """Match an ORDER BY expression to a select-list output slot."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            ordinal = expr.value
            if not 1 <= ordinal <= len(names):
                raise SqlAnalysisError("ORDER BY position %d out of range" % ordinal)
            return ordinal - 1
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            lowered = expr.name.lower()
            for i, name in enumerate(names):
                if name.lower() == lowered:
                    return i
        for i, select_expr in enumerate(select_exprs):
            if select_expr == expr:
                return i
        return None

    def _expand_select_items(self, items, scope):
        exprs = []
        names = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for slot in scope.slots_for_star(item.expr.table):
                    exprs.append(_ref_for_slot(scope, slot))
                    names.append(scope.display_name(slot))
                continue
            exprs.append(item.expr)
            names.append(item.alias or _default_name(item.expr))
        return exprs, names

    def _apply_distinct(self, select, node):
        return plan.Distinct(node) if select.distinct else node

    def _apply_limit(self, select, node):
        if select.limit is None and select.offset is None:
            return node
        return plan.Limit(node, select.limit, select.offset or 0)

    # ------------------------------------------------------------------
    # Aggregate queries
    # ------------------------------------------------------------------

    def _is_aggregate_query(self, select):
        if select.group is not None:
            return True
        for item in select.items:
            if not isinstance(item.expr, ast.Star) and _contains_aggregate(item.expr):
                return True
        if select.having is not None:
            return True
        return False

    def _plan_aggregate_query(self, select, source_plan, scope):
        group_exprs = list(select.group.exprs) if select.group else []
        grouping_sets = (
            select.group.grouping_sets() if select.group else [tuple()]
        )
        bound_groups = [self._bind_scalar(e, scope) for e in group_exprs]

        collector = _AggregateCollector(group_exprs, scope, self)
        select_exprs, names = self._expand_select_items(select.items, scope)
        output_exprs = [collector.rewrite(e) for e in select_exprs]
        having_expr = (
            collector.rewrite(select.having) if select.having is not None else None
        )
        order_bound = None
        if select.order:
            order_bound = []
            for item in select.order:
                slot = self._order_key_slot(item.expr, select_exprs, names)
                if slot is not None:
                    order_bound.append(("col", slot))
                else:
                    order_bound.append(("post", collector.rewrite(item.expr)))

        node = plan.Aggregate(
            source_plan, bound_groups, grouping_sets, collector.specs
        )
        # Aggregate output layout: g group values, a aggregate results,
        # g grouping bits.  Rewrite ("grouping", i) -> ("col", g + a + i)
        # now that a is known.
        bit_base = len(bound_groups) + len(collector.specs)
        output_exprs = [_resolve_grouping(e, bit_base) for e in output_exprs]
        if having_expr is not None:
            having_expr = _resolve_grouping(having_expr, bit_base)
        if order_bound is not None:
            order_bound = [
                ("post", _resolve_grouping(e[1], bit_base)) if e[0] == "post" else e
                for e in order_bound
            ]
        if having_expr is not None:
            node = plan.Filter(node, having_expr)
        node = plan.Project(node, output_exprs, names)
        if select.order:
            node = self._plan_aggregate_order(
                select, node, order_bound, having_expr, names, collector
            )
        node = self._apply_distinct(select, node)
        return self._apply_limit(select, node)

    def _plan_aggregate_order(self, select, node, order_bound, having_expr,
                              names, collector):
        ascending = [item.ascending for item in select.order]
        extra = [expr for expr in order_bound if expr[0] == "post"]
        if not extra:
            return plan.Sort(node, order_bound, ascending)
        # Sort keys that are not select outputs: widen the projection
        # over the aggregate, sort, then trim back to the select list.
        aggregate_node = node.child
        widened_exprs = list(node.exprs)
        widened_names = list(node.names)
        keys = []
        for expr in order_bound:
            if expr[0] == "post":
                keys.append(("col", len(widened_exprs)))
                widened_exprs.append(expr[1])
                widened_names.append("$sort%d" % len(widened_exprs))
            else:
                keys.append(expr)
        widened = plan.Project(aggregate_node, widened_exprs, widened_names)
        sort = plan.Sort(widened, keys, ascending)
        trim = [("col", i) for i in range(len(names))]
        return plan.Project(sort, trim, names)

    # ------------------------------------------------------------------
    # Expression binding (scalar context)
    # ------------------------------------------------------------------

    def _bind_scalar(self, expr, scope):
        if isinstance(expr, ast.Literal):
            return ("const", expr.value)
        if isinstance(expr, ast.ColumnRef):
            return ("col", scope.resolve(expr))
        if isinstance(expr, ast.UnaryOp):
            operand = self._bind_scalar(expr.operand, scope)
            return ("not" if expr.op == "NOT" else "neg", operand)
        if isinstance(expr, ast.BinaryOp):
            left = self._bind_scalar(expr.left, scope)
            right = self._bind_scalar(expr.right, scope)
            if expr.op in ("AND", "OR"):
                return (expr.op.lower(), left, right)
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return ("cmp", expr.op, left, right)
            return ("arith", expr.op, left, right)
        if isinstance(expr, ast.IsNull):
            return ("isnull", self._bind_scalar(expr.operand, scope), expr.negated)
        if isinstance(expr, ast.InList):
            operand = self._bind_scalar(expr.operand, scope)
            if all(isinstance(item, ast.Literal) for item in expr.items):
                values = frozenset(item.value for item in expr.items)
                return ("in", operand, values, expr.negated)
            items = tuple(self._bind_scalar(item, scope) for item in expr.items)
            return ("in_exprs", operand, items, expr.negated)
        if isinstance(expr, ast.Between):
            return (
                "between",
                self._bind_scalar(expr.operand, scope),
                self._bind_scalar(expr.low, scope),
                self._bind_scalar(expr.high, scope),
                expr.negated,
            )
        if isinstance(expr, ast.Case):
            whens = tuple(
                (self._bind_scalar(c, scope), self._bind_scalar(r, scope))
                for c, r in expr.whens
            )
            default = (
                ("const", None)
                if expr.default is None
                else self._bind_scalar(expr.default, scope)
            )
            return ("case", whens, default)
        if isinstance(expr, ast.Cast):
            return ("cast", self._bind_scalar(expr.operand, scope), expr.type_name)
        if isinstance(expr, ast.FunctionCall):
            if is_aggregate_name(expr.name):
                raise SqlAnalysisError(
                    "aggregate %s() is not allowed here" % expr.name
                )
            if expr.name == "GROUPING":
                raise SqlAnalysisError("GROUPING() requires a GROUP BY query")
            fn, null_aware = lookup_scalar(expr.name)
            args = tuple(self._bind_scalar(a, scope) for a in expr.args)
            return ("call", fn, null_aware, args)
        if isinstance(expr, ast.Star):
            raise SqlAnalysisError("* is only valid in the select list or COUNT(*)")
        raise SqlAnalysisError("unsupported expression %r" % (expr,))


class _AggregateCollector:
    """Rewrites post-aggregation expressions over the Aggregate output.

    Aggregate output layout: group values ``0..g-1``, then aggregate
    results ``g..g+a-1``, then grouping indicator bits ``g+a..2g+a-1``.
    """

    def __init__(self, group_exprs, scope, planner):
        self._group_exprs = list(group_exprs)
        self._scope = scope
        self._planner = planner
        self.specs = []  # (name, bound_arg_or_None, distinct)
        self._spec_index = {}

    def rewrite(self, expr):
        for i, group_expr in enumerate(self._group_exprs):
            if expr == group_expr:
                return ("col", i)
        if isinstance(expr, ast.FunctionCall) and is_aggregate_name(expr.name):
            return ("col", len(self._group_exprs) + self._register(expr))
        if isinstance(expr, ast.FunctionCall) and expr.name == "GROUPING":
            if len(expr.args) != 1:
                raise SqlAnalysisError("GROUPING() takes exactly one argument")
            for i, group_expr in enumerate(self._group_exprs):
                if expr.args[0] == group_expr:
                    return ("grouping", i)
            raise SqlAnalysisError(
                "GROUPING() argument must be a grouped expression"
            )
        if isinstance(expr, ast.Literal):
            return ("const", expr.value)
        if isinstance(expr, ast.ColumnRef):
            raise SqlAnalysisError(
                "column %r must appear in GROUP BY or inside an aggregate"
                % _display_ref(expr)
            )
        if isinstance(expr, ast.UnaryOp):
            return (
                "not" if expr.op == "NOT" else "neg",
                self.rewrite(expr.operand),
            )
        if isinstance(expr, ast.BinaryOp):
            left = self.rewrite(expr.left)
            right = self.rewrite(expr.right)
            if expr.op in ("AND", "OR"):
                return (expr.op.lower(), left, right)
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return ("cmp", expr.op, left, right)
            return ("arith", expr.op, left, right)
        if isinstance(expr, ast.IsNull):
            return ("isnull", self.rewrite(expr.operand), expr.negated)
        if isinstance(expr, ast.InList):
            operand = self.rewrite(expr.operand)
            if all(isinstance(item, ast.Literal) for item in expr.items):
                values = frozenset(item.value for item in expr.items)
                return ("in", operand, values, expr.negated)
            items = tuple(self.rewrite(item) for item in expr.items)
            return ("in_exprs", operand, items, expr.negated)
        if isinstance(expr, ast.Between):
            return (
                "between",
                self.rewrite(expr.operand),
                self.rewrite(expr.low),
                self.rewrite(expr.high),
                expr.negated,
            )
        if isinstance(expr, ast.Case):
            whens = tuple(
                (self.rewrite(c), self.rewrite(r)) for c, r in expr.whens
            )
            default = (
                ("const", None) if expr.default is None else self.rewrite(expr.default)
            )
            return ("case", whens, default)
        if isinstance(expr, ast.Cast):
            return ("cast", self.rewrite(expr.operand), expr.type_name)
        if isinstance(expr, ast.FunctionCall):
            fn, null_aware = lookup_scalar(expr.name)
            args = tuple(self.rewrite(a) for a in expr.args)
            return ("call", fn, null_aware, args)
        raise SqlAnalysisError(
            "unsupported expression %r in aggregate query" % (expr,)
        )

    def _register(self, call):
        if _contains_aggregate_args(call):
            raise SqlAnalysisError("aggregates cannot be nested")
        count_rows = len(call.args) == 1 and isinstance(call.args[0], ast.Star)
        if count_rows and call.name != "COUNT":
            raise SqlAnalysisError("%s(*) is not valid SQL" % call.name)
        if count_rows:
            bound_arg = None
        elif len(call.args) == 1:
            bound_arg = self._planner._bind_scalar(call.args[0], self._scope)
        elif len(call.args) == 0 and call.name == "COUNT":
            raise SqlAnalysisError("COUNT requires an argument or *")
        else:
            raise SqlAnalysisError(
                "%s takes exactly one argument" % call.name
            )
        key = (call.name, bound_arg, call.distinct)
        if key in self._spec_index:
            return self._spec_index[key]
        index = len(self.specs)
        self.specs.append((call.name, bound_arg, call.distinct))
        self._spec_index[key] = index
        return index


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _resolve_grouping(bound, bit_base):
    """Rewrite ("grouping", i) tags to concrete aggregate-output slots."""
    if not isinstance(bound, tuple):
        return bound
    if bound[0] == "grouping":
        return ("col", bit_base + bound[1])
    return tuple(
        tuple(_resolve_grouping(x, bit_base) for x in part)
        if isinstance(part, tuple) and part and isinstance(part[0], tuple)
        else _resolve_grouping(part, bit_base)
        if isinstance(part, tuple)
        else part
        for part in bound
    )


def _flatten_and(expr):
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _try_resolve(scope, ref):
    try:
        return scope.resolve(ref)
    except SqlAnalysisError:
        return None


def _ref_for_slot(scope, slot):
    qualifier, name, _display = scope.entries[slot]
    return ast.ColumnRef(name, table=qualifier)


def _default_name(expr):
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name.lower()
    return "?column?"


def _contains_aggregate(expr):
    for node in ast.walk(expr):
        if isinstance(node, ast.FunctionCall) and is_aggregate_name(node.name):
            return True
    return False


def _contains_aggregate_args(call):
    for arg in call.args:
        if not isinstance(arg, ast.Star) and _contains_aggregate(arg):
            return True
    return False
