"""Logical plan nodes.

The planner compiles an AST into a tree of these operators; the
optimizer rewrites the tree; an executor interprets it bottom-up —
either over row tuples (:mod:`repro.sql.executor`) or over NumPy
column batches (:mod:`repro.sql.vectorized`, the default).  Plan trees
are immutable once optimized, which is what makes the engine's
statement plan cache safe: a cached tree can be re-executed by either
executor any number of times.

Expressions inside plan nodes are *bound* expressions — column
references resolved to integer slots of the child's output row (or
batch column indices; the two executors share the slot space) — so
execution never does name lookup per row.

Bound expression forms (tuples, cheap to build and match on):

    ("const",  value)
    ("col",    slot)
    ("not" | "neg", expr)
    ("and" | "or", left, right)
    ("cmp",    op, left, right)          op in = <> < <= > >=
    ("arith",  op, left, right)          op in + - * / % ||
    ("isnull", expr, negated)
    ("in",     expr, frozenset_of_consts, negated)
    ("in_exprs", expr, exprs, negated)
    ("between", expr, low, high, negated)
    ("case",   ((cond, result), ...), default)
    ("cast",   expr, type_name)
    ("call",   fn, null_aware, args)
    ("agg",    agg_index)                reference to an aggregate output
    ("grouping", group_expr_index)       GROUPING(col) indicator
"""


class PlanNode:
    """Base class; children() drives generic traversal/printing."""

    def children(self):
        return ()

    def explain(self, indent=0):
        """Return an EXPLAIN-style indented description of the subtree."""
        lines = ["%s%s" % ("  " * indent, self.describe())]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self):
        return type(self).__name__


class Scan(PlanNode):
    """Read a base relation.

    ``column_slots`` lists which relation columns the scan emits, in
    output order; projection pruning narrows it.  ``predicate`` is an
    optional bound filter evaluated during the scan (pushdown target).
    """

    def __init__(self, table_name, relation, column_slots, predicate=None):
        self.table_name = table_name
        self.relation = relation
        self.column_slots = list(column_slots)
        self.predicate = predicate

    @property
    def output_width(self):
        return len(self.column_slots)

    def describe(self):
        text = "Scan(%s cols=%s" % (self.table_name, self.column_slots)
        if self.predicate is not None:
            text += " filtered"
        return text + ")"


class Filter(PlanNode):
    def __init__(self, child, predicate):
        self.child = child
        self.predicate = predicate

    @property
    def output_width(self):
        return self.child.output_width

    def children(self):
        return (self.child,)


class Project(PlanNode):
    """Compute one bound expression per output column."""

    def __init__(self, child, exprs, names):
        self.child = child
        self.exprs = list(exprs)
        self.names = list(names)

    @property
    def output_width(self):
        return len(self.exprs)

    def children(self):
        return (self.child,)

    def describe(self):
        return "Project(%s)" % ", ".join(self.names)


class HashJoin(PlanNode):
    """Inner equi-join; build side is the right child.

    ``left_keys`` / ``right_keys`` are bound expressions over the
    respective child rows.  ``residual`` is an optional non-equi
    condition evaluated over the concatenated row.
    """

    def __init__(self, left, right, left_keys, right_keys, residual=None):
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual

    @property
    def output_width(self):
        return self.left.output_width + self.right.output_width

    def children(self):
        return (self.left, self.right)

    def describe(self):
        return "HashJoin(%d keys)" % len(self.left_keys)


class CrossJoin(PlanNode):
    """Cartesian product, with an optional post-filter condition."""

    def __init__(self, left, right, condition=None):
        self.left = left
        self.right = right
        self.condition = condition

    @property
    def output_width(self):
        return self.left.output_width + self.right.output_width

    def children(self):
        return (self.left, self.right)


class Aggregate(PlanNode):
    """Hash aggregation, optionally over multiple grouping sets.

    - ``group_exprs``: bound expressions producing the full grouping key;
    - ``grouping_sets``: list of index-tuples into ``group_exprs``; a
      plain GROUP BY has exactly one set covering every expression.
      Columns outside a grouping set surface as NULL (the cube-lattice
      wildcard of thesis §2.5);
    - ``agg_specs``: list of (name, arg_expr_or_None, distinct) driving
      :func:`repro.sql.functions.make_aggregate`.

    Output rows are ``group values + aggregate results + grouping-bit
    values``, which the parent Project maps into the select list.
    """

    def __init__(self, child, group_exprs, grouping_sets, agg_specs):
        self.child = child
        self.group_exprs = list(group_exprs)
        self.grouping_sets = [tuple(s) for s in grouping_sets]
        self.agg_specs = list(agg_specs)

    @property
    def output_width(self):
        return len(self.group_exprs) * 2 + len(self.agg_specs)

    def children(self):
        return (self.child,)

    def describe(self):
        return "Aggregate(groups=%d sets=%d aggs=%d)" % (
            len(self.group_exprs),
            len(self.grouping_sets),
            len(self.agg_specs),
        )


class Sort(PlanNode):
    """Stable sort by bound key expressions with per-key direction."""

    def __init__(self, child, keys, ascending):
        self.child = child
        self.keys = list(keys)
        self.ascending = list(ascending)

    @property
    def output_width(self):
        return self.child.output_width

    def children(self):
        return (self.child,)


class Limit(PlanNode):
    def __init__(self, child, limit, offset=0):
        self.child = child
        self.limit = limit
        self.offset = offset

    @property
    def output_width(self):
        return self.child.output_width

    def children(self):
        return (self.child,)

    def describe(self):
        return "Limit(%r offset=%r)" % (self.limit, self.offset)


class Distinct(PlanNode):
    def __init__(self, child):
        self.child = child

    @property
    def output_width(self):
        return self.child.output_width

    def children(self):
        return (self.child,)
