"""Vectorized physical execution of bound logical plans.

The default execution path of :class:`~repro.sql.engine.SqlEngine`:
every operator works on NumPy column batches
(:class:`~repro.sql.columns.Batch`) instead of Python row tuples, so
scans, filters, projections, sorts and aggregations run as a handful of
array operations per batch rather than an interpreter loop per row.

Semantics are defined by the row interpreter in
:mod:`repro.sql.executor` — it stays available via
``SqlEngine(vectorized=False)`` and the parity suite asserts both paths
produce identical results.  The subtle points preserved here:

- SQL three-valued NULL logic is carried as validity masks; operations
  only touch valid lanes, so NULL placeholders never leak into values;
- ``AND`` / ``OR`` / ``CASE`` evaluate their lazy operands only on the
  lanes the row interpreter would reach, so data-dependent errors
  (division by zero in a guarded branch) behave identically;
- sorts are stable with the row interpreter's NULL placement (last
  under ASC, first under DESC) and aggregates accumulate in row order,
  making float results bit-identical;
- groups and DISTINCT rows surface in first-occurrence order, matching
  the row interpreter's dict-based iteration order.

Joins materialize their children to rows and reuse the row
interpreter's join loops: the issue's hot path (scan → filter →
aggregate → sort) is fully columnar, while join semantics stay defined
in exactly one place.

One deliberate divergence: NaN *group keys*.  The row interpreter's
dict keying is object-identity-dependent there (the same NaN object
groups together, distinct NaN objects split); this path follows
PostgreSQL instead — all NaN keys form one group via np.unique.  NaN
aggregate *inputs* are not affected: MIN/MAX fall back to the
accumulators so NaN-skipping matches the reference exactly.

Cluster metering is per batch: each operator issues one
:meth:`charge` for the whole batch it touched, with the same totals as
the row interpreter charges row by row, so platform-sim benchmarks are
unaffected by the choice of executor.
"""

import numpy as np

from repro.sql import plan as plan_nodes
from repro.sql.columns import (
    Batch,
    Column,
    column_from_values,
    combined_validity,
    concat_columns,
    constant_column,
    scatter_columns,
)
from repro.sql.errors import SqlExecutionError
from repro.sql.executor import evaluate, output_names
from repro.sql.functions import (
    VECTORIZED_AGGREGATES,
    group_avg,
    group_count,
    group_min_max,
    group_sum,
    make_aggregate,
)


class VectorizedExecutor:
    """Interprets plans over columnar batches."""

    def __init__(self, cluster=None):
        self._cluster = cluster

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def run(self, node):
        """Execute ``node``; returns (batch, names)."""
        batch = self._execute(node)
        return batch, output_names(node)

    def _execute(self, node):
        method = getattr(self, "_exec_%s" % type(node).__name__.lower())
        return method(node)

    def _charge(self, rows_touched, ops=0):
        if self._cluster is not None:
            cost = self._cluster.cost
            self._cluster.metrics.charge(
                rows_touched * cost.record_seconds + ops * cost.op_seconds
            )

    # ------------------------------------------------------------------
    # Leaf and unary operators
    # ------------------------------------------------------------------

    def _exec_scan(self, node):
        relation = node.relation
        columns, n = relation.column_data()
        batch = Batch(columns, n)
        if node.predicate is not None:
            keep = strict_true(eval_expr(node.predicate, batch))
            batch = batch.take(np.nonzero(keep)[0])
        out = Batch([batch.columns[i] for i in node.column_slots], batch.n)
        self._charge(n, ops=out.n)
        return out

    def _exec_filter(self, node):
        batch = self._execute(node.child)
        keep = strict_true(eval_expr(node.predicate, batch))
        self._charge(batch.n)
        return batch.take(np.nonzero(keep)[0])

    def _exec_project(self, node):
        batch = self._execute(node.child)
        out = [eval_expr(e, batch) for e in node.exprs]
        self._charge(batch.n, ops=batch.n * len(node.exprs))
        return Batch(out, batch.n)

    def _exec_distinct(self, node):
        batch = self._execute(node.child)
        seen = set()
        keep = []
        for i, row in enumerate(batch.to_rows()):
            if row not in seen:
                seen.add(row)
                keep.append(i)
        self._charge(batch.n)
        return batch.take(np.asarray(keep, dtype=np.int64))

    def _exec_sort(self, node):
        batch = self._execute(node.child)
        n = batch.n
        order = np.arange(n)
        # Stable multi-key sort, keys applied right-to-left, with the
        # row interpreter's NULL placement (last under ASC, first under
        # DESC) and tie order.
        for key_expr, ascending in reversed(
            list(zip(node.keys, node.ascending))
        ):
            col = eval_expr(key_expr, batch)
            current = col.values[order]
            if col.valid is None:
                valid_pos = np.arange(len(order))
                null_pos = valid_pos[:0]
            else:
                current_valid = col.valid[order]
                valid_pos = np.nonzero(current_valid)[0]
                null_pos = np.nonzero(~current_valid)[0]
            if ascending:
                ranks = np.argsort(current[valid_pos], kind="stable")
                order = np.concatenate(
                    [order[valid_pos[ranks]], order[null_pos]]
                )
            else:
                # Stable descending: reverse, stable-ascending, reverse
                # again, so ties keep their original relative order.
                reversed_pos = valid_pos[::-1]
                ranks = np.argsort(current[reversed_pos], kind="stable")
                order = np.concatenate(
                    [order[null_pos], order[reversed_pos[ranks]][::-1]]
                )
        self._charge(n, ops=n)
        return batch.take(order)

    def _exec_limit(self, node):
        batch = self._execute(node.child)
        start = node.offset or 0
        stop = batch.n if node.limit is None else min(start + node.limit, batch.n)
        start = min(start, batch.n)
        n = max(0, stop - start)
        return Batch([c.slice(start, stop) for c in batch.columns], n)

    # ------------------------------------------------------------------
    # Joins (materialized through the row interpreter's loops)
    # ------------------------------------------------------------------

    def _exec_hashjoin(self, node):
        left_rows = self._execute(node.left).to_rows()
        right_rows = self._execute(node.right).to_rows()
        build = {}
        for row in right_rows:
            key = tuple(evaluate(k, row) for k in node.right_keys)
            if any(v is None for v in key):
                continue  # NULL never joins
            build.setdefault(key, []).append(row)
        out = []
        for row in left_rows:
            key = tuple(evaluate(k, row) for k in node.left_keys)
            if any(v is None for v in key):
                continue
            for match in build.get(key, ()):
                joined = row + match
                if node.residual is None or evaluate(node.residual, joined) is True:
                    out.append(joined)
        self._charge(len(left_rows) + len(right_rows), ops=len(out))
        return _rows_to_batch(out, node.output_width)

    def _exec_crossjoin(self, node):
        left_rows = self._execute(node.left).to_rows()
        right_rows = self._execute(node.right).to_rows()
        out = []
        for left in left_rows:
            for right in right_rows:
                joined = left + right
                if node.condition is None or evaluate(node.condition, joined) is True:
                    out.append(joined)
        self._charge(len(left_rows) * max(len(right_rows), 1), ops=len(out))
        return _rows_to_batch(out, node.output_width)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _exec_aggregate(self, node):
        batch = self._execute(node.child)
        n = batch.n
        group_cols = [eval_expr(e, batch) for e in node.group_exprs]
        arg_cols = [
            None if arg is None else eval_expr(arg, batch)
            for _name, arg, _distinct in node.agg_specs
        ]
        num_group_exprs = len(node.group_exprs)
        set_batches = []
        # One pass per grouping set; CUBE over d columns runs 2^d passes,
        # mirroring the 2^d group-bys the naive cube algorithm issues.
        for kept in node.grouping_sets:
            kept_set = frozenset(kept)
            if n == 0:
                if not kept and num_group_exprs == 0:
                    # Global aggregate over an empty input: one row of
                    # empty-accumulator results.
                    results = [
                        column_from_values(
                            [
                                make_aggregate(
                                    name, count_rows=arg is None,
                                    distinct=distinct,
                                ).result()
                            ]
                        )
                        for name, arg, distinct in node.agg_specs
                    ]
                    set_batches.append(Batch(results, 1))
                self._charge(0, ops=0)
                continue
            codes, first_idx, num_groups = _group_codes(
                [group_cols[i] for i in sorted(kept_set)], n
            )
            columns = []
            for j in range(num_group_exprs):
                if j in kept_set:
                    columns.append(group_cols[j].take(first_idx))
                else:
                    columns.append(_null_like(group_cols[j], num_groups))
            for spec, arg_col in zip(node.agg_specs, arg_cols):
                columns.append(
                    _aggregate_column(spec, arg_col, codes, num_groups)
                )
            for j in range(num_group_exprs):
                bit = 0 if j in kept_set else 1
                columns.append(Column(np.full(num_groups, bit, dtype=np.int64)))
            set_batches.append(Batch(columns, num_groups))
            self._charge(n, ops=num_groups * len(node.agg_specs))
        if not set_batches:
            return Batch(
                [Column(np.empty(0, dtype=object)) for _ in range(node.output_width)],
                0,
            )
        if len(set_batches) == 1:
            return set_batches[0]
        width = len(set_batches[0].columns)
        merged = [
            concat_columns([b.columns[i] for b in set_batches])
            for i in range(width)
        ]
        return Batch(merged, sum(b.n for b in set_batches))


def _rows_to_batch(rows, width):
    columns = [
        column_from_values([row[i] for row in rows]) for i in range(width)
    ]
    return Batch(columns, len(rows))


def _null_like(col, n):
    """An all-NULL column with the dtype of ``col`` (CUBE wildcards)."""
    return Column(np.zeros(n, dtype=col.values.dtype), np.zeros(n, dtype=bool))


# ----------------------------------------------------------------------
# Grouping
# ----------------------------------------------------------------------


def _factorize(col):
    """Per-row codes of one key column; NULLs share one extra code."""
    values = col.values
    n = len(values)
    codes = np.zeros(n, dtype=np.int64)
    if col.valid is None:
        valid_idx = None
        subset = values
    else:
        valid_idx = np.nonzero(col.valid)[0]
        subset = values[valid_idx]
    if subset.dtype == object:
        # Hash-based factorization: O(n), no ordering requirement, and
        # measurably faster than sort-based np.unique on Python objects.
        code_of = {}
        inverse = np.empty(len(subset), dtype=np.int64)
        for i, value in enumerate(subset.tolist()):
            code = code_of.get(value)
            if code is None:
                code = len(code_of)
                code_of[value] = code
            inverse[i] = code
        num_uniques = len(code_of)
    else:
        uniques, inverse = np.unique(subset, return_inverse=True)
        num_uniques = len(uniques)
    if valid_idx is None:
        codes = np.asarray(inverse, dtype=np.int64)
        return codes, num_uniques
    codes[:] = num_uniques  # NULL lanes
    codes[valid_idx] = inverse
    return codes, num_uniques + 1


def _group_codes(key_columns, n):
    """Group id per row, first-occurrence row per group, group count.

    Group ids are assigned in first-occurrence order of the combined
    key, matching the row interpreter's dict iteration order.
    """
    if not key_columns:
        return (
            np.zeros(n, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            1,
        )
    combined = np.zeros(n, dtype=np.int64)
    for col in key_columns:
        codes, cardinality = _factorize(col)
        combined = combined * cardinality + codes
    uniques, first, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    by_first_seen = np.argsort(first, kind="stable")
    rank = np.empty(len(uniques), dtype=np.int64)
    rank[by_first_seen] = np.arange(len(uniques))
    return rank[inverse], first[by_first_seen], len(uniques)


def _aggregate_column(spec, arg_col, codes, num_groups):
    """One aggregate's per-group results as a Column."""
    name, arg, distinct = spec
    vectorizable = (
        not distinct
        and name in VECTORIZED_AGGREGATES
        and (arg is None or arg_col.values.dtype != object)
        and not _needs_exact_fallback(name, arg_col)
    )
    if not vectorizable:
        return _aggregate_with_accumulators(spec, arg_col, codes, num_groups)
    if arg is None:  # COUNT(*)
        counts, _ = group_count(codes, num_groups)
        return Column(counts)
    if arg_col.valid is None:
        valid_codes, values = codes, arg_col.values
    else:
        valid_idx = np.nonzero(arg_col.valid)[0]
        valid_codes, values = codes[valid_idx], arg_col.values[valid_idx]
    if name == "COUNT":
        counts, _ = group_count(valid_codes, num_groups)
        return Column(counts)
    if name == "SUM":
        totals, valid = group_sum(valid_codes, values, num_groups)
        return Column(totals, None if valid.all() else valid)
    if name == "AVG":
        means, valid = group_avg(valid_codes, values, num_groups)
        return Column(means, None if valid.all() else valid)
    largest = name == "MAX"
    best, valid = group_min_max(valid_codes, values, num_groups, largest)
    return Column(best, None if valid.all() else valid)


def _needs_exact_fallback(name, arg_col):
    """Inputs whose kernel result would diverge from the accumulators.

    - float MIN/MAX: np.minimum/np.maximum propagate NaN while the
      accumulators' ``<``/``>`` comparisons skip it;
    - int SUM: np.add.at accumulates in int64 and would silently wrap
      where the accumulators return exact Python big ints.
    """
    if arg_col is None:
        return False
    values = arg_col.values
    if name in ("MIN", "MAX"):
        return values.dtype == np.float64 and bool(np.isnan(values).any())
    if name == "SUM" and values.dtype == np.int64 and len(values):
        bound = (2**63 - 1) // len(values)
        return bool(values.max() > bound or values.min() < -bound)
    return False


def _aggregate_with_accumulators(spec, arg_col, codes, num_groups):
    """Accumulator fallback (DISTINCT, VARIANCE/STDDEV, object inputs).

    Rows feed each group's accumulator in row order, exactly as the row
    interpreter does, so results — including Welford variance and
    DISTINCT first-seen folding — are identical.
    """
    name, arg, distinct = spec
    states = [
        make_aggregate(name, count_rows=arg is None, distinct=distinct)
        for _ in range(num_groups)
    ]
    if arg is None:
        for code in codes.tolist():
            states[code].add(True)
    else:
        for code, value in zip(codes.tolist(), arg_col.to_pylist()):
            states[code].add(value)
    return column_from_values([state.result() for state in states])


# ----------------------------------------------------------------------
# Vectorized expression evaluation
# ----------------------------------------------------------------------


def strict_true(col):
    """Lanes whose value is literally True (SQL WHERE/HAVING keep rule)."""
    if col.values.dtype == bool:
        return col.values if col.valid is None else col.values & col.valid
    n = len(col.values)
    if col.values.dtype == object:
        mask = np.fromiter(
            (v is True for v in col.values), dtype=bool, count=n
        )
        return mask if col.valid is None else mask & col.valid
    return np.zeros(n, dtype=bool)


def _truth_masks(col):
    """(true-ish, false) lane masks for AND/OR combination.

    Mirrors the row interpreter, which treats any evaluated value other
    than False/None as truthy inside AND/OR.
    """
    n = len(col.values)
    validity = col.validity()
    if col.values.dtype == bool:
        false = validity & ~col.values
    elif col.values.dtype == object:
        false = (
            np.fromiter(
                (v is False for v in col.values), dtype=bool, count=n
            )
            & validity
        )
    else:
        false = np.zeros(n, dtype=bool)
    return validity & ~false, false


def eval_expr(expr, batch):
    """Evaluate a bound expression over a batch; returns a Column."""
    tag = expr[0]
    n = batch.n
    if tag == "col":
        return batch.columns[expr[1]]
    if tag == "const":
        return constant_column(expr[1], n)
    if tag == "cmp":
        return _compare(
            expr[1], eval_expr(expr[2], batch), eval_expr(expr[3], batch), n
        )
    if tag == "arith":
        return _arithmetic(
            expr[1], eval_expr(expr[2], batch), eval_expr(expr[3], batch), n
        )
    if tag == "and":
        return _logical(expr, batch, is_and=True)
    if tag == "or":
        return _logical(expr, batch, is_and=False)
    if tag == "not":
        return _negate_logic(eval_expr(expr[1], batch), n)
    if tag == "neg":
        return _negate_value(eval_expr(expr[1], batch), n)
    if tag == "isnull":
        col = eval_expr(expr[1], batch)
        is_null = (
            np.zeros(n, dtype=bool) if col.valid is None else ~col.valid
        )
        return Column(~is_null if expr[2] else is_null)
    if tag == "in":
        return _in_constants(eval_expr(expr[1], batch), expr[2], expr[3], n)
    if tag == "in_exprs":
        return _in_exprs(expr, batch, n)
    if tag == "between":
        return _between(expr, batch, n)
    if tag == "case":
        return _case(expr, batch, n)
    if tag == "cast":
        return _cast(eval_expr(expr[1], batch), expr[2], n)
    if tag == "call":
        return _call(expr, batch, n)
    if tag == "grouping":
        raise SqlExecutionError("GROUPING() used outside an aggregate context")
    raise SqlExecutionError("unknown expression tag %r" % tag)


def _valid_lanes(valid, n):
    """Indices of valid lanes, or None meaning all of them."""
    return None if valid is None else np.nonzero(valid)[0]


_CMP_UFUNCS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _compare(op, left, right, n):
    try:
        ufunc = _CMP_UFUNCS[op]
    except KeyError:
        raise SqlExecutionError("unknown comparison %r" % op) from None
    valid = combined_validity((left, right), n)
    idx = _valid_lanes(valid, n)
    try:
        if idx is None:
            result = np.asarray(ufunc(left.values, right.values), dtype=bool)
            return Column(result)
        result = np.asarray(
            ufunc(left.values[idx], right.values[idx]), dtype=bool
        )
    except TypeError as exc:
        raise SqlExecutionError("cannot compare: %s" % exc) from exc
    out = np.zeros(n, dtype=bool)
    out[idx] = result
    return Column(out, valid)


def _numeric_operand(values):
    """Bools participate in arithmetic as ints (Python semantics)."""
    return values.astype(np.int64) if values.dtype == bool else values


def _arithmetic(op, left, right, n):
    valid = combined_validity((left, right), n)
    idx = _valid_lanes(valid, n)
    if idx is None:
        lv, rv = left.values, right.values
    else:
        lv, rv = left.values[idx], right.values[idx]
    if op == "||":
        result = np.empty(len(lv), dtype=object)
        result[:] = [
            str(a) + str(b) for a, b in zip(lv.tolist(), rv.tolist())
        ]
        return _scatter_result(result, idx, valid, n)
    lv = _numeric_operand(lv)
    rv = _numeric_operand(rv)
    if op in ("+", "-", "*") and _int_overflow_possible(op, lv, rv):
        # Exact Python big-int arithmetic instead of silent int64 wrap.
        lv = lv.astype(object)
        rv = rv.astype(object)
    try:
        if op == "+":
            result = lv + rv
        elif op == "-":
            result = lv - rv
        elif op == "*":
            result = lv * rv
        elif op == "/":
            if np.any(rv == 0):
                raise SqlExecutionError("division by zero")
            result = lv / rv  # SQL float division, PostgreSQL-style
        elif op == "%":
            if np.any(rv == 0):
                raise SqlExecutionError("modulo by zero")
            result = lv % rv
        else:
            raise SqlExecutionError("unknown operator %r" % op)
    except TypeError as exc:
        raise SqlExecutionError("bad operands for %s" % op) from exc
    return _scatter_result(np.asarray(result), idx, valid, n)


def _int_overflow_possible(op, lv, rv):
    """Could an int64 +/-/* wrap?  Checked on exact Python-int bounds."""
    if lv.dtype != np.int64 or rv.dtype != np.int64 or not len(lv):
        return False
    left_bound = max(abs(int(lv.max())), abs(int(lv.min())))
    right_bound = max(abs(int(rv.max())), abs(int(rv.min())))
    limit = 2**63 - 1
    if op == "*":
        return left_bound * right_bound > limit
    return left_bound + right_bound > limit


def _scatter_result(result, idx, valid, n):
    """Place a valid-lane result array back into a full-width column."""
    if idx is None:
        return Column(result)
    if result.dtype == object:
        out = np.empty(n, dtype=object)
    else:
        out = np.zeros(n, dtype=result.dtype)
    out[idx] = result
    return Column(out, valid)


def _logical(expr, batch, is_and):
    """AND/OR with the row interpreter's lazy right-operand evaluation.

    The right operand is evaluated only on lanes where the left operand
    does not already decide the result, so data-dependent errors in the
    right operand surface for exactly the rows the row path would reach.
    """
    n = batch.n
    left = eval_expr(expr[1], batch)
    left_true, left_false = _truth_masks(left)
    decided = left_false if is_and else left_true
    need = ~decided
    right_true = np.zeros(n, dtype=bool)
    right_false = np.zeros(n, dtype=bool)
    if need.all():
        right_true, right_false = _truth_masks(eval_expr(expr[2], batch))
    elif need.any():
        idx = np.nonzero(need)[0]
        sub = eval_expr(expr[2], batch.take(idx))
        sub_true, sub_false = _truth_masks(sub)
        right_true[idx] = sub_true
        right_false[idx] = sub_false
    if is_and:
        true = left_true & right_true
        false = left_false | right_false
    else:
        true = left_true | right_true
        false = left_false & right_false
    return Column(true, true | false)


def _negate_logic(col, n):
    """NOT: None stays None; otherwise Python ``not value``."""
    validity = col.valid
    if col.values.dtype == bool:
        values = ~col.values
    elif col.values.dtype == object:
        values = np.fromiter(
            (not v for v in col.values), dtype=bool, count=n
        )
    else:
        values = col.values == 0
    return Column(np.asarray(values, dtype=bool), validity)


def _negate_value(col, n):
    idx = _valid_lanes(col.valid, n)
    values = col.values if idx is None else col.values[idx]
    values = _numeric_operand(values)
    if values.dtype == np.int64 and len(values) and bool(
        (values == np.iinfo(np.int64).min).any()
    ):
        values = values.astype(object)  # -INT64_MIN wraps; go exact
    result = -values
    return _scatter_result(np.asarray(result), idx, col.valid, n)


def _in_constants(col, constants, negated, n):
    idx = _valid_lanes(col.valid, n)
    values = col.values if idx is None else col.values[idx]
    hits = np.fromiter(
        (v in constants for v in values.tolist()),
        dtype=bool,
        count=len(values),
    )
    if negated:
        hits = ~hits
    return _scatter_result(hits, idx, col.valid, n)


def _in_exprs(expr, batch, n):
    """IN over expression items, with the row path's lazy item walk.

    Each item is evaluated only on lanes that are still undecided — a
    NULL operand or an earlier match stops the walk for that lane, so
    data-dependent errors in later items surface for exactly the rows
    the row interpreter reaches.
    """
    operand = eval_expr(expr[1], batch)
    negated = expr[3]
    matched = np.zeros(n, dtype=bool)
    saw_null = np.zeros(n, dtype=bool)
    op_validity = operand.validity()
    remaining = np.nonzero(op_validity)[0]
    for item_expr in expr[2]:
        if not len(remaining):
            break
        sub_batch = batch.take(remaining)
        item = eval_expr(item_expr, sub_batch)
        if item.valid is not None:
            saw_null[remaining] |= ~item.valid
        sub_operand = operand.take(remaining)
        hit = strict_true(_compare("=", sub_operand, item, len(remaining)))
        matched[remaining[hit]] = True
        remaining = remaining[~hit]
    validity = op_validity & (matched | ~saw_null)
    values = (~matched if negated else matched) & validity
    return Column(values, None if validity.all() else validity)


def _between(expr, batch, n):
    value = eval_expr(expr[1], batch)
    low = eval_expr(expr[2], batch)
    high = eval_expr(expr[3], batch)
    valid = combined_validity((value, low, high), n)
    idx = _valid_lanes(valid, n)
    if idx is None:
        vv, lv, hv = value.values, low.values, high.values
    else:
        vv, lv, hv = value.values[idx], low.values[idx], high.values[idx]
    # Mirror Python's chained-comparison short-circuit per lane: the
    # upper bound is only compared where the lower bound held, so a
    # TypeError surfaces for exactly the rows the row path evaluates.
    hits = np.asarray(lv <= vv, dtype=bool)
    passed = np.nonzero(hits)[0]
    if len(passed):
        hits[passed] = np.asarray(vv[passed] <= hv[passed], dtype=bool)
    if expr[4]:
        hits = ~hits
    return _scatter_result(hits, idx, valid, n)


def _case(expr, batch, n):
    """CASE with per-branch lane masking (lazy branch evaluation)."""
    remaining = np.arange(n)
    pieces = []
    for condition, result in expr[1]:
        if not len(remaining):
            break
        sub = batch.take(remaining)
        hit = strict_true(eval_expr(condition, sub))
        taken = remaining[hit]
        if len(taken):
            pieces.append((taken, eval_expr(result, batch.take(taken))))
        remaining = remaining[~hit]
    if len(remaining):
        pieces.append((remaining, eval_expr(expr[2], batch.take(remaining))))
    if len(pieces) == 1 and len(pieces[0][0]) == n:
        return pieces[0][1]
    return scatter_columns(n, pieces)


def _cast(col, type_name, n):
    idx = _valid_lanes(col.valid, n)
    values = col.values if idx is None else col.values[idx]
    try:
        if type_name == "INTEGER":
            if values.dtype == np.float64 and not np.isfinite(values).all():
                raise SqlExecutionError(
                    "cannot cast non-finite value to INTEGER"
                )
            if values.dtype == object or (
                values.dtype == np.float64
                and len(values)
                and bool((np.abs(values) >= 2.0**63).any())
            ):
                # Exact Python int() — object inputs, and floats whose
                # truncation exceeds int64 (astype would wrap silently).
                result = np.empty(len(values), dtype=object)
                result[:] = [int(v) for v in values.tolist()]
                if all(
                    -(2**63) <= v <= 2**63 - 1 for v in result.tolist()
                ):
                    result = result.astype(np.int64)
            else:
                result = values.astype(np.int64)
        elif type_name == "FLOAT":
            if values.dtype == object:
                result = np.fromiter(
                    (float(v) for v in values.tolist()),
                    dtype=np.float64,
                    count=len(values),
                )
            else:
                result = values.astype(np.float64)
        elif type_name == "TEXT":
            result = np.empty(len(values), dtype=object)
            result[:] = [str(v) for v in values.tolist()]
        else:
            raise SqlExecutionError("unknown cast type %r" % type_name)
    except (TypeError, ValueError) as exc:
        raise SqlExecutionError(
            "cannot cast to %s: %s" % (type_name, exc)
        ) from exc
    return _scatter_result(result, idx, col.valid, n)


def _call(expr, batch, n):
    fn, null_aware, args = expr[1], expr[2], expr[3]
    arg_cols = [eval_expr(a, batch) for a in args]
    if null_aware:
        # The function sees NULLs; call it on every lane.
        arg_lists = [c.to_pylist() for c in arg_cols]
        results = [_apply(fn, values) for values in zip(*arg_lists)]
        if not arg_lists:
            results = [_apply(fn, ()) for _ in range(n)]
        return column_from_values(results)
    valid = combined_validity(arg_cols, n)
    idx = _valid_lanes(valid, n)
    if idx is None:
        arg_lists = [c.values.tolist() for c in arg_cols]
        count = n
    else:
        arg_lists = [c.values[idx].tolist() for c in arg_cols]
        count = len(idx)
    results = [_apply(fn, values) for values in zip(*arg_lists)]
    if not arg_lists:
        results = [_apply(fn, ()) for _ in range(count)]
    result_col = column_from_values(results)
    if idx is None:
        return result_col
    out = scatter_columns(n, [(idx, result_col)])
    if valid is not None and result_col.valid is None:
        out.valid = valid
    return out


def _apply(fn, values):
    try:
        return fn(*values)
    except SqlExecutionError:
        raise
    except (TypeError, ValueError, ZeroDivisionError) as exc:
        raise SqlExecutionError("function call failed: %s" % exc) from exc
