"""The SQL engine facade: parse, plan, optimize, execute.

    >>> engine = SqlEngine()
    >>> engine.catalog.register_rows("t", ["a", "m"], [("x", 1.0), ("y", 2.0)])
    >>> engine.query("SELECT a, SUM(m) FROM t GROUP BY a ORDER BY a").rows
    [('x', 1.0), ('y', 2.0)]

Pass a :class:`~repro.engine.cluster.ClusterContext` to meter execution
through a platform cost regime (how the §5.2 PostgreSQL/Hive
comparisons are reproduced).
"""

from repro.sql.catalog import Catalog
from repro.sql.executor import Executor
from repro.sql.optimizer import optimize
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.sql.result import ResultSet


class SqlEngine:
    """Executes SQL text against registered relations."""

    def __init__(self, catalog=None, cluster=None, optimize_plans=True):
        self.catalog = catalog or Catalog()
        self._cluster = cluster
        self._optimize = optimize_plans

    def register_table(self, name, table, row_id_column=None):
        """Register a SIRUM columnar table under ``name``."""
        self.catalog.register_table(name, table, row_id_column=row_id_column)

    def plan(self, sql_text):
        """Parse and plan without executing (returns the plan root)."""
        select = parse(sql_text)
        logical = Planner(self.catalog).plan_select(select)
        if self._optimize:
            logical = optimize(logical)
        return logical

    def explain(self, sql_text):
        """EXPLAIN-style text for the optimized plan of ``sql_text``."""
        return self.plan(sql_text).explain()

    def query(self, sql_text):
        """Execute ``sql_text``; returns a :class:`ResultSet`."""
        logical = self.plan(sql_text)
        rows, names = Executor(self._cluster).run(logical)
        return ResultSet(names, rows)
