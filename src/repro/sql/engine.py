"""The SQL engine facade: parse, plan, optimize, execute.

    >>> engine = SqlEngine()
    >>> engine.catalog.register_rows("t", ["a", "m"], [("x", 1.0), ("y", 2.0)])
    >>> engine.query("SELECT a, SUM(m) FROM t GROUP BY a ORDER BY a").rows
    [('x', 1.0), ('y', 2.0)]

Execution is vectorized by default: plans run over NumPy column batches
(:mod:`repro.sql.vectorized`).  ``SqlEngine(vectorized=False)`` selects
the row-at-a-time reference interpreter instead; both produce identical
results.

Repeated statements skip parse → plan → optimize through a
statement-level LRU plan cache keyed by SQL text.  Cached plans are
invalidated whenever the catalog changes (``register_*`` / ``drop``
bump :attr:`Catalog.version`), because bound plans hold direct
references to the relations they scan.  For explicit reuse:

    >>> stmt = engine.prepare("SELECT SUM(m) FROM t")
    >>> stmt.execute().scalar()
    3.0

Pass a :class:`~repro.engine.cluster.ClusterContext` to meter execution
through a platform cost regime (how the §5.2 PostgreSQL/Hive
comparisons are reproduced); each operator charges its cost per batch.

One engine may be shared across threads (the concurrent mining service
does): the plan cache, its statistics and prepared-statement rebinding
are guarded by an internal lock, so planning is serialized while
execution itself runs fully in parallel.  Metered engines (``cluster``
set) still assume one caller at a time — the cluster's phase stack is
not thread-safe.
"""

import threading

from collections import OrderedDict

from repro.sql.catalog import Catalog
from repro.sql.executor import Executor
from repro.sql.optimizer import optimize
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.sql.result import ResultSet
from repro.sql.vectorized import VectorizedExecutor


class PreparedStatement:
    """A statement planned once and executable many times.

    Holds the optimized plan together with the catalog version it was
    bound against; :meth:`execute` replans transparently if the catalog
    changed (a re-registered table invalidates the bound relations).
    """

    __slots__ = ("_engine", "sql_text", "_plan", "_catalog_version")

    def __init__(self, engine, sql_text):
        self._engine = engine
        self.sql_text = sql_text
        self._plan = None
        self._catalog_version = None

    def execute(self):
        """Run the statement; returns a :class:`ResultSet`."""
        return self._engine.execute_prepared(self)

    def explain(self):
        """EXPLAIN-style text for the statement's (possibly cached) plan."""
        return self._engine._plan_for(self).explain()

    def __repr__(self):
        return "PreparedStatement(%r)" % self.sql_text


class SqlEngine:
    """Executes SQL text against registered relations.

    Parameters
    ----------
    catalog:
        Shared :class:`Catalog`; a fresh one is created by default.
    cluster:
        Optional :class:`~repro.engine.cluster.ClusterContext` charged
        per operator batch (platform metering).
    optimize_plans:
        Apply the rule-based optimizer (default True).
    vectorized:
        Execute over NumPy column batches (default).  ``False`` selects
        the row-at-a-time reference interpreter.
    plan_cache_size:
        Maximum number of cached statement plans (0 disables caching).
    """

    def __init__(self, catalog=None, cluster=None, optimize_plans=True,
                 vectorized=True, plan_cache_size=128):
        self.catalog = catalog or Catalog()
        self._cluster = cluster
        self._optimize = optimize_plans
        self._vectorized = vectorized
        self._plan_cache = OrderedDict()  # sql_text -> (catalog_version, plan)
        self._plan_cache_size = plan_cache_size
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # Guards the plan cache, its statistics and prepared-statement
        # rebinding so one engine can serve many worker threads.
        self._lock = threading.RLock()

    def register_table(self, name, table, row_id_column=None):
        """Register a SIRUM columnar table under ``name``."""
        self.catalog.register_table(name, table, row_id_column=row_id_column)

    # ------------------------------------------------------------------
    # Planning and the plan cache
    # ------------------------------------------------------------------

    def plan(self, sql_text):
        """Parse and plan without executing or caching (returns the root)."""
        select = parse(sql_text)
        logical = Planner(self.catalog).plan_select(select)
        if self._optimize:
            logical = optimize(logical)
        return logical

    def _cached_plan(self, sql_text):
        """The optimized plan for ``sql_text``, via the LRU plan cache.

        Holds the engine lock for the whole lookup-or-plan step: the
        catalog version is read under the lock, so a concurrent
        ``register_table`` cannot interleave between the version read
        and the cache insert and leave a fresh plan filed under a stale
        version (or the reverse).
        """
        with self._lock:
            version = self.catalog.version
            entry = self._plan_cache.get(sql_text)
            if entry is not None and entry[0] == version:
                self._plan_cache.move_to_end(sql_text)
                self.plan_cache_hits += 1
                return entry[1]
            self.plan_cache_misses += 1
            logical = self.plan(sql_text)
            if self._plan_cache_size > 0:
                self._plan_cache[sql_text] = (version, logical)
                self._plan_cache.move_to_end(sql_text)
                while len(self._plan_cache) > self._plan_cache_size:
                    self._plan_cache.popitem(last=False)
            return logical

    def clear_plan_cache(self):
        """Drop every cached plan (statistics are kept)."""
        with self._lock:
            self._plan_cache.clear()

    @property
    def plan_cache_info(self):
        """Cache statistics: hits, misses, current size, capacity."""
        with self._lock:
            return {
                "hits": self.plan_cache_hits,
                "misses": self.plan_cache_misses,
                "size": len(self._plan_cache),
                "max_size": self._plan_cache_size,
            }

    def explain(self, sql_text):
        """EXPLAIN-style text for the optimized plan of ``sql_text``."""
        return self.plan(sql_text).explain()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def query(self, sql_text):
        """Execute ``sql_text``; returns a :class:`ResultSet`."""
        return self._run(self._cached_plan(sql_text))

    def prepare(self, sql_text):
        """Plan ``sql_text`` once for repeated execution.

        Returns a :class:`PreparedStatement` whose :meth:`execute` skips
        parse → plan → optimize on every call until the catalog changes.
        """
        statement = PreparedStatement(self, sql_text)
        self._plan_for(statement)  # plan eagerly so errors surface here
        return statement

    def execute_prepared(self, statement):
        """Execute a :class:`PreparedStatement` from :meth:`prepare`."""
        return self._run(self._plan_for(statement))

    def _plan_for(self, statement):
        with self._lock:
            version = self.catalog.version
            if statement._plan is None or statement._catalog_version != version:
                statement._plan = self._cached_plan(statement.sql_text)
                statement._catalog_version = version
            return statement._plan

    def _run(self, logical):
        if self._vectorized:
            batch, names = VectorizedExecutor(self._cluster).run(logical)
            return ResultSet.from_batch(names, batch)
        rows, names = Executor(self._cluster).run(logical)
        return ResultSet(names, rows)
