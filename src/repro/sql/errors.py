"""SQL-specific error types."""

from repro.common.errors import ReproError


class SqlError(ReproError):
    """Base class for all SQL front-end and execution errors."""


class SqlSyntaxError(SqlError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message, position=None):
        if position is not None:
            message = "%s (at position %d)" % (message, position)
        super().__init__(message)
        self.position = position


class SqlAnalysisError(SqlError):
    """The query is well-formed but semantically invalid.

    Examples: unknown table or column, aggregate nested in aggregate,
    non-grouped column referenced in an aggregate query.
    """


class SqlExecutionError(SqlError):
    """A runtime failure while evaluating a plan (e.g. division by zero)."""
