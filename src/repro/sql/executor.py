"""Row-at-a-time physical execution of bound logical plans.

This is the *reference* interpreter: it defines the engine's SQL
semantics and stays available as the ``SqlEngine(vectorized=False)``
fallback, while :mod:`repro.sql.vectorized` is the default execution
path over NumPy column batches.  The parity suite asserts both paths
produce identical results.

The executor interprets a plan bottom-up over materialized row lists.
Rows are plain tuples; NULL is ``None``.  Three-valued logic follows
SQL: comparisons with NULL yield NULL, ``AND``/``OR`` short-circuit
through UNKNOWN, and WHERE keeps only rows whose predicate is TRUE.

When a :class:`~repro.engine.cluster.ClusterContext` is supplied, each
operator charges the cost model for the rows it touches, so SQL-driven
SIRUM runs are metered on the same scale as the operator-based engine.
"""

from repro.sql.errors import SqlExecutionError
from repro.sql.functions import make_aggregate
from repro.sql import plan as plan_nodes


class Executor:
    """Interprets plans against materialized relations."""

    def __init__(self, cluster=None):
        self._cluster = cluster

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def run(self, node):
        """Execute ``node``; returns (rows, names)."""
        rows = self._execute(node)
        names = output_names(node)
        return rows, names

    def _execute(self, node):
        method = getattr(self, "_exec_%s" % type(node).__name__.lower())
        return method(node)

    def _charge(self, rows_touched, ops=0):
        if self._cluster is not None:
            cost = self._cluster.cost
            self._cluster.metrics.charge(
                rows_touched * cost.record_seconds + ops * cost.op_seconds
            )

    # ------------------------------------------------------------------
    # Leaf and unary operators
    # ------------------------------------------------------------------

    def _exec_scan(self, node):
        relation = node.relation
        slots = node.column_slots
        full_width = slots == list(range(len(relation.columns)))
        out = []
        predicate = node.predicate
        for row in relation.rows:
            if predicate is not None and evaluate(predicate, row) is not True:
                continue
            out.append(row if full_width else tuple(row[i] for i in slots))
        self._charge(len(relation.rows), ops=len(out))
        return out

    def _exec_filter(self, node):
        child_rows = self._execute(node.child)
        out = [
            row for row in child_rows if evaluate(node.predicate, row) is True
        ]
        self._charge(len(child_rows))
        return out

    def _exec_project(self, node):
        child_rows = self._execute(node.child)
        exprs = node.exprs
        out = [tuple(evaluate(e, row) for e in exprs) for row in child_rows]
        self._charge(len(child_rows), ops=len(child_rows) * len(exprs))
        return out

    def _exec_distinct(self, node):
        child_rows = self._execute(node.child)
        seen = set()
        out = []
        for row in child_rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        self._charge(len(child_rows))
        return out

    def _exec_sort(self, node):
        rows = self._execute(node.child)
        # Stable multi-key sort: apply keys right-to-left.  NULLs sort
        # last under ASC, first under DESC (PostgreSQL default).
        for key_expr, ascending in reversed(list(zip(node.keys, node.ascending))):
            rows.sort(
                key=lambda row: _sort_key(evaluate(key_expr, row), ascending),
                reverse=not ascending,
            )
        self._charge(len(rows), ops=len(rows))
        return rows

    def _exec_limit(self, node):
        rows = self._execute(node.child)
        start = node.offset or 0
        stop = None if node.limit is None else start + node.limit
        return rows[start:stop]

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def _exec_hashjoin(self, node):
        left_rows = self._execute(node.left)
        right_rows = self._execute(node.right)
        build = {}
        for row in right_rows:
            key = tuple(evaluate(k, row) for k in node.right_keys)
            if any(v is None for v in key):
                continue  # NULL never joins
            build.setdefault(key, []).append(row)
        out = []
        for row in left_rows:
            key = tuple(evaluate(k, row) for k in node.left_keys)
            if any(v is None for v in key):
                continue
            for match in build.get(key, ()):
                joined = row + match
                if node.residual is None or evaluate(node.residual, joined) is True:
                    out.append(joined)
        self._charge(len(left_rows) + len(right_rows), ops=len(out))
        return out

    def _exec_crossjoin(self, node):
        left_rows = self._execute(node.left)
        right_rows = self._execute(node.right)
        out = []
        for left in left_rows:
            for right in right_rows:
                joined = left + right
                if node.condition is None or evaluate(node.condition, joined) is True:
                    out.append(joined)
        self._charge(len(left_rows) * max(len(right_rows), 1), ops=len(out))
        return out

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _exec_aggregate(self, node):
        child_rows = self._execute(node.child)
        group_exprs = node.group_exprs
        n_groups = len(group_exprs)
        out = []
        # One pass per grouping set; CUBE over d columns runs 2^d passes,
        # mirroring the 2^d group-bys the naive cube algorithm issues.
        for kept in node.grouping_sets:
            kept_set = frozenset(kept)
            groups = {}
            order = []
            for row in child_rows:
                key = tuple(
                    evaluate(group_exprs[i], row) if i in kept_set else None
                    for i in range(n_groups)
                )
                state = groups.get(key)
                if state is None:
                    state = [
                        make_aggregate(name, count_rows=arg is None, distinct=distinct)
                        for name, arg, distinct in node.agg_specs
                    ]
                    groups[key] = state
                    order.append(key)
                for agg, (name, arg, _distinct) in zip(state, node.agg_specs):
                    agg.add(True if arg is None else evaluate(arg, row))
            if not child_rows and not kept and n_groups == 0:
                # Global aggregate over an empty input still yields one row.
                state = [
                    make_aggregate(name, count_rows=arg is None, distinct=distinct)
                    for name, arg, distinct in node.agg_specs
                ]
                groups[()] = state
                order.append(())
            grouping_bits = tuple(
                0 if i in kept_set else 1 for i in range(n_groups)
            )
            for key in order:
                results = tuple(agg.result() for agg in groups[key])
                out.append(key + results + grouping_bits)
            self._charge(len(child_rows), ops=len(groups) * len(node.agg_specs))
        return out


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------


def evaluate(expr, row):
    """Evaluate a bound expression against one row tuple."""
    tag = expr[0]
    if tag == "col":
        return row[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "cmp":
        return _compare(expr[1], evaluate(expr[2], row), evaluate(expr[3], row))
    if tag == "arith":
        return _arithmetic(expr[1], evaluate(expr[2], row), evaluate(expr[3], row))
    if tag == "and":
        left = evaluate(expr[1], row)
        if left is False:
            return False
        right = evaluate(expr[2], row)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if tag == "or":
        left = evaluate(expr[1], row)
        if left is True:
            return True
        right = evaluate(expr[2], row)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False
    if tag == "not":
        value = evaluate(expr[1], row)
        return None if value is None else (not value)
    if tag == "neg":
        value = evaluate(expr[1], row)
        return None if value is None else -value
    if tag == "isnull":
        value = evaluate(expr[1], row)
        return (value is not None) if expr[2] else (value is None)
    if tag == "in":
        value = evaluate(expr[1], row)
        if value is None:
            return None
        hit = value in expr[2]
        return (not hit) if expr[3] else hit
    if tag == "in_exprs":
        value = evaluate(expr[1], row)
        if value is None:
            return None
        saw_null = False
        for item in expr[2]:
            candidate = evaluate(item, row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if expr[3] else True
        if saw_null:
            return None
        return True if expr[3] else False
    if tag == "between":
        value = evaluate(expr[1], row)
        low = evaluate(expr[2], row)
        high = evaluate(expr[3], row)
        if value is None or low is None or high is None:
            return None
        hit = low <= value <= high
        return (not hit) if expr[4] else hit
    if tag == "case":
        for condition, result in expr[1]:
            if evaluate(condition, row) is True:
                return evaluate(result, row)
        return evaluate(expr[2], row)
    if tag == "cast":
        return _cast(evaluate(expr[1], row), expr[2])
    if tag == "call":
        fn, null_aware, args = expr[1], expr[2], expr[3]
        values = [evaluate(a, row) for a in args]
        if not null_aware and any(v is None for v in values):
            return None
        try:
            return fn(*values)
        except SqlExecutionError:
            raise
        except (TypeError, ValueError, ZeroDivisionError) as exc:
            raise SqlExecutionError("function call failed: %s" % exc) from exc
    if tag == "grouping":
        # Resolved by the Aggregate operator: bits live after the
        # aggregate results.  The planner only emits this tag inside a
        # Project directly above an Aggregate.
        raise SqlExecutionError("GROUPING() used outside an aggregate context")
    raise SqlExecutionError("unknown expression tag %r" % tag)


def _compare(op, left, right):
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise SqlExecutionError(
            "cannot compare %r with %r" % (left, right)
        ) from exc
    raise SqlExecutionError("unknown comparison %r" % op)


def _arithmetic(op, left, right):
    if op == "||":
        if left is None or right is None:
            return None
        return str(left) + str(right)
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise SqlExecutionError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return left / right  # SQL float division, PostgreSQL-style
            return left / right
        if op == "%":
            if right == 0:
                raise SqlExecutionError("modulo by zero")
            return left % right
    except TypeError as exc:
        raise SqlExecutionError(
            "bad operands for %s: %r, %r" % (op, left, right)
        ) from exc
    raise SqlExecutionError("unknown operator %r" % op)


def _cast(value, type_name):
    if value is None:
        return None
    try:
        if type_name == "INTEGER":
            return int(value)
        if type_name == "FLOAT":
            return float(value)
        if type_name == "TEXT":
            return str(value)
    except (TypeError, ValueError) as exc:
        raise SqlExecutionError(
            "cannot cast %r to %s" % (value, type_name)
        ) from exc
    raise SqlExecutionError("unknown cast type %r" % type_name)


class _NullLast:
    """Sort wrapper placing NULLs last in ascending order."""

    __slots__ = ("value", "is_null")

    def __init__(self, value, is_null):
        self.value = value
        self.is_null = is_null

    def __lt__(self, other):
        if self.is_null:
            return False
        if other.is_null:
            return True
        return self.value < other.value

    def __eq__(self, other):
        return self.is_null == other.is_null and self.value == other.value


def _sort_key(value, ascending):
    return _NullLast(value, value is None)


def output_names(node):
    """Output column names of a plan subtree (shared by both executors)."""
    if isinstance(node, plan_nodes.Project):
        return list(node.names)
    if isinstance(node, plan_nodes.Scan):
        return [node.relation.columns[i] for i in node.column_slots]
    children = node.children()
    if children:
        return output_names(children[0])
    return []


#: Backwards-compatible alias (pre-vectorization name).
_output_names = output_names
