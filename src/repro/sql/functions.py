"""Scalar and aggregate function registry for the SQL engine.

Scalar functions are plain callables over Python values with SQL NULL
(None) propagation handled by the executor for the common case (any
NULL argument yields NULL) unless the function is registered as
``null_aware``.  Aggregates are small accumulator classes with the
standard SQL semantics: NULL inputs are skipped; an empty input yields
NULL for everything except COUNT, which yields 0.
"""

import math

import numpy as np

from repro.sql.errors import SqlAnalysisError, SqlExecutionError


# ----------------------------------------------------------------------
# Scalar functions
# ----------------------------------------------------------------------


def _sql_like(value, pattern):
    """SQL LIKE with ``%`` and ``_`` wildcards, case-sensitive."""
    if value is None or pattern is None:
        return None
    # Translate to a regex once per call; patterns are tiny in practice.
    import re

    out = []
    for ch in str(pattern):
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return bool(re.fullmatch("".join(out), str(value)))


def _checked_log(value):
    if value <= 0:
        raise SqlExecutionError("LN of a non-positive value %r" % value)
    return math.log(value)


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(a, b):
    return None if a == b else a


#: name -> (callable, null_aware).  Non-null-aware functions are only
#: invoked when every argument is non-NULL.
SCALAR_FUNCTIONS = {
    "ABS": (abs, False),
    "LN": (_checked_log, False),
    "LOG": (_checked_log, False),
    "EXP": (math.exp, False),
    "SQRT": (math.sqrt, False),
    "FLOOR": (lambda x: float(math.floor(x)), False),
    "CEIL": (lambda x: float(math.ceil(x)), False),
    "ROUND": (lambda x, n=0: round(x, int(n)), False),
    "POWER": (lambda x, y: float(x) ** float(y), False),
    "UPPER": (lambda s: str(s).upper(), False),
    "LOWER": (lambda s: str(s).lower(), False),
    "LENGTH": (lambda s: len(str(s)), False),
    "LIKE": (_sql_like, True),
    "COALESCE": (_coalesce, True),
    "NULLIF": (_nullif, True),
    "GREATEST": (lambda *a: max(a), False),
    "LEAST": (lambda *a: min(a), False),
}


def lookup_scalar(name):
    try:
        return SCALAR_FUNCTIONS[name]
    except KeyError:
        raise SqlAnalysisError("unknown function %r" % name) from None


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------


class Aggregate:
    """Accumulator protocol: ``add(value)`` then ``result()``."""

    def add(self, value):
        raise NotImplementedError

    def result(self):
        raise NotImplementedError


class CountAgg(Aggregate):
    """COUNT(expr): number of non-NULL inputs; COUNT(*) counts rows."""

    def __init__(self, count_rows=False):
        self._count_rows = count_rows
        self._n = 0

    def add(self, value):
        if self._count_rows or value is not None:
            self._n += 1

    def result(self):
        return self._n


class SumAgg(Aggregate):
    def __init__(self):
        self._total = None

    def add(self, value):
        if value is None:
            return
        self._total = value if self._total is None else self._total + value

    def result(self):
        return self._total


class AvgAgg(Aggregate):
    def __init__(self):
        self._total = 0.0
        self._n = 0

    def add(self, value):
        if value is None:
            return
        self._total += value
        self._n += 1

    def result(self):
        return None if self._n == 0 else self._total / self._n


class MinAgg(Aggregate):
    def __init__(self):
        self._best = None

    def add(self, value):
        if value is None:
            return
        if self._best is None or value < self._best:
            self._best = value

    def result(self):
        return self._best


class MaxAgg(Aggregate):
    def __init__(self):
        self._best = None

    def add(self, value):
        if value is None:
            return
        if self._best is None or value > self._best:
            self._best = value

    def result(self):
        return self._best


class VarianceAgg(Aggregate):
    """Sample variance via Welford's online algorithm (numerically stable)."""

    def __init__(self):
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value):
        if value is None:
            return
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)

    def result(self):
        if self._n < 2:
            return None
        return self._m2 / (self._n - 1)


class StddevAgg(VarianceAgg):
    def result(self):
        variance = super().result()
        return None if variance is None else math.sqrt(variance)


class DistinctAgg(Aggregate):
    """Wraps another aggregate, feeding each distinct value once."""

    def __init__(self, inner):
        self._inner = inner
        self._seen = set()

    def add(self, value):
        if value is None or value in self._seen:
            return
        self._seen.add(value)
        self._inner.add(value)

    def result(self):
        return self._inner.result()


AGGREGATE_FACTORIES = {
    "COUNT": CountAgg,
    "SUM": SumAgg,
    "AVG": AvgAgg,
    "MIN": MinAgg,
    "MAX": MaxAgg,
    "VARIANCE": VarianceAgg,
    "VAR_SAMP": VarianceAgg,
    "STDDEV": StddevAgg,
}


def is_aggregate_name(name):
    return name in AGGREGATE_FACTORIES


# ----------------------------------------------------------------------
# Vectorized aggregate kernels
# ----------------------------------------------------------------------
#
# Used by :mod:`repro.sql.vectorized` when an aggregate's input column
# has a numeric/bool dtype.  Each kernel takes the per-row group codes
# (``0 .. num_groups-1``) plus the input values restricted to valid
# (non-NULL) lanes, and returns ``(results, valid)`` arrays with one
# lane per group.  Accumulation happens in row order, so float results
# are bit-identical to feeding the accumulator classes row by row.

#: Aggregates with a vectorized kernel; everything else (DISTINCT,
#: VARIANCE/STDDEV, object-dtype inputs) runs through the accumulators.
VECTORIZED_AGGREGATES = frozenset(["COUNT", "SUM", "AVG", "MIN", "MAX"])


def group_count(codes, num_groups):
    """COUNT over already-valid lanes (pass all codes for COUNT(*))."""
    counts = np.bincount(codes, minlength=num_groups).astype(np.int64)
    return counts, None


def group_sum(codes, values, num_groups):
    """SUM; NULL (not 0) for groups with no non-NULL input."""
    counts = np.bincount(codes, minlength=num_groups)
    if values.dtype == np.float64:
        totals = np.bincount(codes, weights=values, minlength=num_groups)
    else:
        totals = np.zeros(num_groups, dtype=np.int64)
        np.add.at(totals, codes, values.astype(np.int64))
    return totals, counts > 0


def group_avg(codes, values, num_groups):
    """AVG = float sum / count; NULL for all-NULL groups."""
    counts = np.bincount(codes, minlength=num_groups)
    totals = np.bincount(
        codes, weights=values.astype(np.float64), minlength=num_groups
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        means = totals / counts
    return means, counts > 0


def group_min_max(codes, values, num_groups, largest):
    """MIN/MAX via a stable sort by group plus a segmented reduce."""
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    sorted_values = values[order]
    present, starts = np.unique(sorted_codes, return_index=True)
    reducer = np.maximum if largest else np.minimum
    out = np.zeros(num_groups, dtype=values.dtype)
    valid = np.zeros(num_groups, dtype=bool)
    if len(starts):
        out[present] = reducer.reduceat(sorted_values, starts)
        valid[present] = True
    return out, valid


def make_aggregate(name, count_rows=False, distinct=False):
    """Build an accumulator for aggregate ``name``.

    ``count_rows`` selects COUNT(*) semantics; ``distinct`` wraps the
    accumulator so duplicate inputs are folded once.
    """
    try:
        factory = AGGREGATE_FACTORIES[name]
    except KeyError:
        raise SqlAnalysisError("unknown aggregate %r" % name) from None
    agg = factory(count_rows=True) if (name == "COUNT" and count_rows) else factory()
    if distinct:
        if name == "COUNT" and count_rows:
            raise SqlAnalysisError("COUNT(DISTINCT *) is not valid SQL")
        agg = DistinctAgg(agg)
    return agg
