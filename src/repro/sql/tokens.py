"""Tokenizer for the SQL dialect.

Produces a flat list of :class:`Token` objects.  Keywords are
case-insensitive and normalized to upper case; identifiers keep their
original spelling (the catalog matches them case-insensitively).
String literals use single quotes with ``''`` as the escape for a
literal quote, as in standard SQL.
"""

from repro.sql.errors import SqlSyntaxError

#: Reserved words recognized by the parser.  Anything else that looks
#: like a word is an identifier.
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS
    AND OR NOT IN IS NULL TRUE FALSE BETWEEN LIKE
    ASC DESC DISTINCT ALL
    JOIN INNER LEFT ON CROSS
    CUBE ROLLUP GROUPING SETS
    CASE WHEN THEN ELSE END
    CAST INTEGER FLOAT TEXT
    UNION
    """.split()
)

#: Multi-character operators, longest first so ``<=`` wins over ``<``.
MULTI_CHAR_OPERATORS = ("<>", "<=", ">=", "!=", "||")

SINGLE_CHAR_OPERATORS = "+-*/%(),.<>=;"


class Token:
    """One lexical token.

    ``kind`` is one of ``KEYWORD``, ``IDENT``, ``NUMBER``, ``STRING``,
    ``OP`` or ``EOF``; ``value`` is the normalized token text (or the
    parsed value for literals) and ``position`` is the character offset
    in the source for error messages.
    """

    __slots__ = ("kind", "value", "position")

    def __init__(self, kind, value, position):
        self.kind = kind
        self.value = value
        self.position = position

    def matches(self, kind, value=None):
        return self.kind == kind and (value is None or self.value == value)

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(text):
    """Tokenize ``text``; returns a list ending with an EOF token."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            value, i = _read_number(text, i)
            tokens.append(Token("NUMBER", value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        if ch == '"':
            value, i = _read_quoted_identifier(text, i)
            tokens.append(Token("IDENT", value, i))
            continue
        matched = False
        for op in MULTI_CHAR_OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_CHAR_OPERATORS:
            tokens.append(Token("OP", ch, i))
            i += 1
            continue
        raise SqlSyntaxError("unexpected character %r" % ch, position=i)
    tokens.append(Token("EOF", None, n))
    return tokens


def _read_string(text, i):
    """Read a single-quoted string starting at ``i``; return (value, next_i)."""
    out = []
    i += 1  # opening quote
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", position=i)


def _read_quoted_identifier(text, i):
    """Read a double-quoted identifier starting at ``i``."""
    end = text.find('"', i + 1)
    if end < 0:
        raise SqlSyntaxError("unterminated quoted identifier", position=i)
    name = text[i + 1:end]
    if not name:
        raise SqlSyntaxError("empty quoted identifier", position=i)
    return name, end + 1


def _read_number(text, i):
    """Read an integer or float literal; return (int-or-float, next_i)."""
    start = i
    n = len(text)
    saw_dot = False
    saw_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not saw_dot and not saw_exp:
            saw_dot = True
            i += 1
        elif ch in "eE" and not saw_exp and i > start:
            nxt = text[i + 1] if i + 1 < n else ""
            nxt2 = text[i + 2] if i + 2 < n else ""
            if nxt.isdigit() or (nxt in "+-" and nxt2.isdigit()):
                saw_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    literal = text[start:i]
    if saw_dot or saw_exp:
        return float(literal), i
    return int(literal), i
