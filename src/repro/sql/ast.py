"""Abstract syntax tree for the SQL dialect.

Nodes are plain immutable-by-convention classes with ``__eq__`` and
``__repr__`` so tests can assert on parsed structure directly.  The
planner (:mod:`repro.sql.planner`) walks these trees; nothing here
knows about tables or execution.
"""


class Node:
    """Base class providing structural equality over ``__slots__``."""

    __slots__ = ()

    def _fields(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other):
        return type(self) is type(other) and self._fields() == other._fields()

    def __hash__(self):
        return hash((type(self).__name__,) + self._fields())

    def __repr__(self):
        parts = ", ".join(
            "%s=%r" % (name, getattr(self, name)) for name in self.__slots__
        )
        return "%s(%s)" % (type(self).__name__, parts)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class Literal(Node):
    """A constant: number, string, boolean or NULL (value is None)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class ColumnRef(Node):
    """A possibly qualified column reference, e.g. ``d.origin``."""

    __slots__ = ("table", "name")

    def __init__(self, name, table=None):
        self.name = name
        self.table = table


class Star(Node):
    """``*`` in a select list or inside ``COUNT(*)``."""

    __slots__ = ("table",)

    def __init__(self, table=None):
        self.table = table


class BinaryOp(Node):
    """Infix operator application: arithmetic, comparison, AND/OR, ``||``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right


class UnaryOp(Node):
    """Prefix operator: ``-expr`` or ``NOT expr``."""

    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        self.op = op
        self.operand = operand


class FunctionCall(Node):
    """Scalar or aggregate function call.

    ``distinct`` is only meaningful for aggregates (``COUNT(DISTINCT x)``).
    """

    __slots__ = ("name", "args", "distinct")

    def __init__(self, name, args, distinct=False):
        self.name = name.upper()
        self.args = tuple(args)
        self.distinct = distinct


class IsNull(Node):
    """``expr IS [NOT] NULL``."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand, negated=False):
        self.operand = operand
        self.negated = negated


class InList(Node):
    """``expr [NOT] IN (value, ...)``."""

    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand, items, negated=False):
        self.operand = operand
        self.items = tuple(items)
        self.negated = negated


class Between(Node):
    """``expr [NOT] BETWEEN low AND high``."""

    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand, low, high, negated=False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated


class Case(Node):
    """``CASE WHEN cond THEN value ... [ELSE value] END``.

    Only the searched form is supported; ``whens`` is a tuple of
    (condition, result) pairs.
    """

    __slots__ = ("whens", "default")

    def __init__(self, whens, default=None):
        self.whens = tuple(whens)
        self.default = default


class Cast(Node):
    """``CAST(expr AS type)`` with type one of INTEGER, FLOAT, TEXT."""

    __slots__ = ("operand", "type_name")

    def __init__(self, operand, type_name):
        self.operand = operand
        self.type_name = type_name.upper()


# ----------------------------------------------------------------------
# Query structure
# ----------------------------------------------------------------------


class SelectItem(Node):
    """One select-list entry: an expression with an optional alias."""

    __slots__ = ("expr", "alias")

    def __init__(self, expr, alias=None):
        self.expr = expr
        self.alias = alias


class TableRef(Node):
    """A base-table reference with an optional alias."""

    __slots__ = ("name", "alias")

    def __init__(self, name, alias=None):
        self.name = name
        self.alias = alias


class Join(Node):
    """An inner or cross join between two table expressions.

    ``condition`` is None for CROSS JOIN.
    """

    __slots__ = ("left", "right", "condition")

    def __init__(self, left, right, condition=None):
        self.left = left
        self.right = right
        self.condition = condition


class GroupingSpec(Node):
    """The GROUP BY clause.

    ``mode`` is one of ``"plain"``, ``"cube"``, ``"rollup"`` or
    ``"sets"``.  For plain/cube/rollup, ``exprs`` holds the grouped
    expressions; for sets, ``sets`` holds one tuple of expressions per
    grouping set (``exprs`` is the deduplicated union, in first-seen
    order).
    """

    __slots__ = ("mode", "exprs", "sets")

    def __init__(self, mode, exprs, sets=None):
        self.mode = mode
        self.exprs = tuple(exprs)
        self.sets = None if sets is None else tuple(tuple(s) for s in sets)

    def grouping_sets(self):
        """Expand to explicit grouping sets (tuples of indexes into exprs).

        - plain  -> one set with every expression;
        - cube   -> all ``2^n`` subsets (thesis §2.5's cube lattice);
        - rollup -> the ``n+1`` prefixes;
        - sets   -> as written.
        """
        n = len(self.exprs)
        if self.mode == "plain":
            return [tuple(range(n))]
        if self.mode == "cube":
            sets = []
            for mask in range(1 << n):
                sets.append(tuple(i for i in range(n) if mask & (1 << i)))
            # Most-specific first, matching the conventional output order.
            sets.sort(key=lambda s: (-len(s), s))
            return sets
        if self.mode == "rollup":
            return [tuple(range(i)) for i in range(n, -1, -1)]
        if self.mode == "sets":
            index_of = {expr: i for i, expr in enumerate(self.exprs)}
            return [tuple(index_of[e] for e in s) for s in self.sets]
        raise ValueError("unknown grouping mode %r" % self.mode)


class OrderItem(Node):
    """One ORDER BY key: an expression plus direction."""

    __slots__ = ("expr", "ascending")

    def __init__(self, expr, ascending=True):
        self.expr = expr
        self.ascending = ascending


class Select(Node):
    """A full SELECT statement."""

    __slots__ = (
        "items",
        "source",
        "where",
        "group",
        "having",
        "order",
        "limit",
        "offset",
        "distinct",
    )

    def __init__(self, items, source, where=None, group=None, having=None,
                 order=None, limit=None, offset=None, distinct=False):
        self.items = tuple(items)
        self.source = source
        self.where = where
        self.group = group
        self.having = having
        self.order = None if order is None else tuple(order)
        self.limit = limit
        self.offset = offset
        self.distinct = distinct


def walk(node):
    """Yield ``node`` and every descendant expression/clause node."""
    stack = [node]
    while stack:
        current = stack.pop()
        if not isinstance(current, Node):
            continue
        yield current
        for name in current.__slots__:
            value = getattr(current, name)
            if isinstance(value, Node):
                stack.append(value)
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Node):
                        stack.append(item)
                    elif isinstance(item, tuple):
                        stack.extend(x for x in item if isinstance(x, Node))
