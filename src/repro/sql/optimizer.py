"""Rule-based logical-plan optimizer.

Three classic rewrites, each preserving results exactly:

- **predicate pushdown** — Filter directly above a Scan folds into the
  scan, so non-qualifying rows are dropped during the table read;
- **projection pruning** — a Scan only materializes columns some
  ancestor actually references (wide tables are the thesis's setting,
  so unread dimension columns are pure overhead);
- **constant folding** — bound sub-expressions with no column inputs
  are evaluated once at plan time.

The optimizer is idempotent; ``optimize(optimize(p))`` equals
``optimize(p)`` structurally.
"""

from repro.sql import plan as p
from repro.sql.errors import SqlExecutionError
from repro.sql.executor import evaluate


def optimize(node):
    """Apply all rewrite rules; returns a new plan tree."""
    node = _fold_constants_in_plan(node)
    node = _push_down_predicates(node)
    node = _prune_scan_columns(node)
    return node


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------

_FOLDABLE_TAGS = frozenset(
    ["cmp", "arith", "and", "or", "not", "neg", "isnull", "between", "cast"]
)


def fold_expr(expr):
    """Fold constant sub-expressions of one bound expression."""
    if not isinstance(expr, tuple) or not expr:
        return expr
    tag = expr[0]
    if tag in ("const", "col", "grouping"):
        return expr
    folded = tuple(
        fold_expr(part)
        if isinstance(part, tuple) and part and isinstance(part[0], str)
        else _fold_parts(part)
        for part in expr
    )
    if folded[0] in _FOLDABLE_TAGS and _all_const_operands(folded):
        try:
            return ("const", evaluate(folded, ()))
        except SqlExecutionError:
            return folded  # fold at run time instead, preserving the error
    return folded


def _fold_parts(part):
    """Fold a tuple of sub-expressions (e.g. CASE whens, IN items)."""
    if isinstance(part, tuple):
        return tuple(
            fold_expr(x)
            if isinstance(x, tuple) and x and isinstance(x[0], str)
            else _fold_parts(x)
            if isinstance(x, tuple)
            else x
            for x in part
        )
    return part


def _all_const_operands(expr):
    for part in expr[1:]:
        if isinstance(part, tuple) and part and isinstance(part[0], str):
            if part[0] != "const":
                return False
    return True


def _fold_constants_in_plan(node):
    for child_name in ("child", "left", "right"):
        child = getattr(node, child_name, None)
        if isinstance(child, p.PlanNode):
            setattr(node, child_name, _fold_constants_in_plan(child))
    if isinstance(node, p.Filter):
        node.predicate = fold_expr(node.predicate)
    elif isinstance(node, p.Project):
        node.exprs = [fold_expr(e) for e in node.exprs]
    elif isinstance(node, p.Scan) and node.predicate is not None:
        node.predicate = fold_expr(node.predicate)
    elif isinstance(node, p.Aggregate):
        node.group_exprs = [fold_expr(e) for e in node.group_exprs]
        node.agg_specs = [
            (name, None if arg is None else fold_expr(arg), distinct)
            for name, arg, distinct in node.agg_specs
        ]
    elif isinstance(node, p.Sort):
        node.keys = [fold_expr(k) for k in node.keys]
    return node


# ----------------------------------------------------------------------
# Predicate pushdown
# ----------------------------------------------------------------------


def _push_down_predicates(node):
    for child_name in ("child", "left", "right"):
        child = getattr(node, child_name, None)
        if isinstance(child, p.PlanNode):
            setattr(node, child_name, _push_down_predicates(child))
    if isinstance(node, p.Filter) and isinstance(node.child, p.Scan):
        scan = node.child
        if scan.predicate is None:
            scan.predicate = node.predicate
        else:
            scan.predicate = ("and", scan.predicate, node.predicate)
        return scan
    if isinstance(node, p.Filter) and node.predicate == ("const", True):
        return node.child
    return node


# ----------------------------------------------------------------------
# Projection pruning
# ----------------------------------------------------------------------


def _prune_scan_columns(node):
    """Narrow every Scan to the columns its consumers reference.

    Only the straightforward case is rewritten: a Scan whose immediate
    parent chain consists of Filter / Project nodes.  Join children are
    left at full width (their slot spaces are interleaved and the
    payoff is small at this scale).
    """
    if isinstance(node, (p.Project, p.Aggregate, p.Filter, p.Sort,
                         p.Limit, p.Distinct)):
        child = node.children()[0] if node.children() else None
        if isinstance(child, p.Scan) and isinstance(node, p.Project):
            # The scan's predicate is evaluated against the *full*
            # relation row before projection, so only the Project's own
            # references decide which columns the scan must emit.
            used = set()
            for expr in node.exprs:
                _collect_columns(expr, used)
            full = child.column_slots
            kept = [slot for i, slot in enumerate(full) if i in used]
            if len(kept) < len(full):
                remap = {
                    old_index: new_index
                    for new_index, old_index in enumerate(
                        i for i in range(len(full)) if i in used
                    )
                }
                child.column_slots = kept
                node.exprs = [_remap_columns(e, remap) for e in node.exprs]
    for child_name in ("child", "left", "right"):
        child = getattr(node, child_name, None)
        if isinstance(child, p.PlanNode):
            setattr(node, child_name, _prune_scan_columns(child))
    return node


def _collect_columns(expr, out):
    """Record every referenced column slot of a bound expression."""
    if not isinstance(expr, tuple) or not expr:
        return
    if isinstance(expr[0], str):
        if expr[0] == "col":
            out.add(expr[1])
            return
        parts = expr[1:]
    else:
        parts = expr  # untagged container, e.g. CASE's whens tuple
    for part in parts:
        if isinstance(part, tuple):
            _collect_columns(part, out)


def _remap_columns(expr, remap):
    """Rewrite column slots of a bound expression through ``remap``."""
    if not isinstance(expr, tuple) or not expr:
        return expr
    if isinstance(expr[0], str):
        if expr[0] == "col":
            return ("col", remap[expr[1]])
        return (expr[0],) + tuple(
            _remap_columns(part, remap) if isinstance(part, tuple) else part
            for part in expr[1:]
        )
    return tuple(
        _remap_columns(part, remap) if isinstance(part, tuple) else part
        for part in expr
    )
