"""Catalog: named relations visible to the SQL engine.

A relation is a list of column names plus a row iterator.  SIRUM's
columnar :class:`~repro.data.table.Table` registers with its dimension
values decoded back to their original objects so SQL predicates compare
what the analyst wrote (``origin = 'SF'``), exactly as on PostgreSQL.
Intermediate results (e.g. the estimate table during iterative scaling)
register as plain row relations.
"""

from repro.sql.errors import SqlAnalysisError


class Relation:
    """A named relation: ordered column names and materialized rows."""

    def __init__(self, columns, rows):
        self.columns = list(columns)
        seen = set()
        for name in self.columns:
            lowered = name.lower()
            if lowered in seen:
                raise SqlAnalysisError("duplicate column name %r" % name)
            seen.add(lowered)
        self.rows = [tuple(row) for row in rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise SqlAnalysisError(
                    "row arity %d does not match %d columns"
                    % (len(row), len(self.columns))
                )

    def column_index(self, name):
        lowered = name.lower()
        for i, column in enumerate(self.columns):
            if column.lower() == lowered:
                return i
        raise SqlAnalysisError("unknown column %r" % name)

    def __len__(self):
        return len(self.rows)


class Catalog:
    """Case-insensitive mapping of table names to relations."""

    def __init__(self):
        self._relations = {}

    def register(self, name, relation):
        """Register (or replace) relation ``name``."""
        if not name or not isinstance(name, str):
            raise SqlAnalysisError("table name must be a non-empty string")
        self._relations[name.lower()] = relation

    def register_rows(self, name, columns, rows):
        """Convenience: build a :class:`Relation` from columns + rows."""
        self.register(name, Relation(columns, rows))

    def register_table(self, name, table, row_id_column=None):
        """Register a SIRUM columnar table as relation ``name``.

        Columns are the schema's dimensions (decoded values) followed by
        the measure.  If ``row_id_column`` is given, a leading integer
        row-id column of that name is added — the thesis's flight table
        carries a ``Flight ID`` this models.
        """
        schema = table.schema
        columns = list(schema.dimensions) + [schema.measure]
        rows = []
        for i in range(len(table)):
            rows.append(table.decoded_row(i))
        if row_id_column is not None:
            columns = [row_id_column] + columns
            rows = [(i + 1,) + row for i, row in enumerate(rows)]
        self.register(name, Relation(columns, rows))

    def drop(self, name):
        """Remove relation ``name``; missing names are ignored."""
        self._relations.pop(name.lower(), None)

    def lookup(self, name):
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise SqlAnalysisError("unknown table %r" % name) from None

    def names(self):
        return sorted(self._relations)

    def __contains__(self, name):
        return name.lower() in self._relations
