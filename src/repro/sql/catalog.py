"""Catalog: named relations visible to the SQL engine.

A relation is a list of column names plus its data, held in *both* of
the engine's physical forms on demand: row tuples (the reference
interpreter) and NumPy column batches (the vectorized executor).
Either form can be the source of truth — ``Relation(columns, rows)``
materializes columns lazily, :meth:`Relation.from_columns` materializes
rows lazily — and each conversion is computed once and cached, so
repeated queries against the same relation never re-convert.

SIRUM's columnar :class:`~repro.data.table.Table` registers with its
dimension values decoded back to their original objects (one NumPy
gather per column, no per-row loop) so SQL predicates compare what the
analyst wrote (``origin = 'SF'``), exactly as on PostgreSQL.

The catalog carries a monotonically increasing :attr:`Catalog.version`,
bumped by every ``register_*`` / ``drop``: bound plans reference
relations directly, so the engine's plan cache uses the version to
invalidate stale plans.

The catalog is safe to share across threads: registration, drops and
the versioned lookups hold an internal lock, and
:meth:`Catalog.lookup_with_version` returns a relation *together with*
the version it was read under, so a ``register_table`` racing an
in-flight query can never pair a new relation with a stale version
number (or vice versa) in a caller's versioned result cache.
"""

import threading

import numpy as np

from repro.sql.columns import Column, as_column, column_from_values
from repro.sql.errors import SqlAnalysisError


class Relation:
    """A named relation: ordered column names plus rows and/or columns."""

    def __init__(self, columns, rows):
        self.columns = list(columns)
        _check_unique(self.columns)
        self._rows = [tuple(row) for row in rows]
        for row in self._rows:
            if len(row) != len(self.columns):
                raise SqlAnalysisError(
                    "row arity %d does not match %d columns"
                    % (len(row), len(self.columns))
                )
        self._n = len(self._rows)
        self._column_data = None

    @classmethod
    def from_columns(cls, columns, data):
        """Build a relation from columnar data without materializing rows.

        ``data`` is one :class:`~repro.sql.columns.Column`, NumPy array
        or value sequence per column name.
        """
        relation = cls.__new__(cls)
        relation.columns = list(columns)
        _check_unique(relation.columns)
        cols = [as_column(d) for d in data]
        if len(cols) != len(relation.columns):
            raise SqlAnalysisError(
                "got %d data columns for %d column names"
                % (len(cols), len(relation.columns))
            )
        lengths = {len(c) for c in cols}
        if len(lengths) > 1:
            raise SqlAnalysisError(
                "column lengths differ: %s" % sorted(lengths)
            )
        relation._n = lengths.pop() if lengths else 0
        relation._column_data = (cols, relation._n)
        relation._rows = None
        return relation

    @property
    def rows(self):
        """Row tuples (materialized from columns on first access)."""
        if self._rows is None:
            cols, n = self._column_data
            if cols:
                self._rows = list(zip(*[c.to_pylist() for c in cols]))
            else:
                self._rows = [() for _ in range(n)]
        return self._rows

    def column_data(self):
        """``(columns, row_count)`` in batch form (computed once)."""
        if self._column_data is None:
            width = len(self.columns)
            cols = [
                column_from_values([row[i] for row in self._rows])
                for i in range(width)
            ]
            self._column_data = (cols, self._n)
        return self._column_data

    def column_index(self, name):
        lowered = name.lower()
        for i, column in enumerate(self.columns):
            if column.lower() == lowered:
                return i
        raise SqlAnalysisError("unknown column %r" % name)

    def __len__(self):
        return self._n


def _check_unique(columns):
    seen = set()
    for name in columns:
        lowered = name.lower()
        if lowered in seen:
            raise SqlAnalysisError("duplicate column name %r" % name)
        seen.add(lowered)


class Catalog:
    """Case-insensitive mapping of table names to relations."""

    def __init__(self):
        self._relations = {}
        #: Bumped on every registration/drop; consumed by the engine's
        #: plan cache to invalidate plans bound to stale relations.
        self.version = 0
        # Serializes mutation and versioned reads.  A plain attribute
        # read of ``version`` stays lock-free (it is a monotonic int);
        # use lookup_with_version() when the pairing matters.
        self._lock = threading.Lock()

    def register(self, name, relation):
        """Register (or replace) relation ``name``."""
        if not name or not isinstance(name, str):
            raise SqlAnalysisError("table name must be a non-empty string")
        with self._lock:
            self._relations[name.lower()] = relation
            self.version += 1

    def register_rows(self, name, columns, rows):
        """Convenience: build a :class:`Relation` from columns + rows."""
        self.register(name, Relation(columns, rows))

    def register_columns(self, name, columns, data):
        """Register columnar data directly (no per-row conversion).

        ``data`` is one Column / NumPy array / sequence per name; this
        is the fast path for NumPy-resident inputs such as the platform
        sims' measure and estimate vectors.
        """
        self.register(name, Relation.from_columns(columns, data))

    def register_table(self, name, table, row_id_column=None):
        """Register a SIRUM columnar table as relation ``name``.

        Columns are the schema's dimensions (decoded values) followed by
        the measure.  If ``row_id_column`` is given, a leading integer
        row-id column of that name is added — the thesis's flight table
        carries a ``Flight ID`` this models.  Dimension decoding is one
        NumPy gather through each dictionary's value array.
        """
        schema = table.schema
        columns = list(schema.dimensions) + [schema.measure]
        data = [
            decoded_dimension_column(encoder, codes)
            for encoder, codes in zip(
                table.encoders(), table.dimension_columns()
            )
        ]
        data.append(Column(np.asarray(table.measure, dtype=np.float64)))
        if row_id_column is not None:
            columns = [row_id_column] + columns
            data = [Column(np.arange(1, len(table) + 1, dtype=np.int64))] + data
        self.register(name, Relation.from_columns(columns, data))

    def drop(self, name):
        """Remove relation ``name``; missing names are ignored."""
        with self._lock:
            if self._relations.pop(name.lower(), None) is not None:
                self.version += 1

    def lookup(self, name):
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise SqlAnalysisError("unknown table %r" % name) from None

    def lookup_with_version(self, name):
        """Atomically return ``(relation, version)`` for table ``name``.

        A concurrent ``register``/``drop`` either happens entirely
        before this read (new relation, new version) or entirely after
        it (old relation, old version) — never a mix, which is what a
        versioned result cache needs to stay coherent.
        """
        with self._lock:
            return self.lookup(name), self.version

    def names(self):
        return sorted(self._relations)

    def __contains__(self, name):
        return name.lower() in self._relations


def decoded_dimension_column(encoder, codes):
    """Decode one dictionary-encoded column as an object Column.

    One NumPy gather through the dictionary's value array; ``None``
    dimension values surface as SQL NULLs via the validity mask.
    """
    domain = np.empty(len(encoder), dtype=object)
    domain[:] = encoder.values()
    values = domain[np.asarray(codes, dtype=np.int64)]
    if any(v is None for v in encoder.values()):
        valid = np.fromiter(
            (v is not None for v in values), dtype=bool, count=len(values)
        )
        return Column(values, valid)
    return Column(values)
