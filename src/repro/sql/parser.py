"""Recursive-descent parser producing :mod:`repro.sql.ast` trees.

Grammar (informal):

    select    := SELECT [DISTINCT|ALL] items FROM source
                 [WHERE expr] [GROUP BY grouping] [HAVING expr]
                 [ORDER BY order_items] [LIMIT n [OFFSET n]]
    source    := table_ref ([INNER|CROSS] JOIN table_ref [ON expr])*
    grouping  := CUBE '(' exprs ')' | ROLLUP '(' exprs ')'
               | GROUPING SETS '(' '(' exprs ')' (',' '(' exprs ')')* ')'
               | exprs
    expr      := or_expr with standard precedence:
                 OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE
                 < add/sub/|| < mul/div/mod < unary minus < atoms

Operator precedence follows PostgreSQL.  The parser is deliberately
strict: trailing tokens after a complete statement are an error.
"""

from repro.sql import ast
from repro.sql.errors import SqlSyntaxError
from repro.sql.tokens import tokenize

#: Comparison operators at the comparison precedence level.
COMPARISON_OPS = frozenset(["=", "<>", "!=", "<", "<=", ">", ">="])


def parse(text):
    """Parse one SELECT statement; raises SqlSyntaxError on bad input."""
    parser = _Parser(tokenize(text))
    select = parser.parse_select()
    parser.expect_end()
    return select


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token stream helpers
    # ------------------------------------------------------------------

    def _peek(self):
        return self._tokens[self._pos]

    def _advance(self):
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _accept(self, kind, value=None):
        if self._peek().matches(kind, value):
            return self._advance()
        return None

    def _expect(self, kind, value=None):
        token = self._peek()
        if not token.matches(kind, value):
            wanted = value if value is not None else kind
            raise SqlSyntaxError(
                "expected %s but found %r" % (wanted, token.value),
                position=token.position,
            )
        return self._advance()

    def expect_end(self):
        self._accept("OP", ";")
        token = self._peek()
        if token.kind != "EOF":
            raise SqlSyntaxError(
                "unexpected trailing input %r" % token.value,
                position=token.position,
            )

    # ------------------------------------------------------------------
    # Statement
    # ------------------------------------------------------------------

    def parse_select(self):
        self._expect("KEYWORD", "SELECT")
        distinct = False
        if self._accept("KEYWORD", "DISTINCT"):
            distinct = True
        else:
            self._accept("KEYWORD", "ALL")
        items = self._parse_select_items()
        self._expect("KEYWORD", "FROM")
        source = self._parse_source()
        where = None
        if self._accept("KEYWORD", "WHERE"):
            where = self.parse_expr()
        group = None
        if self._accept("KEYWORD", "GROUP"):
            self._expect("KEYWORD", "BY")
            group = self._parse_grouping()
        having = None
        if self._accept("KEYWORD", "HAVING"):
            having = self.parse_expr()
        order = None
        if self._accept("KEYWORD", "ORDER"):
            self._expect("KEYWORD", "BY")
            order = self._parse_order_items()
        limit = offset = None
        if self._accept("KEYWORD", "LIMIT"):
            limit = self._parse_nonnegative_int("LIMIT")
            if self._accept("KEYWORD", "OFFSET"):
                offset = self._parse_nonnegative_int("OFFSET")
        return ast.Select(
            items=items,
            source=source,
            where=where,
            group=group,
            having=having,
            order=order,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_nonnegative_int(self, clause):
        token = self._expect("NUMBER")
        if not isinstance(token.value, int) or token.value < 0:
            raise SqlSyntaxError(
                "%s requires a non-negative integer" % clause,
                position=token.position,
            )
        return token.value

    # ------------------------------------------------------------------
    # Select list / FROM
    # ------------------------------------------------------------------

    def _parse_select_items(self):
        items = [self._parse_select_item()]
        while self._accept("OP", ","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self):
        if self._accept("OP", "*"):
            return ast.SelectItem(ast.Star())
        expr = self.parse_expr()
        alias = None
        if self._accept("KEYWORD", "AS"):
            alias = self._expect_name()
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _expect_name(self):
        token = self._peek()
        if token.kind == "IDENT":
            return self._advance().value
        raise SqlSyntaxError(
            "expected a name but found %r" % token.value, position=token.position
        )

    def _parse_source(self):
        left = self._parse_table_ref()
        while True:
            if self._accept("KEYWORD", "CROSS"):
                self._expect("KEYWORD", "JOIN")
                right = self._parse_table_ref()
                left = ast.Join(left, right, condition=None)
                continue
            if self._peek().matches("KEYWORD", "INNER") or self._peek().matches(
                "KEYWORD", "JOIN"
            ):
                self._accept("KEYWORD", "INNER")
                self._expect("KEYWORD", "JOIN")
                right = self._parse_table_ref()
                self._expect("KEYWORD", "ON")
                condition = self.parse_expr()
                left = ast.Join(left, right, condition)
                continue
            return left

    def _parse_table_ref(self):
        name = self._expect_name()
        alias = None
        if self._accept("KEYWORD", "AS"):
            alias = self._expect_name()
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return ast.TableRef(name, alias)

    # ------------------------------------------------------------------
    # GROUP BY
    # ------------------------------------------------------------------

    def _parse_grouping(self):
        if self._accept("KEYWORD", "CUBE"):
            exprs = self._parse_paren_expr_list()
            return ast.GroupingSpec("cube", exprs)
        if self._accept("KEYWORD", "ROLLUP"):
            exprs = self._parse_paren_expr_list()
            return ast.GroupingSpec("rollup", exprs)
        if self._accept("KEYWORD", "GROUPING"):
            self._expect("KEYWORD", "SETS")
            self._expect("OP", "(")
            sets = [self._parse_grouping_set()]
            while self._accept("OP", ","):
                sets.append(self._parse_grouping_set())
            self._expect("OP", ")")
            union = []
            for group_set in sets:
                for expr in group_set:
                    if expr not in union:
                        union.append(expr)
            return ast.GroupingSpec("sets", union, sets=sets)
        exprs = [self.parse_expr()]
        while self._accept("OP", ","):
            exprs.append(self.parse_expr())
        return ast.GroupingSpec("plain", exprs)

    def _parse_grouping_set(self):
        self._expect("OP", "(")
        if self._accept("OP", ")"):
            return []
        exprs = [self.parse_expr()]
        while self._accept("OP", ","):
            exprs.append(self.parse_expr())
        self._expect("OP", ")")
        return exprs

    def _parse_paren_expr_list(self):
        self._expect("OP", "(")
        exprs = [self.parse_expr()]
        while self._accept("OP", ","):
            exprs.append(self.parse_expr())
        self._expect("OP", ")")
        return exprs

    def _parse_order_items(self):
        items = [self._parse_order_item()]
        while self._accept("OP", ","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self):
        expr = self.parse_expr()
        ascending = True
        if self._accept("KEYWORD", "DESC"):
            ascending = False
        else:
            self._accept("KEYWORD", "ASC")
        return ast.OrderItem(expr, ascending)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def parse_expr(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self._accept("KEYWORD", "OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self._accept("KEYWORD", "AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self):
        if self._accept("KEYWORD", "NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "OP" and token.value in COMPARISON_OPS:
            op = self._advance().value
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._parse_additive())
        negated = False
        if self._peek().matches("KEYWORD", "NOT"):
            following = self._tokens[self._pos + 1]
            if following.kind == "KEYWORD" and following.value in (
                "IN",
                "BETWEEN",
                "LIKE",
            ):
                self._advance()
                negated = True
        if self._accept("KEYWORD", "IS"):
            is_negated = bool(self._accept("KEYWORD", "NOT"))
            self._expect("KEYWORD", "NULL")
            return ast.IsNull(left, negated=is_negated)
        if self._accept("KEYWORD", "IN"):
            items = self._parse_paren_expr_list()
            return ast.InList(left, items, negated=negated)
        if self._accept("KEYWORD", "BETWEEN"):
            low = self._parse_additive()
            self._expect("KEYWORD", "AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated=negated)
        if self._accept("KEYWORD", "LIKE"):
            pattern = self._parse_additive()
            node = ast.FunctionCall("LIKE", [left, pattern])
            return ast.UnaryOp("NOT", node) if negated else node
        if negated:
            raise SqlSyntaxError(
                "NOT must be followed by IN, BETWEEN or LIKE here",
                position=token.position,
            )
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.matches("OP", "+") or token.matches("OP", "-") or token.matches(
                "OP", "||"
            ):
                op = self._advance().value
                left = ast.BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "OP" and token.value in ("*", "/", "%"):
                op = self._advance().value
                left = ast.BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self):
        if self._accept("OP", "-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._accept("OP", "+"):
            return self._parse_unary()
        return self._parse_atom()

    def _parse_atom(self):
        token = self._peek()
        if token.kind == "NUMBER" or token.kind == "STRING":
            self._advance()
            return ast.Literal(token.value)
        if token.matches("KEYWORD", "NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches("KEYWORD", "TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches("KEYWORD", "FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.matches("KEYWORD", "CASE"):
            return self._parse_case()
        if token.matches("KEYWORD", "CAST"):
            return self._parse_cast()
        if token.matches("KEYWORD", "GROUPING"):
            # GROUPING(col) aggregate-context function, standard SQL.
            self._advance()
            args = self._parse_paren_expr_list()
            return ast.FunctionCall("GROUPING", args)
        if token.matches("OP", "("):
            self._advance()
            expr = self.parse_expr()
            self._expect("OP", ")")
            return expr
        if token.kind == "IDENT":
            return self._parse_identifier_expression()
        raise SqlSyntaxError(
            "unexpected token %r" % token.value, position=token.position
        )

    def _parse_identifier_expression(self):
        name = self._advance().value
        if self._accept("OP", "("):
            return self._finish_function_call(name)
        if self._accept("OP", "."):
            if self._accept("OP", "*"):
                return ast.Star(table=name)
            column = self._expect_name()
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

    def _finish_function_call(self, name):
        if self._accept("OP", "*"):
            self._expect("OP", ")")
            return ast.FunctionCall(name, [ast.Star()])
        distinct = bool(self._accept("KEYWORD", "DISTINCT"))
        if self._accept("OP", ")"):
            return ast.FunctionCall(name, [], distinct=distinct)
        args = [self.parse_expr()]
        while self._accept("OP", ","):
            args.append(self.parse_expr())
        self._expect("OP", ")")
        return ast.FunctionCall(name, args, distinct=distinct)

    def _parse_case(self):
        self._expect("KEYWORD", "CASE")
        whens = []
        while self._accept("KEYWORD", "WHEN"):
            condition = self.parse_expr()
            self._expect("KEYWORD", "THEN")
            whens.append((condition, self.parse_expr()))
        if not whens:
            token = self._peek()
            raise SqlSyntaxError(
                "CASE requires at least one WHEN branch", position=token.position
            )
        default = None
        if self._accept("KEYWORD", "ELSE"):
            default = self.parse_expr()
        self._expect("KEYWORD", "END")
        return ast.Case(whens, default)

    def _parse_cast(self):
        self._expect("KEYWORD", "CAST")
        self._expect("OP", "(")
        operand = self.parse_expr()
        self._expect("KEYWORD", "AS")
        token = self._peek()
        if token.kind == "KEYWORD" and token.value in ("INTEGER", "FLOAT", "TEXT"):
            type_name = self._advance().value
        else:
            raise SqlSyntaxError(
                "unknown cast target %r" % token.value, position=token.position
            )
        self._expect("OP", ")")
        return ast.Cast(operand, type_name)
