"""A small SQL engine over :class:`repro.data.table.Table` relations.

The thesis evaluates SIRUM expressed as SQL on PostgreSQL (§2.6.1) and
as HiveQL on Hive (§2.6.2): candidate-rule generation is a data-cube
group-by and iterative scaling is a sequence of aggregate queries.  To
reproduce those comparisons faithfully this package implements the SQL
surface those platforms provide, end to end:

- :mod:`repro.sql.tokens` / :mod:`repro.sql.parser` — tokenizer and a
  recursive-descent parser for the dialect (SELECT with WHERE, GROUP BY
  including ``CUBE`` / ``GROUPING SETS``, HAVING, ORDER BY, LIMIT,
  inner JOIN, scalar and aggregate expressions);
- :mod:`repro.sql.planner` / :mod:`repro.sql.optimizer` — translation
  to a logical plan and rule-based rewrites (predicate pushdown,
  projection pruning, constant folding);
- :mod:`repro.sql.vectorized` — the default physical executor: every
  operator runs over NumPy column batches with NULLs as validity
  masks, metered per batch through the cluster cost model when run via
  a platform simulator;
- :mod:`repro.sql.executor` — the row-at-a-time reference interpreter
  (``SqlEngine(vectorized=False)``), which defines the semantics the
  vectorized path must reproduce exactly;
- :class:`repro.sql.engine.SqlEngine` — the facade, with a
  statement-level LRU plan cache and a ``prepare()`` /
  ``execute_prepared()`` API so repeated statements skip
  parse → plan → optimize.

``GROUP BY CUBE(A1, ..., Ad)`` computes exactly the candidate-rule
aggregates of thesis §3.1 — each output row is an element of the cube
lattice (§2.5) with wildcards surfaced as SQL NULLs.
"""

from repro.sql.engine import PreparedStatement, SqlEngine
from repro.sql.errors import SqlError
from repro.sql.parser import parse
from repro.sql.render import render
from repro.sql.result import ResultSet

__all__ = [
    "SqlEngine",
    "PreparedStatement",
    "SqlError",
    "ResultSet",
    "parse",
    "render",
]
