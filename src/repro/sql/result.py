"""Query result container."""

from repro.sql.errors import SqlError


class ResultSet:
    """Materialized query output: column names plus row tuples.

    Iterable and indexable like a list of rows; ``column(name)``
    extracts one column for convenience in tests and reports.
    """

    def __init__(self, columns, rows):
        self.columns = list(columns)
        self.rows = [tuple(row) for row in rows]

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    def column_index(self, name):
        lowered = name.lower()
        for i, column in enumerate(self.columns):
            if column.lower() == lowered:
                return i
        raise SqlError("result has no column %r" % name)

    def column(self, name):
        """All values of the named output column, in row order."""
        i = self.column_index(name)
        return [row[i] for row in self.rows]

    def scalar(self):
        """The single value of a 1x1 result; raises otherwise."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlError(
                "scalar() requires a 1x1 result, got %dx%d"
                % (len(self.rows), len(self.columns))
            )
        return self.rows[0][0]

    def to_dicts(self):
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, max_rows=20):
        """Fixed-width text rendering (for examples and the CLI)."""
        shown = self.rows[:max_rows]
        cells = [[_render(v) for v in row] for row in shown]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append("... (%d more rows)" % (len(self.rows) - max_rows))
        return "\n".join(lines)

    def __repr__(self):
        return "ResultSet(%d rows, columns=%r)" % (len(self.rows), self.columns)


def _render(value):
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return "%g" % value
    return str(value)
