"""Query result container.

A :class:`ResultSet` is constructed either from row tuples (the row
interpreter) or directly from a column batch (the vectorized executor,
via :meth:`ResultSet.from_batch`).  Batch-backed results keep the
columns and materialize row tuples only when ``rows`` is first touched,
so columnar consumers — ``column()``, ``column_array()``, ``len()`` —
never pay a per-row conversion.
"""

import numpy as np

from repro.sql.errors import SqlError


class ResultSet:
    """Materialized query output: column names plus row tuples.

    Iterable and indexable like a list of rows; ``column(name)``
    extracts one column for convenience in tests and reports.
    """

    def __init__(self, columns, rows):
        self.columns = list(columns)
        self._rows = [tuple(row) for row in rows]
        self._n = len(self._rows)
        self._batch = None

    @classmethod
    def from_batch(cls, columns, batch):
        """Wrap a :class:`~repro.sql.columns.Batch` without row conversion."""
        result = cls.__new__(cls)
        result.columns = list(columns)
        result._rows = None
        result._n = batch.n
        result._batch = batch
        return result

    @property
    def rows(self):
        """Row tuples (materialized from the batch on first access)."""
        if self._rows is None:
            self._rows = self._batch.to_rows()
        return self._rows

    def __len__(self):
        return self._n

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    def column_index(self, name):
        lowered = name.lower()
        for i, column in enumerate(self.columns):
            if column.lower() == lowered:
                return i
        raise SqlError("result has no column %r" % name)

    def column(self, name):
        """All values of the named output column, in row order."""
        i = self.column_index(name)
        if self._batch is not None:
            return self._batch.columns[i].to_pylist()
        return [row[i] for row in self.rows]

    def column_array(self, name):
        """The named column as a read-only NumPy array (no NULLs).

        Batch-backed results hand out a read-only *view* of the
        executor's array — zero-copy, but ``copy()`` it before writing
        (a scan's output may alias the registered table's storage).
        Raises :class:`SqlError` if the column contains NULLs (they
        have no array representation).
        """
        i = self.column_index(name)
        if self._batch is not None:
            col = self._batch.columns[i]
            if col.valid is not None and not col.valid.all():
                raise SqlError("column %r contains NULLs" % name)
            view = col.values.view()
            view.setflags(write=False)
            return view
        values = [row[i] for row in self.rows]
        if any(v is None for v in values):
            raise SqlError("column %r contains NULLs" % name)
        return np.asarray(values)

    def scalar(self):
        """The single value of a 1x1 result; raises otherwise."""
        if self._n != 1 or len(self.columns) != 1:
            raise SqlError(
                "scalar() requires a 1x1 result, got %dx%d"
                % (self._n, len(self.columns))
            )
        return self.rows[0][0]

    def to_dicts(self):
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, max_rows=20):
        """Fixed-width text rendering (for examples and the CLI)."""
        shown = self.rows[:max_rows]
        cells = [[_render(v) for v in row] for row in shown]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append("... (%d more rows)" % (len(self.rows) - max_rows))
        return "\n".join(lines)

    def __repr__(self):
        return "ResultSet(%d rows, columns=%r)" % (self._n, self.columns)


def _render(value):
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return "%g" % value
    return str(value)
