"""Columnar batch representation for the vectorized SQL executor.

A :class:`Column` is a NumPy value array plus an optional validity
mask: ``valid[i]`` is False where the SQL value is NULL.  ``valid`` of
``None`` means every lane is valid, which keeps the common no-NULL case
allocation-free.  Value dtypes are restricted to the four kinds the
engine distinguishes:

- ``float64`` — every non-NULL value is a Python/NumPy float;
- ``int64``   — every non-NULL value is an integer (never a bool);
- ``bool``    — every non-NULL value is a boolean;
- ``object``  — anything else, including mixed-type columns, so the
  row interpreter's per-value Python semantics are preserved exactly.

Invalid lanes hold an arbitrary placeholder (0 / False / None); every
operation in :mod:`repro.sql.vectorized` restricts itself to valid
lanes before touching values.
"""

import numpy as np


class Column:
    """One column of a batch: values plus an optional validity mask."""

    __slots__ = ("values", "valid")

    def __init__(self, values, valid=None):
        self.values = values
        self.valid = valid

    def __len__(self):
        return len(self.values)

    def take(self, indices):
        """Lanes at ``indices``, in that order (NumPy fancy indexing)."""
        valid = None if self.valid is None else self.valid[indices]
        return Column(self.values[indices], valid)

    def slice(self, start, stop):
        valid = None if self.valid is None else self.valid[start:stop]
        return Column(self.values[start:stop], valid)

    def validity(self):
        """The validity mask, materialized (all-True when ``valid`` is None)."""
        if self.valid is None:
            return np.ones(len(self.values), dtype=bool)
        return self.valid

    def to_pylist(self):
        """Python scalars with ``None`` at invalid lanes (row-engine types)."""
        out = self.values.tolist()
        if self.valid is not None:
            out = [v if ok else None for v, ok in zip(out, self.valid.tolist())]
        return out


class Batch:
    """An ordered set of equal-length columns plus an explicit row count.

    The row count is carried separately because a batch may legally have
    zero columns (e.g. ``SELECT 1 FROM t`` after projection pruning).
    """

    __slots__ = ("columns", "n")

    def __init__(self, columns, n):
        self.columns = list(columns)
        self.n = n

    def take(self, indices):
        return Batch([c.take(indices) for c in self.columns], len(indices))

    def to_rows(self):
        """Materialize the batch as a list of row tuples."""
        if not self.columns:
            return [() for _ in range(self.n)]
        return list(zip(*[c.to_pylist() for c in self.columns]))


def _is_float(v):
    return isinstance(v, (float, np.floating))


def _is_int(v):
    return isinstance(v, (int, np.integer)) and not isinstance(
        v, (bool, np.bool_)
    )


def _is_bool(v):
    return isinstance(v, (bool, np.bool_))


def column_from_values(values):
    """Build a :class:`Column` from a Python sequence (None = NULL).

    The narrowest of the four dtypes that represents every non-NULL
    value exactly is chosen; mixed int/float columns stay ``object`` so
    each value keeps its original Python type.
    """
    vals = list(values)
    n = len(vals)
    null = np.fromiter((v is None for v in vals), dtype=bool, count=n)
    any_null = bool(null.any())
    nonnull = [v for v in vals if v is not None]
    if nonnull and all(_is_float(v) for v in nonnull):
        arr = np.fromiter(
            (0.0 if v is None else v for v in vals), dtype=np.float64, count=n
        )
    elif nonnull and all(_is_int(v) for v in nonnull):
        try:
            arr = np.fromiter(
                (0 if v is None else v for v in vals), dtype=np.int64, count=n
            )
        except OverflowError:
            arr = _object_array(vals)
    elif nonnull and all(_is_bool(v) for v in nonnull):
        arr = np.fromiter(
            (False if v is None else bool(v) for v in vals),
            dtype=bool,
            count=n,
        )
    else:
        arr = _object_array(vals)
    return Column(arr, ~null if any_null else None)


def _object_array(vals):
    arr = np.empty(len(vals), dtype=object)
    arr[:] = vals
    return arr


def constant_column(value, n):
    """A column holding ``value`` in every lane."""
    if value is None:
        return Column(np.empty(n, dtype=object), np.zeros(n, dtype=bool))
    if _is_bool(value):
        return Column(np.full(n, bool(value), dtype=bool))
    if _is_int(value):
        try:
            return Column(np.full(n, value, dtype=np.int64))
        except OverflowError:
            pass
    elif _is_float(value):
        return Column(np.full(n, value, dtype=np.float64))
    arr = np.empty(n, dtype=object)
    arr[:] = [value] * n
    return Column(arr)


def as_column(data):
    """Coerce ``data`` (Column, ndarray, or sequence) into a Column.

    NumPy numeric/bool arrays are taken as fully-valid columns without
    copying; everything else goes through :func:`column_from_values`.
    """
    if isinstance(data, Column):
        return data
    if isinstance(data, np.ndarray) and data.ndim == 1:
        if data.dtype == np.float64 or data.dtype == np.int64 or data.dtype == bool:
            return Column(data)
        if data.dtype.kind == "f":
            return Column(data.astype(np.float64))
        if data.dtype.kind in "iu":
            if data.dtype.kind == "u" and len(data) and int(data.max()) > 2**63 - 1:
                # uint values beyond int64: widen to exact Python ints
                # rather than letting astype wrap silently.
                return column_from_values([int(v) for v in data.tolist()])
            return Column(data.astype(np.int64))
        if data.dtype == object:
            return column_from_values(data.tolist())
    return column_from_values(list(data))


def combined_validity(columns, n):
    """AND of the columns' validity masks; None when all lanes valid."""
    out = None
    for col in columns:
        if col.valid is None:
            continue
        out = col.valid.copy() if out is None else out
        out &= col.valid
    return out


def concat_columns(columns):
    """Concatenate columns, widening to object dtype on a mismatch."""
    dtypes = {c.values.dtype for c in columns}
    if len(dtypes) == 1:
        values = np.concatenate([c.values for c in columns])
    else:
        values = np.concatenate(
            [c.values.astype(object) for c in columns]
        )
    if all(c.valid is None for c in columns):
        return Column(values)
    valid = np.concatenate([c.validity() for c in columns])
    return Column(values, valid)


def scatter_columns(n, pieces):
    """Merge (indices, column) pieces into one column of ``n`` lanes.

    Lanes not covered by any piece are NULL.  Used by CASE evaluation,
    where each branch is evaluated only on the lanes it owns.
    """
    dtypes = {p[1].values.dtype for p in pieces if len(p[0])}
    if len(dtypes) == 1:
        values = np.zeros(n, dtype=dtypes.pop())
        if values.dtype == object:
            values[:] = None
    else:
        values = np.empty(n, dtype=object)
        values[:] = None
    valid = np.zeros(n, dtype=bool)
    for indices, col in pieces:
        if not len(indices):
            continue
        if values.dtype == object and col.values.dtype != object:
            values[indices] = col.values.astype(object)
        else:
            values[indices] = col.values
        valid[indices] = col.validity()
    return Column(values, valid)
