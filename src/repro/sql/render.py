"""AST -> SQL text rendering.

Renders a parsed :class:`~repro.sql.ast.Select` back to SQL the parser
accepts, with ``parse(render(parse(q)))`` structurally equal to
``parse(q)`` (the round-trip property the test suite checks).  Used by
EXPLAIN-style tooling and as a fuzzing oracle for the parser.
"""

from repro.sql import ast
from repro.sql.errors import SqlError

#: Binding strengths for parenthesization, loosest to tightest.
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "NOT": 3,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6, "%": 6,
}


def render(select):
    """Render a Select AST to SQL text."""
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_item(item) for item in select.items))
    parts.append("FROM")
    parts.append(_render_source(select.source))
    if select.where is not None:
        parts.append("WHERE " + render_expr(select.where))
    if select.group is not None:
        parts.append("GROUP BY " + _render_grouping(select.group))
    if select.having is not None:
        parts.append("HAVING " + render_expr(select.having))
    if select.order:
        parts.append(
            "ORDER BY "
            + ", ".join(
                render_expr(item.expr) + ("" if item.ascending else " DESC")
                for item in select.order
            )
        )
    if select.limit is not None:
        parts.append("LIMIT %d" % select.limit)
    if select.offset is not None:
        if select.limit is None:
            # The grammar requires LIMIT before OFFSET.
            parts.append("LIMIT %d OFFSET %d" % (2**62, select.offset))
        else:
            parts.append("OFFSET %d" % select.offset)
    return " ".join(parts)


def _render_item(item):
    if isinstance(item.expr, ast.Star):
        return _render_star(item.expr)
    text = render_expr(item.expr)
    if item.alias:
        text += " AS %s" % _ident(item.alias)
    return text


def _render_star(star):
    return "%s.*" % _ident(star.table) if star.table else "*"


def _render_source(source):
    if isinstance(source, ast.TableRef):
        text = _ident(source.name)
        if source.alias:
            text += " AS %s" % _ident(source.alias)
        return text
    if isinstance(source, ast.Join):
        left = _render_source(source.left)
        right = _render_source(source.right)
        if source.condition is None:
            return "%s CROSS JOIN %s" % (left, right)
        return "%s JOIN %s ON %s" % (
            left,
            right,
            render_expr(source.condition),
        )
    raise SqlError("cannot render source %r" % (source,))


def _render_grouping(group):
    exprs = ", ".join(render_expr(e) for e in group.exprs)
    if group.mode == "plain":
        return exprs
    if group.mode == "cube":
        return "CUBE (%s)" % exprs
    if group.mode == "rollup":
        return "ROLLUP (%s)" % exprs
    if group.mode == "sets":
        rendered_sets = ", ".join(
            "(%s)" % ", ".join(render_expr(e) for e in group_set)
            for group_set in group.sets
        )
        return "GROUPING SETS (%s)" % rendered_sets
    raise SqlError("unknown grouping mode %r" % group.mode)


def render_expr(expr, parent_strength=0):
    """Render one expression, parenthesizing when binding requires it."""
    text, strength = _render_with_strength(expr)
    if strength < parent_strength:
        return "(%s)" % text
    return text


def _render_with_strength(expr):
    if isinstance(expr, ast.Literal):
        return _literal(expr.value), 9
    if isinstance(expr, ast.ColumnRef):
        if expr.table:
            return "%s.%s" % (_ident(expr.table), _ident(expr.name)), 9
        return _ident(expr.name), 9
    if isinstance(expr, ast.Star):
        return _render_star(expr), 9
    if isinstance(expr, ast.BinaryOp):
        strength = _PRECEDENCE[expr.op]
        # The comparison level (4) is non-associative in the grammar, so
        # equal-strength children need parens on BOTH sides; other
        # levels are left-associative, so only the right side does.
        left_strength = strength + 1 if strength == 4 else strength
        left = render_expr(expr.left, left_strength)
        right = render_expr(expr.right, strength + 1)
        return "%s %s %s" % (left, expr.op, right), strength
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return "NOT %s" % render_expr(expr.operand, 4), 3
        # Parenthesize any non-atomic operand: "--x" would lex as a
        # line comment, so nested negation must render as "-(-x)".
        return "-%s" % render_expr(expr.operand, 8), 7
    if isinstance(expr, ast.FunctionCall):
        if expr.name == "LIKE":
            left = render_expr(expr.args[0], 5)
            right = render_expr(expr.args[1], 5)
            return "%s LIKE %s" % (left, right), 4
        inner = ", ".join(render_expr(a) for a in expr.args)
        if expr.distinct:
            inner = "DISTINCT " + inner
        if expr.args and isinstance(expr.args[0], ast.Star):
            inner = "*"
        return "%s(%s)" % (expr.name, inner), 9
    if isinstance(expr, ast.IsNull):
        operand = render_expr(expr.operand, 5)
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return "%s %s" % (operand, middle), 4
    if isinstance(expr, ast.InList):
        operand = render_expr(expr.operand, 5)
        items = ", ".join(render_expr(i) for i in expr.items)
        keyword = "NOT IN" if expr.negated else "IN"
        return "%s %s (%s)" % (operand, keyword, items), 4
    if isinstance(expr, ast.Between):
        operand = render_expr(expr.operand, 5)
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return "%s %s %s AND %s" % (
            operand,
            keyword,
            render_expr(expr.low, 5),
            render_expr(expr.high, 5),
        ), 4
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        for condition, result in expr.whens:
            parts.append(
                "WHEN %s THEN %s"
                % (render_expr(condition), render_expr(result))
            )
        if expr.default is not None:
            parts.append("ELSE %s" % render_expr(expr.default))
        parts.append("END")
        return " ".join(parts), 9
    if isinstance(expr, ast.Cast):
        return "CAST(%s AS %s)" % (
            render_expr(expr.operand),
            expr.type_name,
        ), 9
    raise SqlError("cannot render expression %r" % (expr,))


def _literal(value):
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        return "'%s'" % value.replace("'", "''")
    return repr(value)


def _ident(name):
    if name.isidentifier() and not name.startswith("__"):
        from repro.sql.tokens import KEYWORDS

        if name.upper() not in KEYWORDS:
            return name
    return '"%s"' % name
