"""Rule Coverage Table — thesis §4.1, Algorithm 3.

Tuples matching exactly the same subset of rules share the same
estimate (the product of those rules' multipliers).  The RCT groups
tuples by their rule-coverage *bit array* and keeps, per group:
count, SUM(t[m]) and SUM(t[m-hat]).  Iterative scaling then runs over
the RCT's handful of rows instead of over D, so D is accessed only
twice in total: once to build/refresh the RCT and once to write the
converged estimates back.

Bit arrays are stored as a dense (n x words) uint64 matrix so adding a
rule and grouping stay vectorized for rule sets of any size (the thesis
caps |R| at ~50 for interpretability; multi-rule *-variants can exceed
64, hence multiple words).
"""

import numpy as np

from repro.common.errors import ConvergenceError, DataError
from repro.core.scaling import DEFAULT_EPSILON, DEFAULT_MAX_ITERATIONS

_WORD_BITS = 64


class BitMatrix:
    """Per-tuple rule-coverage bit arrays (rows = tuples)."""

    def __init__(self, num_rows):
        self.num_rows = num_rows
        self.num_rules = 0
        self._words = np.zeros((num_rows, 1), dtype=np.uint64)

    def add_rule(self, mask):
        """Append rule bit ``num_rules`` set for tuples where ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size != self.num_rows:
            raise DataError("mask length mismatch")
        word, bit = divmod(self.num_rules, _WORD_BITS)
        if word >= self._words.shape[1]:
            self._words = np.hstack(
                [self._words, np.zeros((self.num_rows, 1), dtype=np.uint64)]
            )
        self._words[mask, word] |= np.uint64(1 << bit)
        self.num_rules += 1

    def covers(self, keys, rule_index):
        """Boolean array: does each key (word tuple row) cover the rule?"""
        word, bit = divmod(rule_index, _WORD_BITS)
        return (keys[:, word] & np.uint64(1 << bit)) != 0

    def group_rows(self):
        """Unique coverage patterns and each tuple's pattern index.

        Returns ``(keys, inverse)`` where ``keys`` is a (g x words)
        array of distinct bit patterns and ``inverse`` maps each tuple
        to its row in ``keys``.
        """
        keys, inverse = np.unique(self._words, axis=0, return_inverse=True)
        return keys, inverse.ravel()


class RuleCoverageTable:
    """The grouped table: one row per distinct coverage pattern."""

    def __init__(self, keys, counts, sum_m, sum_mhat, inverse):
        self.keys = keys
        self.counts = counts.astype(np.float64)
        self.sum_m = sum_m
        self.sum_mhat = sum_mhat
        self._inverse = inverse

    @classmethod
    def build(cls, bit_matrix, measure, estimates):
        """Group D by coverage pattern (Algorithm 3 line 6)."""
        measure = np.asarray(measure, dtype=np.float64)
        estimates = np.asarray(estimates, dtype=np.float64)
        if measure.size != bit_matrix.num_rows:
            raise DataError("measure length mismatch")
        if estimates.size != bit_matrix.num_rows:
            raise DataError("estimates length mismatch")
        keys, inverse = bit_matrix.group_rows()
        g = keys.shape[0]
        counts = np.bincount(inverse, minlength=g)
        sum_m = np.bincount(inverse, weights=measure, minlength=g)
        sum_mhat = np.bincount(inverse, weights=estimates, minlength=g)
        return cls(keys, counts, sum_m, sum_mhat, inverse)

    @property
    def num_groups(self):
        return self.keys.shape[0]

    def coverage_mask(self, bit_matrix, rule_index):
        """Rows of the RCT covering rule ``rule_index``."""
        return bit_matrix.covers(self.keys, rule_index)

    def tuple_estimates(self, group_estimate_means):
        """Expand per-group mean estimates back to per-tuple estimates."""
        return group_estimate_means[self._inverse]

    def estimated_bytes(self):
        """Size of the RCT if broadcast (thesis notes it is tiny)."""
        return int(
            self.keys.nbytes
            + self.counts.nbytes
            + self.sum_m.nbytes
            + self.sum_mhat.nbytes
        )


class RctScalingResult:
    """Outcome of RCT-based iterative scaling."""

    def __init__(self, lambdas, estimates, iterations, rct):
        self.lambdas = lambdas
        self.estimates = estimates
        self.iterations = iterations
        self.rct = rct
        #: The RCT needs exactly two passes over D regardless of the
        #: number of scaling iterations (build + write-back).
        self.data_passes = 2


def iterative_scale_rct(
    bit_matrix,
    measure,
    estimates,
    lambdas,
    epsilon=DEFAULT_EPSILON,
    max_iterations=DEFAULT_MAX_ITERATIONS,
):
    """Run Algorithm 3: iterative scaling against the RCT.

    Parameters mirror :func:`repro.core.scaling.iterative_scale` but the
    per-loop work is proportional to the number of distinct coverage
    patterns, not |D|.  Returns an :class:`RctScalingResult` whose
    ``estimates`` equal the per-tuple fixpoint of Algorithm 1 (both
    converge to the same maximum-entropy solution; tests check this).
    """
    measure = np.asarray(measure, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    lam = np.asarray(lambdas, dtype=np.float64).copy()
    num_rules = bit_matrix.num_rules
    if lam.size != num_rules:
        raise DataError("one multiplier per rule is required")
    if epsilon <= 0:
        raise DataError("epsilon must be positive")

    rct = RuleCoverageTable.build(bit_matrix, measure, estimates)
    cover = np.stack(
        [rct.coverage_mask(bit_matrix, i) for i in range(num_rules)]
    )
    counts_per_rule = cover @ rct.counts
    if np.any(counts_per_rule == 0):
        raise DataError("every rule must cover at least one tuple")
    targets_per_rule = cover @ rct.sum_m
    target_means = targets_per_rule / counts_per_rule

    sum_mhat = rct.sum_mhat.copy()
    iterations = 0
    while True:
        if iterations >= max_iterations:
            raise ConvergenceError(
                "RCT scaling did not converge in %d iterations" % max_iterations
            )
        iterations += 1
        estimate_means = (cover @ sum_mhat) / counts_per_rule
        diffs = np.empty(num_rules)
        for i in range(num_rules):
            if target_means[i] != 0.0:
                diffs[i] = abs(target_means[i] - estimate_means[i]) / abs(
                    target_means[i]
                )
            else:
                diffs[i] = abs(estimate_means[i])
        next_rule = int(np.argmax(diffs))
        if diffs[next_rule] <= epsilon:
            break
        factor = target_means[next_rule] / estimate_means[next_rule]
        lam[next_rule] *= factor
        sum_mhat[cover[next_rule]] *= factor

    # Write the converged estimates back to the tuples: every tuple in a
    # group shares the group's mean estimate (Algorithm 3 lines 23-25).
    group_means = sum_mhat / rct.counts
    final_estimates = rct.tuple_estimates(group_means)
    rct.sum_mhat = sum_mhat
    return RctScalingResult(lam, final_estimates, iterations, rct)
