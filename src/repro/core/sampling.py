"""Sample-based candidate pruning: LCA computation — thesis §3.1.1, §4.2.

The gain formula has no downward-closure property, so the cube lattice
cannot be pruned apriori-style.  SIRUM instead draws a random sample s
from D and considers only rules in the cube lattices of s — exactly the
ancestors of the least common ancestors LCA(s, D).

This module computes, per data block, the aggregated LCA table:
a mapping  lca -> (SUM(m), SUM(m-hat), count)  over all (t, ts) pairs.
Two implementations exist with identical output:

- :func:`lca_aggregates_baseline` — compares every attribute of every
  (t, ts) pair (d comparisons per LCA);
- :func:`lca_aggregates_fast` — the §4.2 optimization: initialize LCAs
  to all-wildcards and use the sample's inverted index to touch only
  agreeing positions.

Both are vectorized via the packed-row codec (grouping by int64 key);
they differ in the *metered* operation counts, which is what separates
them on a cluster: the baseline charges |s| * d comparisons per data
tuple, the fast path d index lookups plus one write per agreement.
"""

import numpy as np

from repro.common.errors import DataError
from repro.core.codec import RowCodec, group_packed, group_rows_fallback
from repro.core.rule import WILDCARD


#: Per-pair base cost units of the s x D join: producing the joined
#: pair and materializing its LCA into the output, independent of how
#: the agreeing attributes are located.  Expressed in comparison units
#: so one pair costs PAIR_BASE_UNITS + (comparisons or lookups+writes).
#: Both pruning variants pay it; only the comparison term differs
#: (thesis §4.2 optimizes comparisons, not the join itself).
PAIR_BASE_UNITS = 8


def draw_sample_rows(table, size, rng):
    """Draw the pruning sample s, returned as encoded dimension tuples."""
    if len(table) == 0:
        raise DataError("cannot draw a sample from an empty table")
    if size <= 0:
        raise DataError("sample size must be positive")
    size = min(size, len(table))
    sample = table.sample(size, rng)
    return [sample.encoded_row(i) for i in range(len(sample))]


def _lca_groups_packed(columns, measure, estimates, sample, codec):
    """Vectorized LCA grouping over packed keys.

    Builds, for every (tuple, sample-row) pair, the packed LCA key in
    one vectorized sweep per attribute, then groups all |s| * n keys at
    once.  Returns ``(keys, aggs, agreements)`` where ``aggs`` is an
    (g, 3) array of (sum_m, sum_mhat, count) and ``agreements`` counts
    agreeing (tuple, sample, attribute) triples — the fast path's
    data-dependent work.
    """
    n = measure.size
    d = len(columns)
    s = sample.shape[0]
    agreements = 0
    packed = np.zeros((s, n), dtype=np.int64)
    for j in range(d):
        agree = columns[j][None, :] == sample[:, j][:, None]
        agreements += int(agree.sum())
        term = (columns[j].astype(np.int64) + 1) << codec.offsets[j]
        packed += np.where(agree, term[None, :], 0)
    keys = packed.ravel()
    weights = [
        np.tile(measure, s),
        np.tile(estimates, s),
        np.ones(n * s, dtype=np.float64),
    ]
    uniq, sums = group_packed(keys, weights)
    return uniq, np.stack(sums, axis=1), agreements


def _lca_groups(columns, measure, estimates, sample, codec):
    """Shared LCA grouping; returns (acc dict, agreements)."""
    n = measure.size
    d = len(columns)
    s = sample.shape[0]
    if codec is not None and codec.fits:
        uniq, aggs, agreements = _lca_groups_packed(
            columns, measure, estimates, sample, codec
        )
        rows = codec.unpack_batch(uniq)
        sum_m, sum_mhat, counts = aggs[:, 0], aggs[:, 1], aggs[:, 2]
    else:
        agreements = 0
        stacked = []
        for i in range(s):
            lca = np.empty((n, d), dtype=np.int64)
            for j in range(d):
                agree = columns[j] == sample[i, j]
                agreements += int(agree.sum())
                lca[:, j] = np.where(agree, columns[j], WILDCARD)
            stacked.append(lca)
        rows_all = np.vstack(stacked)
        weights = [
            np.tile(measure, s),
            np.tile(estimates, s),
            np.ones(n * s, dtype=np.float64),
        ]
        rows, (sum_m, sum_mhat, counts) = group_rows_fallback(rows_all, weights)
    acc = {}
    for row, sm, smh, c in zip(rows, sum_m, sum_mhat, counts):
        acc[tuple(int(v) for v in row)] = [float(sm), float(smh), float(c)]
    return acc, agreements


def lca_aggregates_packed(columns, measure, estimates, sample_rows, codec,
                          index=None, tc=None):
    """Packed-key LCA aggregation (the miner's hot path).

    Returns ``(keys, aggs)`` — distinct packed LCA keys and their
    (sum_m, sum_mhat, count) rows.  Metering matches
    :func:`lca_aggregates_baseline` when ``index`` is None and
    :func:`lca_aggregates_fast` when the inverted index is supplied.
    """
    if not codec.fits:
        raise DataError("packed LCA aggregation requires a fitting codec")
    sample = np.asarray(sample_rows, dtype=np.int64)
    keys, aggs, agreements = _lca_groups_packed(
        columns, measure, estimates, sample, codec
    )
    if tc is not None:
        pairs = measure.size * sample.shape[0]
        tc.add_ops(pairs * PAIR_BASE_UNITS)
        if index is None:
            tc.add_ops(pairs * len(columns))
        else:
            tc.add_ops(measure.size * len(columns) + agreements)
        tc.add_records(measure.size)
    return keys, aggs


def lca_aggregates_baseline(columns, measure, estimates, sample_rows,
                            tc=None, codec=None):
    """LCA(s, block) metered as attribute-by-attribute comparisons.

    Parameters
    ----------
    columns:
        The block's encoded dimension columns (list of int64 arrays).
    measure / estimates:
        The block's transformed measure and current estimates.
    sample_rows:
        Encoded sample tuples.
    tc:
        Optional :class:`TaskContext`; charged d comparisons per
        (tuple, sample) pair — the §3.1.1 cost of O(|s| * |D| * d).
    codec:
        Optional :class:`RowCodec` enabling packed grouping; built
        locally from the columns when omitted.

    Returns a dict: lca tuple -> [sum_m, sum_mhat, count].
    """
    codec = codec or _local_codec(columns)
    sample = np.asarray(sample_rows, dtype=np.int64)
    acc, _ = _lca_groups(columns, measure, estimates, sample, codec)
    if tc is not None:
        pairs = measure.size * sample.shape[0]
        tc.add_ops(pairs * PAIR_BASE_UNITS)
        tc.add_ops(pairs * len(columns))
        tc.add_records(measure.size)
    return acc


def lca_aggregates_fast(columns, measure, estimates, index, sample_rows,
                        tc=None, codec=None):
    """LCA(s, block) via the sample's inverted index (thesis §4.2).

    Produces exactly the same aggregates as the baseline but is metered
    at d index lookups per data tuple plus one operation per agreeing
    (tuple, sample, attribute) triple — fewer than |s| * d comparisons
    per tuple whenever values usually differ.  ``index`` is the
    :class:`~repro.core.index.SampleInvertedIndex` that locates the
    agreements.
    """
    if index is None:
        raise DataError("fast pruning requires the sample inverted index")
    codec = codec or _local_codec(columns)
    sample = np.asarray(sample_rows, dtype=np.int64)
    acc, agreements = _lca_groups(columns, measure, estimates, sample, codec)
    if tc is not None:
        pairs = measure.size * sample.shape[0]
        tc.add_ops(pairs * PAIR_BASE_UNITS)
        tc.add_ops(measure.size * len(columns) + agreements)
        tc.add_records(measure.size)
    return acc


def _local_codec(columns):
    """Codec inferred from the block's value ranges (tests convenience)."""
    cards = [int(col.max()) + 1 if col.size else 1 for col in columns]
    codec = RowCodec(cards)
    return codec if codec.fits else None


def merge_lca_aggregates(dicts):
    """Reduce-side merge of per-block LCA aggregate dicts."""
    merged = {}
    for acc in dicts:
        for key, agg in acc.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = list(agg)
            else:
                existing[0] += agg[0]
                existing[1] += agg[1]
                existing[2] += agg[2]
    return merged


def sample_match_counts(candidate_rows, sample_rows):
    """Number of sample tuples matched by each candidate rule.

    Used for the §3.1.1 correction: a data tuple contributed its
    aggregates to candidate r once per matching sample tuple, so r's
    aggregates must be divided by this count.  Vectorized over
    candidates in blocks.
    """
    sample = np.asarray(sample_rows, dtype=np.int64)
    counts = np.empty(len(candidate_rows), dtype=np.int64)
    block = 4096
    rules = np.asarray(candidate_rows, dtype=np.int64)
    for start in range(0, len(candidate_rows), block):
        chunk = rules[start:start + block]
        # match[c, s] = all_j (chunk[c, j] == * or chunk[c, j] == sample[s, j])
        wild = chunk[:, None, :] == WILDCARD
        equal = chunk[:, None, :] == sample[None, :, :]
        match = np.all(wild | equal, axis=2)
        counts[start:start + chunk.shape[0]] = match.sum(axis=1)
    return counts
