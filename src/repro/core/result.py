"""Mining results: rule sets with aggregates, traces and profiles."""

import numpy as np

from repro.core.rule import Rule


class MinedRule:
    """One selected rule with its dataset aggregates.

    ``avg_measure`` and ``count`` are in the *original* measure units —
    the AVG(measure) / COUNT(*) columns the thesis's example tables
    attach to rules (Table 1.2).
    """

    def __init__(self, rule, avg_measure, count, gain, iteration):
        self.rule = rule
        self.avg_measure = avg_measure
        self.count = count
        self.gain = gain
        self.iteration = iteration

    def decode(self, table):
        return self.rule.decode(table)

    def __repr__(self):
        return "MinedRule(%r, avg=%.4g, count=%d)" % (
            self.rule,
            self.avg_measure,
            self.count,
        )


class RuleSet:
    """Ordered list of mined rules (selection order)."""

    def __init__(self, mined_rules):
        self._rules = list(mined_rules)

    def __len__(self):
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def __getitem__(self, i):
        return self._rules[i]

    def rules(self):
        """The bare :class:`Rule` objects, in selection order."""
        return [mr.rule for mr in self._rules]

    def to_rows(self, table):
        """Decoded display rows: (values..., avg_measure, count)."""
        return [
            mr.decode(table) + (mr.avg_measure, mr.count) for mr in self._rules
        ]

    def to_markdown(self, table):
        """Render the rule set like thesis Table 1.2."""
        header = list(table.schema.dimensions) + [
            "AVG(%s)" % table.schema.measure,
            "count",
        ]
        lines = ["| " + " | ".join(header) + " |"]
        lines.append("|" + "---|" * len(header))
        for row in self.to_rows(table):
            cells = [str(v) for v in row[:-2]]
            cells.append("%.4g" % row[-2])
            cells.append(str(int(row[-1])))
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)


class MiningResult:
    """Everything a SIRUM run produces.

    Attributes
    ----------
    rule_set:
        The :class:`RuleSet`, root rule first.
    lambdas:
        Converged multipliers, aligned with ``rule_set``.
    estimates:
        Per-tuple maximum-entropy estimates of the measure, in original
        units (the m-hat columns of thesis Table 1.1).
    kl_trace:
        KL-divergence after each mining iteration (transformed space).
    information_gain:
        KL(root only) - KL(full rule set) — the §5.1 quality metric.
    metrics:
        The engine's :class:`MetricsRegistry` snapshot: simulated
        seconds total and per phase, plus counters.
    wall_seconds:
        Host wall-clock duration of the mine() call.
    scaling_iterations / ancestors_emitted / candidates_scored:
        Work counters used by the profiling benchmarks.
    """

    def __init__(
        self,
        rule_set,
        lambdas,
        estimates,
        kl_trace,
        information_gain,
        metrics,
        wall_seconds,
        scaling_iterations,
        ancestors_emitted,
        candidates_scored,
        config,
    ):
        self.rule_set = rule_set
        self.lambdas = np.asarray(lambdas, dtype=np.float64)
        self.estimates = estimates
        self.kl_trace = list(kl_trace)
        self.information_gain = information_gain
        self.metrics = metrics
        self.wall_seconds = wall_seconds
        self.scaling_iterations = scaling_iterations
        self.ancestors_emitted = ancestors_emitted
        self.candidates_scored = candidates_scored
        self.config = config

    @property
    def final_kl(self):
        return self.kl_trace[-1] if self.kl_trace else float("nan")

    @property
    def simulated_seconds(self):
        return self.metrics["simulated_seconds"]

    def phase_seconds(self, phase):
        return self.metrics["phase_seconds"].get(phase, 0.0)

    @property
    def rule_generation_seconds(self):
        """Simulated time in candidate pruning + ancestors + gain."""
        phases = ("candidate_pruning", "ancestor_generation", "gain")
        return sum(self.phase_seconds(p) for p in phases)

    @property
    def iterative_scaling_seconds(self):
        return self.phase_seconds("iterative_scaling")

    def summary(self):
        return (
            "MiningResult(rules=%d, kl=%.4g, info_gain=%.4g, "
            "simulated=%.3fs, wall=%.3fs)"
            % (
                len(self.rule_set),
                self.final_kl,
                self.information_gain,
                self.simulated_seconds,
                self.wall_seconds,
            )
        )

    def find_rule(self, values):
        """Locate a mined rule by its (possibly wildcarded) values."""
        target = Rule(values)
        for mined in self.rule_set:
            if mined.rule == target:
                return mined
        return None
