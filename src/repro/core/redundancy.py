"""Redundant-candidate elimination — thesis §7 (future work).

The thesis's conclusion sketches an optimization the authors were
investigating: *"if a rule has the same support set as one of its
descendants, it is unnecessary to evaluate it because its gain is the
same as its descendant's."*  Two rules in ancestor/descendant relation
have equal gain whenever they cover exactly the same tuples, and then
only one of them needs to be kept — we keep the **ancestor** (the more
general, more interpretable pattern) and drop the descendant.

Support-set equality between a rule and its parent is detected from the
aggregates the pipeline already computed: a descendant covers a subset
of each parent's support, so equal ``count`` (and, as a numeric
tie-break, equal ``sum_m``) implies the same support set.

Both candidate representations are supported: packed int64 keys and
:class:`Rule` lists.
"""

import numpy as np

from repro.core.rule import WILDCARD


def redundant_mask_packed(keys, counts, sums_m, codec):
    """Boolean mask of redundant packed candidates.

    A candidate is redundant iff some *parent* (one more wildcard) is
    also a candidate with the same count and measure sum — the parent
    then has an identical support set and identical gain.
    """
    keys = np.asarray(keys, dtype=np.int64)
    counts = np.asarray(counts)
    sums_m = np.asarray(sums_m)
    stats = {
        int(k): (float(c), float(s))
        for k, c, s in zip(keys, counts, sums_m)
    }
    masks = [
        ((1 << width) - 1) << offset
        for width, offset in zip(codec.widths, codec.offsets)
    ]
    redundant = np.zeros(keys.size, dtype=bool)
    for i, key in enumerate(keys):
        key = int(key)
        own = stats[key]
        for mask in masks:
            if key & mask == 0:
                continue  # already a wildcard at this position
            parent = key & ~mask
            parent_stats = stats.get(parent)
            if parent_stats is not None and _close(parent_stats, own):
                redundant[i] = True
                break
    return redundant


def redundant_mask_rules(rules, counts, sums_m):
    """Boolean mask of redundant :class:`Rule` candidates."""
    counts = np.asarray(counts)
    sums_m = np.asarray(sums_m)
    stats = {
        rule: (float(c), float(s))
        for rule, c, s in zip(rules, counts, sums_m)
    }
    redundant = np.zeros(len(rules), dtype=bool)
    for i, rule in enumerate(rules):
        own = stats[rule]
        for parent in rule.parents():
            parent_stats = stats.get(parent)
            if parent_stats is not None and _close(parent_stats, own):
                redundant[i] = True
                break
    return redundant


def _close(a, b):
    return a[0] == b[0] and abs(a[1] - b[1]) <= 1e-9 * (1.0 + abs(a[1]))


def filter_candidate_set(candidates):
    """Return a copy of ``candidates`` without redundant descendants.

    The surviving set contains, for every group of support-identical
    ancestor/descendant rules, the most general members; gains are
    unchanged for the survivors, so the selected rules' quality is
    unaffected (only duplicate-support specializations disappear).
    """
    from repro.core.candidates import CandidateSet

    if candidates.rules is not None:
        redundant = redundant_mask_rules(
            candidates.rules, candidates.counts, candidates.sums_m
        )
    else:
        redundant = redundant_mask_packed(
            candidates.keys, candidates.counts, candidates.sums_m,
            candidates.codec,
        )
    keep = ~redundant
    return CandidateSet(
        [r for r, k in zip(candidates.rules, keep) if k]
        if candidates.rules is not None else None,
        candidates.sums_m[keep],
        candidates.sums_mhat[keep],
        candidates.counts[keep],
        candidates.gains[keep],
        candidates.emitted_pairs,
        keys=candidates.keys[keep] if candidates.keys is not None else None,
        codec=candidates.codec,
    )
