"""Inverted index over the candidate-pruning sample — thesis §4.2.

Fast candidate pruning initializes every LCA to all-wildcards and uses
a per-attribute inverted index over the sample to locate only the
positions where a data tuple *agrees* with a sample tuple, replacing
those wildcards with constants.  The expected number of operations
drops from |s| * d comparisons per data tuple to d index lookups plus
one write per agreement (§4.2's analysis).
"""

import numpy as np

from repro.common.errors import DataError


class SampleInvertedIndex:
    """Per-attribute map from attribute code to matching sample rows."""

    def __init__(self, sample_rows, arity):
        """Build the index from encoded sample tuples.

        Parameters
        ----------
        sample_rows:
            Sequence of encoded dimension tuples (the sample ``s``).
        arity:
            Number of dimension attributes ``d``.
        """
        if not sample_rows:
            raise DataError("cannot index an empty sample")
        for row in sample_rows:
            if len(row) != arity:
                raise DataError("sample tuple arity mismatch")
        self.arity = arity
        self.num_sample_rows = len(sample_rows)
        self._postings = [dict() for _ in range(arity)]
        for sid, row in enumerate(sample_rows):
            for j, code in enumerate(row):
                self._postings[j].setdefault(int(code), []).append(sid)
        # Freeze postings as arrays for vectorized use.
        for j in range(arity):
            self._postings[j] = {
                code: np.asarray(ids, dtype=np.int64)
                for code, ids in self._postings[j].items()
            }

    def lookup(self, attribute, code):
        """Sample row ids whose ``attribute`` equals ``code``."""
        if not 0 <= attribute < self.arity:
            raise DataError("attribute index out of range")
        return self._postings[attribute].get(
            int(code), np.empty(0, dtype=np.int64)
        )

    def postings_sizes(self, attribute):
        """Map of code -> posting-list length for one attribute."""
        return {
            code: ids.size for code, ids in self._postings[attribute].items()
        }

    def estimated_bytes(self):
        """Broadcast size of the index (it ships with the sample)."""
        total = 0
        for postings in self._postings:
            for ids in postings.values():
                total += ids.nbytes + 16
        return total
