"""SIRUM core: informative rule mining under maximum entropy.

The public surface:

- :class:`~repro.core.rule.Rule` — the pattern algebra of thesis §2.1
  (matching, disjointness, LCA, ancestors);
- :class:`~repro.core.config.SirumConfig` and
  :class:`~repro.core.miner.Sirum` — the mining driver with every
  optimization of Chapter 4 behind a flag, plus the named variant
  presets of Table 4.2;
- :class:`~repro.core.result.MiningResult` /
  :class:`~repro.core.result.RuleSet` — rules with their aggregates and
  the per-phase profile;
- :mod:`~repro.core.divergence` — KL-divergence and information gain.
"""

from repro.core.rule import Rule, WILDCARD
from repro.core.config import SirumConfig
from repro.core.miner import Sirum, VARIANTS, mine
from repro.core.result import MiningResult, RuleSet
from repro.core.divergence import kl_divergence, information_gain

__all__ = [
    "Rule",
    "WILDCARD",
    "SirumConfig",
    "Sirum",
    "VARIANTS",
    "mine",
    "MiningResult",
    "RuleSet",
    "kl_divergence",
    "information_gain",
]
