"""Multi-measure informative rule mining — thesis §7 (future work).

The thesis's conclusion proposes studying "the correlation among
multiple measure attributes as a function of the dimension attributes".
This module implements that extension: one shared rule list is mined to
be jointly informative about *several* measure columns.

Formulation: each measure m_i gets its own maximum-entropy estimate
(its own multipliers over the shared rules, its own preconditioning
transform), and a candidate rule's joint gain is the sum of its Eq. 2.2
gains per measure, each normalized by the measure's total so that
differently-scaled measures contribute comparably:

    joint_gain(r) = sum_i gain_i(r) / sum(m_i)

A rule that is informative for *any* of the measures (or moderately
informative for several) therefore wins over rules that only help one
slightly — exactly the "where do these measures co-vary with the
dimensions" question the thesis poses.

This is a centralized reference implementation over coverage masks (the
distributed optimizations of Chapter 4 apply orthogonally and are kept
out for clarity).
"""

import numpy as np

from repro.common.errors import ConfigError, DataError
from repro.common.rng import make_rng
from repro.core.candidates import generate_from_lcas
from repro.core.divergence import kl_divergence
from repro.core.measure import MeasureTransform
from repro.core.rule import Rule
from repro.core.sampling import draw_sample_rows, lca_aggregates_baseline
from repro.core.scaling import iterative_scale


class MeasureState:
    """Per-measure mining state: transform, multipliers, estimates."""

    def __init__(self, name, raw):
        self.name = name
        self.transform = MeasureTransform.fit(raw)
        self.measure = self.transform.transformed
        self.total = float(self.measure.sum())
        if self.total <= 0:
            raise DataError("measure %r has a non-positive total" % name)
        self.lambdas = None
        self.estimates = np.ones(self.measure.size)

    def rescale(self, masks, epsilon, max_iterations):
        result = iterative_scale(
            masks,
            self.measure,
            lambdas=self.lambdas,
            estimates=self.estimates,
            epsilon=epsilon,
            max_iterations=max_iterations,
        )
        self.lambdas = result.lambdas
        self.estimates = result.estimates
        return result.iterations

    def kl(self):
        return kl_divergence(self.measure, self.estimates)


class MultiMeasureResult:
    """Shared rules plus per-measure estimates and divergence traces."""

    def __init__(self, rules, states, kl_traces):
        self.rules = rules
        self._states = {state.name: state for state in states}
        self.kl_traces = kl_traces

    @property
    def measure_names(self):
        return list(self._states)

    def estimates(self, name):
        """Per-tuple estimates of measure ``name``, original units."""
        state = self._states[name]
        return state.transform.inverse(state.estimates)

    def final_kl(self, name):
        return self.kl_traces[name][-1]

    def information_gain(self, name):
        trace = self.kl_traces[name]
        return trace[0] - trace[-1]


class MultiMeasureSirum:
    """Greedy miner for a rule list shared across several measures.

    Parameters mirror the single-measure miner where applicable.
    """

    def __init__(self, k=10, sample_size=64, epsilon=0.01,
                 max_scaling_iterations=10_000, seed=0):
        if k < 1:
            raise ConfigError("k must be at least 1")
        if sample_size < 1:
            raise ConfigError("sample_size must be at least 1")
        self.k = k
        self.sample_size = sample_size
        self.epsilon = epsilon
        self.max_scaling_iterations = max_scaling_iterations
        self.seed = seed

    def mine(self, table, extra_measures=None):
        """Mine a shared rule list for the table's measure plus extras.

        Parameters
        ----------
        table:
            The input table; its measure column is always included.
        extra_measures:
            Mapping of name -> numeric array (len(table)) of additional
            measure columns.
        """
        extra_measures = dict(extra_measures or {})
        states = [MeasureState(table.schema.measure, table.measure)]
        for name, raw in extra_measures.items():
            raw = np.asarray(raw, dtype=np.float64)
            if raw.size != len(table):
                raise DataError(
                    "measure %r has %d values for %d rows"
                    % (name, raw.size, len(table))
                )
            states.append(MeasureState(name, raw))
        if len({s.name for s in states}) != len(states):
            raise DataError("measure names must be unique")

        rng = make_rng(self.seed)
        sample_rows = draw_sample_rows(table, self.sample_size, rng)
        columns = table.dimension_columns()

        rules = [Rule.all_wildcards(table.schema.arity)]
        masks = [np.ones(len(table), dtype=bool)]
        kl_traces = {s.name: [] for s in states}
        self._rescale_all(states, masks)
        for state in states:
            kl_traces[state.name].append(state.kl())

        while len(rules) - 1 < self.k:
            picked = self._best_candidate(
                states, columns, sample_rows, rules
            )
            if picked is None:
                break
            rules.append(picked)
            masks.append(picked.match_mask(table))
            self._rescale_all(states, masks)
            for state in states:
                kl_traces[state.name].append(state.kl())
        return MultiMeasureResult(rules, states, kl_traces)

    def _rescale_all(self, states, masks):
        for state in states:
            if state.lambdas is not None and state.lambdas.size < len(masks):
                state.lambdas = np.concatenate(
                    [state.lambdas,
                     np.ones(len(masks) - state.lambdas.size)]
                )
            state.rescale(masks, self.epsilon, self.max_scaling_iterations)

    def _best_candidate(self, states, columns, sample_rows, rules):
        """Rank candidates by total-normalized joint gain."""
        joint = {}
        for state in states:
            lcas = lca_aggregates_baseline(
                columns, state.measure, state.estimates, sample_rows
            )
            candidates = generate_from_lcas(lcas, sample_rows)
            for rule, gain in zip(candidates.rules, candidates.gains):
                joint[rule] = joint.get(rule, 0.0) + max(gain, 0.0) / state.total
        existing = set(rules)
        best_rule = None
        best_gain = 0.0
        for rule, gain in joint.items():
            if rule in existing:
                continue
            if gain > best_gain:
                best_rule = rule
                best_gain = gain
        return best_rule
