"""Vectorized ancestor generation over packed rule keys.

Semantically identical to :mod:`repro.core.lattice` (same candidate
rules, same aggregates, same emission counts), but operates on int64
packed keys instead of :class:`Rule` objects: rules are grouped by
their bound-attribute *pattern*, and wildcarding a subset of bound
attributes becomes one vectorized bitwise-AND over the whole pattern
group.  This is what makes d = 18 workloads (SUSY, thesis §5.4)
tractable in pure Python — the work is still exponential in the number
of bound attributes, but it runs at numpy speed.

``tests/core/test_lattice_packed.py`` checks exact equivalence against
the object-based reference implementation.
"""

import numpy as np

from repro.common.errors import DataError
from repro.core.codec import group_packed


def _field_masks(codec):
    return [
        ((1 << width) - 1) << offset
        for width, offset in zip(codec.widths, codec.offsets)
    ]


def generate_ancestors_packed(keys, aggs, codec, group=None,
                              instance_weighted=False):
    """One ancestor-generation round over packed keys.

    Parameters
    ----------
    keys:
        int64 array of distinct packed rule keys (wildcard = zero
        field, as produced by :class:`~repro.core.codec.RowCodec`).
    aggs:
        (n, 3) float array of (sum_m, sum_mhat, count) per key.
    codec:
        The :class:`RowCodec` the keys were packed with.
    group:
        Restrict new wildcards to these attribute positions (a §4.3
        column group); None allows every position (single-stage round).
    instance_weighted:
        Count emissions per pair instance (weight = count column), as
        the first round of the real pipeline does; otherwise one
        emission per input rule per generated ancestor.

    Returns
    -------
    (out_keys, out_aggs, emitted):
        Distinct ancestor keys, their merged aggregates, and the
        emission count under the requested weighting.
    """
    keys = np.asarray(keys, dtype=np.int64)
    aggs = np.asarray(aggs, dtype=np.float64)
    if aggs.shape != (keys.size, 3):
        raise DataError("aggs must be (len(keys), 3)")
    if keys.size == 0:
        return keys, aggs, 0
    masks = _field_masks(codec)
    positions = list(range(codec.arity)) if group is None else list(group)

    # Pattern id: bit i set iff positions[i] is bound in the key.
    patterns = np.zeros(keys.size, dtype=np.int64)
    for i, j in enumerate(positions):
        patterns |= ((keys & masks[j]) != 0).astype(np.int64) << i

    out_key_parts = []
    out_agg_parts = []
    emitted = 0
    for pattern in np.unique(patterns):
        sel = patterns == pattern
        group_keys = keys[sel]
        group_aggs = aggs[sel]
        bound = [
            positions[i]
            for i in range(len(positions))
            if (int(pattern) >> i) & 1
        ]
        subsets = 1 << len(bound)
        if instance_weighted:
            emitted += int(group_aggs[:, 2].sum()) * subsets
        else:
            emitted += group_keys.size * subsets
        # Clear-mask per subset of the bound positions, built in
        # len(bound) vectorized sweeps; then one outer AND produces
        # every ancestor of every rule in the pattern group at once.
        subset_ids = np.arange(subsets, dtype=np.int64)
        clear_masks = np.zeros(subsets, dtype=np.int64)
        for bit, j in enumerate(bound):
            clear_masks |= np.where(
                (subset_ids >> bit) & 1 == 1, np.int64(masks[j]), np.int64(0)
            )
        expanded = group_keys[:, None] & ~clear_masks[None, :]
        out_key_parts.append(expanded.ravel())
        out_agg_parts.append(np.repeat(group_aggs, subsets, axis=0))

    all_keys = np.concatenate(out_key_parts)
    all_aggs = np.concatenate(out_agg_parts)
    uniq, sums = group_packed(
        all_keys, [all_aggs[:, 0], all_aggs[:, 1], all_aggs[:, 2]]
    )
    return uniq, np.stack(sums, axis=1), emitted


def pack_rule_rows(rows, codec):
    """Pack an (n, d) matrix of codes/WILDCARD rows into int64 keys."""
    rows = np.asarray(rows, dtype=np.int64)
    keys = np.zeros(rows.shape[0], dtype=np.int64)
    for j in range(codec.arity):
        bound = rows[:, j] != -1
        keys += np.where(
            bound, (rows[:, j] + 1) << codec.offsets[j], 0
        ).astype(np.int64)
    return keys


def match_counts_packed(keys, sample_rows, codec):
    """Sample-match counts for packed candidate keys (§3.1.1 correction).

    Equivalent to :func:`repro.core.sampling.sample_match_counts` but
    works field-by-field on packed keys: candidate key field f matches
    sample value v iff f == 0 (wildcard) or f == v+1.
    """
    keys = np.asarray(keys, dtype=np.int64)
    sample = np.asarray(sample_rows, dtype=np.int64)
    masks = _field_masks(codec)
    counts = np.zeros(keys.size, dtype=np.int64)
    fields = [
        (keys >> codec.offsets[j]) & ((1 << codec.widths[j]) - 1)
        for j in range(codec.arity)
    ]
    for srow in sample:
        match = np.ones(keys.size, dtype=bool)
        for j in range(codec.arity):
            field = fields[j]
            match &= (field == 0) | (field == srow[j] + 1)
        counts += match
    return counts
