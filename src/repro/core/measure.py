"""Measure preconditioning for the maximum-entropy formulation.

Thesis §2.2: the max-ent optimization assumes t[m] >= 0 and a non-zero
total (with the all-wildcards rule selected first, any positive total C
works; normalization to 1 is unnecessary).  This module implements the
reduction transformations of §2.2 — shift negative measures, lift an
all-zero total — and their inverses, so mined estimates can be reported
in the measure's original units.
"""

import numpy as np

from repro.common.errors import DataError


class MeasureTransform:
    """Invertible preconditioning of a raw measure column.

    ``forward`` was already applied to produce :attr:`transformed`;
    :meth:`inverse` maps estimate arrays back to original units.
    """

    def __init__(self, shift, transformed):
        self.shift = shift
        self.transformed = transformed

    @classmethod
    def fit(cls, measure):
        """Precondition ``measure`` per the rules of thesis §2.2.

        1. If any value is negative, subtract the minimum M (M <= t[m]
           for all t), making all values non-negative.
        2. If the total is then zero (all zeros), add 1/|D| per tuple so
           the total is 1.
        """
        measure = np.asarray(measure, dtype=np.float64)
        if measure.size == 0:
            raise DataError("cannot transform an empty measure column")
        if not np.all(np.isfinite(measure)):
            raise DataError("measure column contains non-finite values")
        shift = 0.0
        minimum = float(measure.min())
        if minimum < 0:
            shift = -minimum
        transformed = measure + shift
        if transformed.sum() == 0:
            shift += 1.0 / measure.size
            transformed = transformed + 1.0 / measure.size
        return cls(shift, transformed)

    def inverse(self, estimates):
        """Map transformed-space estimates back to original units."""
        return np.asarray(estimates, dtype=np.float64) - self.shift

    @property
    def is_identity(self):
        return self.shift == 0.0
