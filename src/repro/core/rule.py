"""Rules: elements of (dom(A1) u {*}) x ... x (dom(Ad) u {*}).

Thesis §2.1.  A rule is a tuple over the dimension attributes where
each position holds either an encoded attribute value or the wildcard.
Wildcards are represented by the integer :data:`WILDCARD` (-1) so rules
stay homogeneous integer tuples — hashable dict keys and cheap to
compare — and never collide with dictionary codes (which are >= 0).
"""

import numpy as np

from repro.common.errors import DataError

WILDCARD = -1


class Rule:
    """An immutable rule over ``d`` encoded dimension attributes."""

    __slots__ = ("values",)

    def __init__(self, values):
        values = tuple(int(v) for v in values)
        for v in values:
            if v < WILDCARD:
                raise DataError("rule values must be codes >= 0 or WILDCARD")
        object.__setattr__(self, "values", values)

    def __setattr__(self, name, value):
        raise AttributeError("Rule is immutable")

    def __reduce__(self):
        # Pickle by reconstruction: the default slot-state protocol
        # would trip over the immutability guard above, and rules must
        # pickle so dict-path kernels can run in process-pool workers.
        return (Rule, (self.values,))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def all_wildcards(cls, arity):
        """The root rule (*, *, ..., *) that covers every tuple."""
        return cls((WILDCARD,) * arity)

    @classmethod
    def from_tuple(cls, codes):
        """Treat an encoded tuple as the fully specific rule matching it."""
        return cls(codes)

    @classmethod
    def lca(cls, left, right):
        """Least common ancestor of two encoded tuples (thesis §2.1).

        Positions where the tuples agree keep the value; the rest become
        wildcards.  Also accepts rules, in which case a wildcard on
        either side yields a wildcard.
        """
        left_values = left.values if isinstance(left, Rule) else tuple(left)
        right_values = right.values if isinstance(right, Rule) else tuple(right)
        if len(left_values) != len(right_values):
            raise DataError("lca requires tuples of equal arity")
        return cls(
            tuple(
                a if a == b and a != WILDCARD else WILDCARD
                for a, b in zip(left_values, right_values)
            )
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def arity(self):
        return len(self.values)

    def wildcard_positions(self):
        return tuple(j for j, v in enumerate(self.values) if v == WILDCARD)

    def bound_positions(self):
        """Positions carrying a concrete (non-wildcard) value."""
        return tuple(j for j, v in enumerate(self.values) if v != WILDCARD)

    @property
    def num_bound(self):
        """Number of non-wildcard attributes (lattice depth)."""
        return sum(1 for v in self.values if v != WILDCARD)

    def is_root(self):
        return all(v == WILDCARD for v in self.values)

    # ------------------------------------------------------------------
    # Matching and ordering (thesis §2.1, §2.5)
    # ------------------------------------------------------------------

    def matches(self, codes):
        """True iff the encoded tuple ``codes`` matches this rule."""
        return all(
            v == WILDCARD or v == c for v, c in zip(self.values, codes)
        )

    def match_mask(self, table):
        """Vectorized coverage mask over a :class:`Table`'s rows."""
        mask = np.ones(len(table), dtype=bool)
        for j, v in enumerate(self.values):
            if v != WILDCARD:
                mask &= table.dimension_columns()[j] == v
        return mask

    def is_ancestor_of(self, other):
        """True iff every attribute is a wildcard or equals ``other``'s."""
        return all(
            a == WILDCARD or a == b for a, b in zip(self.values, other.values)
        )

    def is_descendant_of(self, other):
        return other.is_ancestor_of(self)

    def is_disjoint(self, other):
        """Attribute-level disjointness (thesis §2.1).

        True iff some attribute is bound to *different* values on both
        sides.  Disjoint rules have disjoint support sets; overlapping
        rules may still have disjoint supports (the (Wed,*,*) vs
        (*,*,London) example).
        """
        return any(
            a != WILDCARD and b != WILDCARD and a != b
            for a, b in zip(self.values, other.values)
        )

    def overlaps(self, other):
        return not self.is_disjoint(other)

    # ------------------------------------------------------------------
    # Lattice navigation
    # ------------------------------------------------------------------

    def ancestors(self, include_self=True):
        """Yield every ancestor (2^num_bound rules, thesis §2.5).

        Ancestors replace subsets of the bound positions by wildcards;
        the rule is its own ancestor and the root is always included.
        """
        bound = self.bound_positions()
        base = list(self.values)
        for mask in range(1 << len(bound)):
            if not include_self and mask == 0:
                continue
            values = list(base)
            for bit, pos in enumerate(bound):
                if mask & (1 << bit):
                    values[pos] = WILDCARD
            yield Rule(values)

    def parents(self):
        """Immediate proper ancestors (one more wildcard each)."""
        for pos in self.bound_positions():
            values = list(self.values)
            values[pos] = WILDCARD
            yield Rule(values)

    def generalize(self, positions):
        """Return the ancestor wildcarding exactly ``positions``."""
        values = list(self.values)
        for pos in positions:
            values[pos] = WILDCARD
        return Rule(values)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def decode(self, table):
        """Human-readable values using the table's encoders ('*' for wildcards)."""
        out = []
        for enc, v in zip(table.encoders(), self.values):
            out.append("*" if v == WILDCARD else enc.decode(v))
        return tuple(out)

    def __eq__(self, other):
        return isinstance(other, Rule) and self.values == other.values

    def __hash__(self):
        return hash(self.values)

    def __repr__(self):
        rendered = ", ".join(
            "*" if v == WILDCARD else str(v) for v in self.values
        )
        return "Rule(%s)" % rendered
