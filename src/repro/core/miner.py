"""The SIRUM mining driver — thesis Algorithms 2 and 3 with every
Chapter 4 optimization behind a configuration flag.

Structure of one mining run (:meth:`Sirum.mine`):

1. *load* — first pass over the partitioned input (charged as HDFS
   reads; subsequent passes hit the storage cache unless evicted).
2. Add the all-wildcards rule and scale it (§2.2 requires it first).
3. Repeat until k rules (or the KL target of a *-variant) are reached:
   candidate pruning -> ancestor generation -> gain scoring -> select
   one or more disjoint rules (§4.4) -> iterative scaling (Algorithm 1
   against D, or Algorithm 3 against the RCT).

Use :func:`mine` for the one-call API, or construct a
:class:`Sirum` with a :class:`~repro.core.config.SirumConfig` /
:func:`~repro.core.config.variant_config` preset.
"""

from functools import partial

import numpy as np

from repro.common.errors import ConfigError, DataError
from repro.common.rng import make_rng
from repro.common.timing import Stopwatch
from repro.core import candidates as cand
from repro.core import lattice
from repro.core.config import SirumConfig, VARIANT_FLAGS, variant_config
from repro.core.divergence import kl_divergence
from repro.core.index import SampleInvertedIndex
from repro.core.rct import iterative_scale_rct
from repro.core.result import MinedRule, MiningResult, RuleSet
from repro.core.rule import Rule
from repro.core.codec import RowCodec, group_packed
from repro.core.lattice_packed import (
    generate_ancestors_packed,
    match_counts_packed,
)
from repro.core.sampling import (
    draw_sample_rows,
    lca_aggregates_baseline,
    lca_aggregates_fast,
    lca_aggregates_packed,
    sample_match_counts,
)
from repro.core.scaling import iterative_scale
from repro.core.session import MiningSession
from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel
from repro.engine.shm import resolve as shm_resolve

#: Serialized size estimate of one combiner-output (rule, aggregates)
#: pair — a packed rule key plus aggregate deltas.
PAIR_BYTES = 8

#: Cost units (in comparisons) of emitting one ancestor instance into
#: the combiner: hash probe plus aggregate add.
EMIT_UNITS = 1

#: Named optimization bundles (thesis Table 4.2).
VARIANTS = dict(VARIANT_FLAGS)


# ----------------------------------------------------------------------
# Stage kernels
#
# Module-level functions bound with ``functools.partial`` rather than
# closures: a bound kernel pickles, so the same kernel object runs on
# the serial driver loop, the thread pool, or a process-pool worker.
# Session-wide arrays arrive either directly or as shared-memory
# descriptors (process mode) and are resolved via ``shm_resolve``.
# ----------------------------------------------------------------------


def _scan_kernel(tc, part):
    """One metered pass over a partition's rows (load / RCT write-back)."""
    tc.add_records(part.num_rows)
    return None


def _prune_kernel(tc, part, measure, estimates, sample_rows, codec,
                  sample_index, packed):
    """Per-partition LCA aggregation over the candidate-pruning sample."""
    measure = shm_resolve(measure)[part.start:part.stop]
    estimates = shm_resolve(estimates)[part.start:part.stop]
    if packed:
        return lca_aggregates_packed(
            part.columns, measure, estimates, sample_rows, codec,
            index=sample_index, tc=tc,
        )
    if sample_index is not None:
        return lca_aggregates_fast(
            part.columns, measure, estimates, sample_index, sample_rows,
            tc,
        )
    return lca_aggregates_baseline(
        part.columns, measure, estimates, sample_rows, tc
    )
    # The LCA table is consumed by the ancestor mappers in place (a
    # narrow dependency) -- no shuffle here.


def _ancestor_packed_kernel(tc, chunk, codec, group, weighted):
    """Vectorized ancestor generation over one packed (keys, aggs) chunk."""
    in_keys, in_aggs = chunk
    out_keys, out_aggs, emitted = generate_ancestors_packed(
        in_keys, in_aggs, codec, group=group, instance_weighted=weighted,
    )
    tc.add_ops(emitted * EMIT_UNITS)
    # Combiner output is candidate-scale: its shuffle is negligible at
    # real data sizes, so only the mapper CPU (ops above) is charged.
    tc.add_light_ops(in_keys.size + out_keys.size)
    return out_keys, out_aggs, emitted


def _ancestor_dict_kernel(tc, chunk, group, weighted):
    """Dict-path ancestor generation over one rule->aggregate chunk.

    First round: mappers emit once per LCA *instance* of the |s| x |D|
    join (agg[2] pairs per distinct LCA); later rounds walk the
    previous round's reduced output.
    """
    partial_aggs = {}
    emitted = 0
    for rule, agg in chunk.items():
        weight = int(agg[2]) if weighted else 1
        count = 0
        if group is None:
            ancestors = rule.ancestors()
        else:
            ancestors = lattice.ancestors_within_group(rule, group)
        for ancestor in ancestors:
            count += 1
            existing = partial_aggs.get(ancestor)
            if existing is None:
                partial_aggs[ancestor] = agg
            else:
                partial_aggs[ancestor] = tuple(
                    a + b for a, b in zip(existing, agg)
                )
        emitted += weight * count
    tc.add_ops(emitted * EMIT_UNITS)
    tc.add_light_ops(len(chunk) + len(partial_aggs))
    return partial_aggs, emitted


def _match_counts_packed_kernel(tc, bounds, keys, sample_rows, codec):
    """Packed-key sample-multiplicity counts for one candidate chunk."""
    start, stop = bounds
    counts = match_counts_packed(
        shm_resolve(keys)[start:stop], sample_rows, codec
    )
    tc.add_light_ops((stop - start) * (len(sample_rows) + 1))
    return counts


def _sample_match_kernel(tc, rules_chunk, sample_rows):
    """Rule-tuple sample-multiplicity counts for one candidate chunk.

    The chunk *is* the partition item (a slice of the candidate list),
    so a process-pool task ships only its own rules rather than every
    task carrying the full list inside the kernel.
    """
    rows = [r.values for r in rules_chunk]
    counts = sample_match_counts(rows, sample_rows)
    # Per distinct candidate: |s| sample matches + one gain.
    tc.add_light_ops(len(rules_chunk) * (len(sample_rows) + 1))
    return counts


def _exhaustive_kernel(tc, part, measure, estimates):
    """Full-cube candidate generation over one partition."""
    measure = shm_resolve(measure)[part.start:part.stop]
    estimates = shm_resolve(estimates)[part.start:part.stop]
    acc, emitted = cand.generate_exhaustive(
        part.columns, measure, estimates, tc
    )
    tc.add_light_ops(len(acc))
    return acc, emitted


def _rct_build_kernel(tc, part, words):
    """RCT pass 1: local group-by over coverage words + tiny shuffle."""
    tc.add_records(part.num_rows)
    tc.add_ops(part.num_rows)
    local_groups = np.unique(
        shm_resolve(words)[part.start:part.stop], axis=0
    ).shape[0]
    tc.add_output_bytes(local_groups * PAIR_BYTES)
    return None


def _baseline_sums_kernel(tc, part, num_rules, arity):
    """Algorithm 1 pass A: every m-hat(r), re-tested attribute-wise."""
    tc.add_records(part.num_rows)
    tc.add_ops(part.num_rows * num_rules * arity)
    tc.add_output_bytes(num_rules * PAIR_BYTES)
    return None


def _baseline_update_kernel(tc, part):
    """Algorithm 1 pass B: update t[m-hat] with one scan of D."""
    tc.add_records(part.num_rows)
    tc.add_ops(part.num_rows)
    return None


def make_default_cluster(
    num_executors=4,
    cores_per_executor=4,
    executor_memory_bytes=512 * 1024**2,
    straggler_sigma=0.0,
    seed=7,
    cost_model=None,
    parallelism=None,
    executor=None,
    budget_grant=None,
    placed=None,
    workers=None,
):
    """A small local cluster suitable for tests and examples.

    ``parallelism`` sets the number of real workers partition kernels
    execute on and ``executor`` the pool kind (``"thread"``,
    ``"process"`` or ``"remote"``; None defers to a ``budget_grant``'s
    granted degree when one is given, then to ``REPRO_PARALLELISM`` /
    ``REPRO_EXECUTOR``); ``placed`` pins shards to workers (None
    defers to ``REPRO_PLACEMENT``) and ``workers`` lists shard-worker
    addresses for the remote executor.  Results and simulated metrics
    are identical across settings.
    """
    spec = ClusterSpec(
        num_executors=num_executors,
        cores_per_executor=cores_per_executor,
        executor_memory_bytes=executor_memory_bytes,
        straggler_sigma=straggler_sigma,
        seed=seed,
    )
    return ClusterContext(spec, cost_model or CostModel(),
                          parallelism=parallelism, executor=executor,
                          budget_grant=budget_grant, placed=placed,
                          workers=workers)


def mine(table, k=10, variant="optimized", cluster=None, prior_rules=None,
         parallelism=None, executor=None, placed=None, workers=None,
         **config_overrides):
    """One-call mining API.

    >>> result = mine(flight_table(), k=3, variant="optimized")

    ``variant`` is a Table 4.2 preset name; extra keyword arguments
    override any :class:`SirumConfig` field.  ``parallelism`` and
    ``executor`` set the real worker count and pool kind of the
    default cluster, ``placed`` pins shard ``i`` to worker ``i`` every
    stage (sticky affinity), and ``workers`` lists shard-worker
    addresses for ``executor="remote"`` (all ignored when an explicit
    ``cluster`` is passed, which the caller then owns).  An internally
    created cluster is closed before returning — no worker threads or
    processes outlive the call.
    """
    config = variant_config(variant, k=k, **config_overrides)
    owns_cluster = cluster is None
    if cluster is None:
        cluster = make_default_cluster(parallelism=parallelism,
                                       executor=executor, placed=placed,
                                       workers=workers)
    try:
        return Sirum(config).mine(table, cluster=cluster,
                                  prior_rules=prior_rules)
    finally:
        if owns_cluster:
            cluster.close()


class Sirum:
    """Configured miner; see the module docstring for the pipeline."""

    def __init__(self, config=None):
        self.config = config or SirumConfig()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def mine(self, table, cluster=None, prior_rules=None,
             sample_rows=None, dataset_state=None):
        """Mine informative rules from ``table``.

        Parameters
        ----------
        table:
            The input :class:`~repro.data.table.Table`.
        cluster:
            A :class:`ClusterContext`; a small default is created if
            omitted.  Metrics accumulate in the cluster across calls —
            pass a fresh one (or call ``reset_metrics``) per experiment.
        prior_rules:
            Rules representing knowledge the user already has (data
            cube exploration, thesis Table 1.3); they are scaled in
            before mining and do not count toward ``k``.
        sample_rows:
            Encoded dimension tuples to use as the candidate-pruning
            sample s instead of drawing one from the table (streaming
            SIRUM supplies its reservoir here).
        dataset_state:
            Optional object with ``table``, ``codec`` and ``transform``
            attributes (e.g. the mining service's dataset handle).
            When its table *is* the mined table, the precomputed codec
            and measure transform are reused instead of being refit —
            two O(n) passes saved per repeated job on a dataset.
        """
        wall = Stopwatch().start()
        cfg = self.config
        owns_cluster = cluster is None
        cluster = cluster or make_default_cluster()
        rng = make_rng(cfg.seed)

        mined_table = table
        if cfg.sample_data_fraction is not None and cfg.sample_data_fraction < 1.0:
            mined_table = table.sample_fraction(cfg.sample_data_fraction, rng)

        codec = transform = None
        if dataset_state is not None and dataset_state.table is mined_table:
            codec = dataset_state.codec
            transform = dataset_state.transform
        session = MiningSession(
            cluster, mined_table, cfg.num_partitions,
            codec=codec, transform=transform,
        )
        try:
            return self._mine(table, mined_table, session, cluster,
                              prior_rules, sample_rows, rng, wall)
        finally:
            # Shared-memory segments (process mode) die with the
            # session; an internally created cluster's worker pools
            # die with the call.
            session.close()
            if owns_cluster:
                cluster.close()

    def _mine(self, table, mined_table, session, cluster, prior_rules,
              sample_rows, rng, wall):
        """The mining loop proper; ``mine`` owns setup and cleanup."""
        cfg = self.config
        self._load(session)

        arity = mined_table.schema.arity
        sample_index = None
        if cfg.exhaustive:
            sample_rows = None
        else:
            if sample_rows is None:
                sample_rows = draw_sample_rows(
                    mined_table, cfg.sample_size, rng
                )
            else:
                sample_rows = [tuple(int(v) for v in row)
                               for row in sample_rows]
            if cfg.use_fast_pruning:
                sample_index = SampleInvertedIndex(sample_rows, arity)
        column_groups = None
        if cfg.num_column_groups is not None:
            column_groups = lattice.make_column_groups(
                arity, min(cfg.num_column_groups, arity), seed=cfg.seed
            )

        rules = [Rule.all_wildcards(arity)]
        gains = [0.0]
        iteration_added = [0]
        charge_phase = "iterative_scaling" if cfg.use_rct else None
        session.add_rule_coverage(rules[0], charge_phase=charge_phase)
        lambdas = np.ones(1)
        lambdas, iters = self._scale(session, lambdas)
        scaling_iterations = iters

        num_prior = 0
        if prior_rules:
            for rule in prior_rules:
                rule = rule if isinstance(rule, Rule) else Rule(rule)
                if rule.arity != arity:
                    raise ConfigError("prior rule arity mismatch")
                if rule in rules:
                    continue
                rules.append(rule)
                gains.append(0.0)
                iteration_added.append(0)
                session.add_rule_coverage(rule, charge_phase=charge_phase)
            num_prior = len(rules) - 1
            lambdas = np.concatenate(
                [lambdas, np.ones(len(rules) - lambdas.size)]
            )
            lambdas, iters = self._scale(session, lambdas)
            scaling_iterations += iters

        kl_trace = [kl_divergence(session.measure, session.estimates)]
        ancestors_emitted = 0
        candidates_scored = 0
        iteration = 0
        while self._should_continue(len(rules) - 1 - num_prior, kl_trace[-1]):
            iteration += 1
            candidate_set = self._generate_candidates(
                session, sample_rows, sample_index, column_groups
            )
            ancestors_emitted += candidate_set.emitted_pairs
            candidates_scored += len(candidate_set)
            picked = cand.select_rules(
                candidate_set,
                rules,
                rules_per_iteration=cfg.rules_per_iteration,
                top_fraction=cfg.top_fraction,
                min_gain_ratio=cfg.min_gain_ratio,
            )
            if not picked:
                break
            for rule, gain in picked:
                rules.append(rule)
                gains.append(gain)
                iteration_added.append(iteration)
                session.add_rule_coverage(rule, charge_phase=charge_phase)
            lambdas = np.concatenate([lambdas, np.ones(len(picked))])
            lambdas, iters = self._scale(session, lambdas)
            scaling_iterations += iters
            kl_trace.append(kl_divergence(session.measure, session.estimates))

        return self._build_result(
            table,
            mined_table,
            session,
            rules,
            gains,
            iteration_added,
            lambdas,
            kl_trace,
            cluster,
            wall,
            scaling_iterations,
            ancestors_emitted,
            candidates_scored,
        )

    # ------------------------------------------------------------------
    # Pipeline pieces
    # ------------------------------------------------------------------

    def _should_continue(self, num_generated, kl):
        cfg = self.config
        if num_generated >= cfg.max_rules:
            return False
        if num_generated < cfg.k:
            return True
        if cfg.target_kl is not None and kl > cfg.target_kl:
            return True
        return False

    def _load(self, session):
        """Initial scan: every partition is read from (simulated) HDFS."""
        session.run_over_data(_scan_kernel, phase="load")

    def _generate_candidates(self, session, sample_rows, sample_index,
                             column_groups):
        if self.config.exhaustive:
            candidates = self._generate_exhaustive(session)
        else:
            candidates = self._generate_pruned(
                session, sample_rows, sample_index, column_groups
            )
        if self.config.eliminate_redundant:
            from repro.core.redundancy import filter_candidate_set

            with session.cluster.phase("gain"):
                before = len(candidates)
                candidates = filter_candidate_set(candidates)
                session.cluster.metrics.charge(
                    before * (session.table.schema.arity + 1)
                    * session.cluster.cost.light_op_seconds
                )
                session.cluster.metrics.increment(
                    "redundant_candidates", before - len(candidates)
                )
        return candidates

    def _generate_pruned(self, session, sample_rows, sample_index,
                         column_groups):
        """Sample-pruned generation: LCAs -> ancestors -> gains.

        Runs on packed int64 rule keys whenever the table's codec fits
        63 bits (every thesis dataset does); otherwise falls back to
        tuple-keyed dicts.  Both paths produce identical candidates.
        """
        cfg = self.config
        cluster = session.cluster
        arity = session.table.schema.arity
        codec = session.codec
        packed = codec is not None and codec.fits

        with cluster.phase("candidate_pruning"):
            if cfg.use_broadcast_join:
                payload = len(sample_rows) * arity * 8
                if sample_index is not None:
                    payload += sample_index.estimated_bytes()
                cluster.broadcast(None, payload)

            prune_kernel = partial(
                _prune_kernel,
                measure=session.measure_ref(),
                estimates=session.estimates_ref(),
                sample_rows=sample_rows,
                codec=codec,
                sample_index=sample_index,
                packed=packed,
            )
            stage = session.run_over_data(
                prune_kernel,
                shuffle_data=not cfg.use_broadcast_join,
            )
            partition_lcas = stage.outputs

        with cluster.phase("ancestor_generation"):
            if packed:
                keys, aggs, emitted = self._ancestor_stages_packed(
                    cluster, session, partition_lcas, column_groups, codec
                )
            else:
                aggregates, emitted = self._run_ancestor_stages(
                    cluster, session, partition_lcas, column_groups
                )

        with cluster.phase("gain"):
            if packed:
                return self._score_candidates_packed(
                    cluster, session, keys, aggs, emitted, sample_rows,
                    codec,
                )
            return self._score_candidates(
                cluster, session, aggregates, emitted, sample_rows
            )

    def _ancestor_stages_packed(self, cluster, session, partition_lcas,
                                column_groups, codec):
        """Vectorized ancestor generation over packed keys (see
        :mod:`repro.core.lattice_packed`); staging and metering mirror
        :meth:`_run_ancestor_stages` exactly."""
        rounds = [None] if column_groups is None else list(column_groups)
        emitted_total = 0
        keys = aggs = None
        for round_index, group in enumerate(rounds):
            if round_index == 0:
                chunks = list(partition_lcas)
            else:
                chunks = _chunk_arrays(keys, aggs, session.num_partitions)
            kernel = partial(
                _ancestor_packed_kernel, codec=codec, group=group,
                weighted=round_index == 0,
            )
            stage = cluster.run_stage(
                kernel, chunks, name="ancestor_generation",
            )
            emitted_total += sum(e for _, _, e in stage.outputs)
            all_keys = np.concatenate([k for k, _, _ in stage.outputs])
            all_aggs = np.concatenate([a for _, a, _ in stage.outputs])
            keys, sums = group_packed(
                all_keys, [all_aggs[:, 0], all_aggs[:, 1], all_aggs[:, 2]]
            )
            aggs = np.stack(sums, axis=1)
        return keys, aggs, emitted_total

    def _score_candidates_packed(self, cluster, session, keys, aggs,
                                 emitted, sample_rows, codec):
        """Packed-key multiplicity correction + gains (see
        :meth:`_score_candidates`)."""
        chunk_bounds = _chunk_bounds(keys.size, session.num_partitions)
        with session.shared_ref(keys) as keys_ref:
            kernel = partial(
                _match_counts_packed_kernel, keys=keys_ref,
                sample_rows=sample_rows, codec=codec,
            )
            stage = cluster.run_stage(kernel, chunk_bounds, name="gain")
        multiplicities = np.concatenate(stage.outputs)
        if np.any(multiplicities == 0):
            raise DataError(
                "candidate failed the sample-multiplicity invariant"
            )
        corrected = aggs / multiplicities[:, None]
        gains = cand._gains(corrected[:, 0], corrected[:, 1])
        return cand.CandidateSet(
            None,
            corrected[:, 0],
            corrected[:, 1],
            corrected[:, 2],
            gains,
            emitted,
            keys=keys,
            codec=codec,
        )

    def _run_ancestor_stages(self, cluster, session, partition_lcas,
                             column_groups):
        """Dict-path ancestor generation (codec does not fit 63 bits).

        The first round runs over each data partition's own LCA table --
        the same mappers that produced the LCAs walk their |s| x n_p
        pair instances -- so emission work is spread the way the real
        pipeline spreads it.  Later rounds (column grouping) run over
        chunks of the previous round's reduced output.
        """
        emitted_total = 0
        if column_groups is None:
            rounds = [None]
        else:
            rounds = column_groups
        current = None
        for round_index, group in enumerate(rounds):
            if round_index == 0:
                chunks = [
                    {Rule(key): tuple(agg) for key, agg in acc.items()}
                    for acc in partition_lcas
                ]
            else:
                chunks = _chunk_dict(current, session.num_partitions)
            kernel = partial(
                _ancestor_dict_kernel, group=group,
                weighted=round_index == 0,
            )
            stage = cluster.run_stage(
                kernel, chunks, name="ancestor_generation"
            )
            merged = {}
            for partial_aggs, emitted in stage.outputs:
                emitted_total += emitted
                for rule, agg in partial_aggs.items():
                    existing = merged.get(rule)
                    if existing is None:
                        merged[rule] = agg
                    else:
                        merged[rule] = tuple(
                            a + b for a, b in zip(existing, agg)
                        )
            current = merged
        return current, emitted_total

    def _score_candidates(self, cluster, session, aggregates, emitted,
                          sample_rows):
        """Multiplicity correction (S3.1.1) + Eq. 2.2 gains, chunked."""
        rules = list(aggregates.keys())
        raw = np.asarray([aggregates[r] for r in rules], dtype=np.float64)
        if raw.size == 0:
            raise DataError("candidate generation produced no rules")
        chunks = [
            rules[start:stop]
            for start, stop in _chunk_bounds(len(rules),
                                             session.num_partitions)
        ]
        kernel = partial(_sample_match_kernel, sample_rows=sample_rows)
        stage = cluster.run_stage(kernel, chunks, name="gain")
        multiplicities = np.concatenate(stage.outputs)
        if np.any(multiplicities == 0):
            raise DataError(
                "candidate failed the sample-multiplicity invariant"
            )
        corrected = raw / multiplicities[:, None]
        gains = cand._gains(corrected[:, 0], corrected[:, 1])
        return cand.CandidateSet(
            rules,
            corrected[:, 0],
            corrected[:, 1],
            corrected[:, 2],
            gains,
            emitted,
        )

    def _generate_exhaustive(self, session):
        """Full-cube candidate generation (cube-exploration mode)."""
        cluster = session.cluster

        with cluster.phase("ancestor_generation"):
            kernel = partial(
                _exhaustive_kernel,
                measure=session.measure_ref(),
                estimates=session.estimates_ref(),
            )
            stage = session.run_over_data(kernel)
            merged = cand.merge_exhaustive([acc for acc, _ in stage.outputs])
            emitted = sum(e for _, e in stage.outputs)

        with cluster.phase("gain"):
            candidate_set = cand.candidate_set_from_cube(merged, emitted)
            cluster.metrics.charge(
                len(candidate_set) * cluster.cost.light_op_seconds
            )
        return candidate_set

    # ------------------------------------------------------------------
    # Iterative scaling (Algorithm 1 vs Algorithm 3)
    # ------------------------------------------------------------------

    def _scale(self, session, lambdas):
        cfg = self.config
        if cfg.reset_lambdas:
            # Prior-work behaviour ([29], §5.6.2): forget all multipliers
            # and re-scale the full rule set from scratch.
            lambdas = np.ones(len(session.masks))
            session.estimates[:] = 1.0
        if cfg.use_rct:
            return self._scale_rct(session, lambdas)
        return self._scale_baseline(session, lambdas)

    def _scale_rct(self, session, lambdas):
        """Algorithm 3: two passes over D, loop over the RCT."""
        cluster = session.cluster
        with cluster.phase("iterative_scaling"):
            # Pass 1: build the RCT (local group-by + tiny shuffle).
            # The coverage words are row-scale, so process mode ships
            # them through a transient shared segment, not per task.
            with session.shared_ref(session.bit_matrix._words) as words:
                build_kernel = partial(_rct_build_kernel, words=words)
                session.run_over_data(build_kernel, shuffle_output=True)

            result = iterative_scale_rct(
                session.bit_matrix,
                session.measure,
                session.estimates,
                lambdas,
                epsilon=self.config.epsilon,
                max_iterations=self.config.max_scaling_iterations,
            )
            # Driver-side loop over the broadcast RCT (candidate-scale).
            cluster.metrics.charge(
                result.iterations
                * result.rct.num_groups
                * max(len(lambdas), 1)
                * cluster.cost.light_op_seconds
            )
            cluster.metrics.increment("rct_groups", result.rct.num_groups)

            # Pass 2: write the converged estimates back.
            session.run_over_data(_scan_kernel)
            session.estimates[:] = result.estimates
        return result.lambdas, result.iterations

    def _scale_baseline(self, session, lambdas):
        """Algorithm 1 against D: two metered passes per loop iteration."""
        cfg = self.config
        cluster = session.cluster
        result = iterative_scale(
            session.masks,
            session.measure,
            lambdas=lambdas,
            estimates=session.estimates,
            epsilon=cfg.epsilon,
            max_iterations=cfg.max_scaling_iterations,
        )
        num_rules = len(session.masks)
        arity = session.table.schema.arity
        with cluster.phase("iterative_scaling"):
            if cfg.use_broadcast_join:
                cluster.broadcast(None, num_rules * (arity + 1) * 8)
            sums_kernel = partial(
                _baseline_sums_kernel, num_rules=num_rules, arity=arity,
            )
            for _ in range(result.iterations):
                # Pass A: compute every m-hat(r) — evaluates t matches r
                # attribute by attribute for all rules (§4.1 notes this
                # re-testing is what the bit arrays remove).
                session.run_over_data(
                    sums_kernel,
                    shuffle_data=not cfg.use_broadcast_join,
                    shuffle_output=True,
                )

                # Pass B: update t[m-hat] for tuples matching the scaled
                # rule (charged as a full pass, as the baseline scans D).
                session.run_over_data(_baseline_update_kernel)
        session.estimates[:] = result.estimates
        return result.lambdas, result.iterations

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def _build_result(
        self,
        full_table,
        mined_table,
        session,
        rules,
        gains,
        iteration_added,
        lambdas,
        kl_trace,
        cluster,
        wall,
        scaling_iterations,
        ancestors_emitted,
        candidates_scored,
    ):
        # Evaluate on the full table: identical to the mining table
        # except in SIRUM-on-sample-data mode, where rules mined from
        # the sample are re-fit against all of D (uncharged, §5.7.3).
        if mined_table is full_table:
            estimates = session.estimates.copy()
            measure = session.measure
            transform = session.transform
            kl_final = kl_trace[-1]
        else:
            measure, estimates, transform = _fit_rules(
                full_table, rules, self.config
            )
            kl_final = kl_divergence(measure, estimates)
        kl_root = kl_divergence(measure, np.ones_like(measure))
        info_gain = kl_root - kl_final

        mined_rules = []
        original_measure = full_table.measure
        for rule, gain, iteration in zip(rules, gains, iteration_added):
            mask = rule.match_mask(full_table)
            count = int(mask.sum())
            avg = float(original_measure[mask].mean()) if count else float("nan")
            mined_rules.append(MinedRule(rule, avg, count, gain, iteration))

        wall.stop()
        return MiningResult(
            rule_set=RuleSet(mined_rules),
            lambdas=lambdas,
            estimates=transform.inverse(estimates),
            kl_trace=kl_trace,
            information_gain=info_gain,
            metrics=cluster.metrics.snapshot(),
            wall_seconds=wall.elapsed,
            scaling_iterations=scaling_iterations,
            ancestors_emitted=ancestors_emitted,
            candidates_scored=candidates_scored,
            config=self.config,
        )


def _fit_rules(table, rules, config):
    """Scale a fixed rule list against ``table`` (no mining, no charges)."""
    from repro.core.measure import MeasureTransform

    transform = MeasureTransform.fit(table.measure)
    masks = [rule.match_mask(table) for rule in rules]
    kept_masks = []
    for mask in masks:
        if not mask.any():
            raise DataError("a mined rule covers no tuples of the full table")
        kept_masks.append(mask)
    result = iterative_scale(
        kept_masks,
        transform.transformed,
        epsilon=config.epsilon,
        max_iterations=config.max_scaling_iterations,
    )
    return transform.transformed, result.estimates, transform


def _chunk_dict(mapping, num_chunks):
    """Split a dict into at most ``num_chunks`` sub-dicts."""
    items = list(mapping.items())
    num_chunks = max(1, min(num_chunks, len(items))) if items else 1
    bounds = [len(items) * i // num_chunks for i in range(num_chunks + 1)]
    return [
        dict(items[bounds[i]:bounds[i + 1]]) for i in range(num_chunks)
        if bounds[i] < bounds[i + 1]
    ] or [dict()]


def _chunk_arrays(keys, aggs, num_chunks):
    """Split aligned (keys, aggs) arrays into chunk pairs."""
    return [
        (keys[start:stop], aggs[start:stop])
        for start, stop in _chunk_bounds(keys.size, num_chunks)
    ]


def _chunk_bounds(n, num_chunks):
    num_chunks = max(1, min(num_chunks, n))
    bounds = [n * i // num_chunks for i in range(num_chunks + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(num_chunks)
        if bounds[i] < bounds[i + 1]
    ]
