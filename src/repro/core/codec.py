"""Packed-row codec: encode (value | wildcard) tuples into int64 keys.

The candidate-generation hot paths group huge numbers of rule tuples
(LCAs, cuboid cells).  Packing each tuple into a single int64 — one
bit-field per attribute, with 0 reserved for the wildcard — turns
row-wise grouping into 1-D ``np.unique`` + ``np.bincount``, which is
orders of magnitude faster than lexicographic row sorting.

A codec fits whenever the summed per-attribute bit widths stay within
63 bits (true for every thesis dataset: 29–38 bits).  Callers fall back
to row-matrix grouping otherwise (:func:`group_rows_fallback`).
"""

import numpy as np

from repro.common.errors import DataError
from repro.core.rule import WILDCARD

_MAX_BITS = 63


class RowCodec:
    """Bit-field packing of encoded dimension tuples (wildcards allowed)."""

    def __init__(self, cardinalities):
        cardinalities = [int(c) for c in cardinalities]
        if not cardinalities or any(c < 1 for c in cardinalities):
            raise DataError("cardinalities must be positive")
        self.cardinalities = cardinalities
        # Attribute j stores value+1 in [0, card]; 0 encodes wildcard.
        self.widths = [max(1, c.bit_length()) for c in cardinalities]
        self.offsets = []
        offset = 0
        for width in self.widths:
            self.offsets.append(offset)
            offset += width
        self.total_bits = offset

    @classmethod
    def from_table(cls, table):
        return cls(
            [table.domain_size(name) for name in table.schema.dimensions]
        )

    @property
    def fits(self):
        """True if packed keys fit a signed int64."""
        return self.total_bits <= _MAX_BITS

    @property
    def arity(self):
        return len(self.cardinalities)

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------

    def pack_columns(self, columns):
        """Pack aligned code columns (no wildcards) into int64 keys."""
        self._require_fits()
        packed = np.zeros(len(columns[0]), dtype=np.int64)
        for j, col in enumerate(columns):
            packed += (col.astype(np.int64) + 1) << self.offsets[j]
        return packed

    def pack_values(self, values):
        """Pack one tuple (wildcards allowed) into an int key."""
        self._require_fits()
        key = 0
        for j, v in enumerate(values):
            if v != WILDCARD:
                key += (int(v) + 1) << self.offsets[j]
        return key

    def masked_term(self, column, agree, attribute):
        """Vectorized packing term: (value+1)<<offset where agreeing, 0 else.

        Used by the LCA kernels: summing terms over attributes yields
        the packed LCA keys directly.
        """
        self._require_fits()
        shifted = (column.astype(np.int64) + 1) << self.offsets[attribute]
        return np.where(agree, shifted, 0)

    # ------------------------------------------------------------------
    # Unpacking
    # ------------------------------------------------------------------

    def unpack(self, key):
        """Decode one key back to a tuple with WILDCARD entries."""
        return tuple(int(v) for v in self.unpack_batch(np.array([key]))[0])

    def unpack_batch(self, keys):
        """Decode an int64 key array to an (n, d) matrix of codes/-1."""
        self._require_fits()
        keys = np.asarray(keys, dtype=np.int64)
        out = np.empty((keys.size, self.arity), dtype=np.int64)
        for j in range(self.arity):
            field = (keys >> self.offsets[j]) & ((1 << self.widths[j]) - 1)
            out[:, j] = field - 1
        return out

    def _require_fits(self):
        if not self.fits:
            raise DataError(
                "row codec needs %d bits (> %d); use the row-matrix "
                "fallback" % (self.total_bits, _MAX_BITS)
            )


def group_packed(keys, weight_columns):
    """Group packed keys, summing each weight column per distinct key.

    Returns ``(unique_keys, sums)`` where ``sums`` has one row per
    weight column aligned with ``unique_keys``.
    """
    uniq, inverse = np.unique(keys, return_inverse=True)
    inverse = inverse.ravel()
    sums = [
        np.bincount(inverse, weights=w, minlength=uniq.size)
        for w in weight_columns
    ]
    return uniq, sums


def group_rows_fallback(rows, weight_columns):
    """Row-matrix grouping for codecs that do not fit 63 bits.

    ``rows`` is an (n, d) int matrix; semantics match
    :func:`group_packed` with tuple keys.
    """
    uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
    inverse = inverse.ravel()
    sums = [
        np.bincount(inverse, weights=w, minlength=uniq.shape[0])
        for w in weight_columns
    ]
    return uniq, sums
