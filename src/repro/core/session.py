"""Mining session: partitioned dataset state shared across stages.

Holds the partitioned view of the input table plus the evolving mining
state — the transformed measure, the per-tuple estimates and the rule
coverage bit matrix — and funnels every pass over D through the
cluster's stage API so cache behaviour, shuffles and task costs are
metered consistently.
"""

import numpy as np

from repro.common.errors import EngineError
from repro.core.codec import RowCodec
from repro.core.measure import MeasureTransform
from repro.core.rct import BitMatrix
from repro.data.table import TableBlock

#: A partition kernel's input: one contiguous block of the table as
#: NumPy column views (see :meth:`repro.data.table.Table.partition_blocks`).
DataPartition = TableBlock


class MiningSession:
    """Partitioned dataset + mining state bound to a cluster.

    ``codec`` and ``transform`` may be supplied precomputed — both are
    pure functions of the table, so a caller that mines the same
    dataset repeatedly (the concurrent mining service) computes them
    once per dataset version and skips two O(n) passes per job.
    """

    def __init__(self, cluster, table, num_partitions=None, codec=None,
                 transform=None):
        if len(table) == 0:
            raise EngineError("cannot mine an empty table")
        self.cluster = cluster
        self.table = table
        if num_partitions is None:
            num_partitions = (
                cluster.spec.num_executors * cluster.spec.cores_per_executor
            )
        num_partitions = max(1, min(num_partitions, len(table)))
        #: Zero-copy contiguous blocks of the table; partition kernels
        #: receive these and vectorize over their own column views.
        self.partitions = table.partition_blocks(num_partitions)
        self.num_partitions = len(self.partitions)
        n = len(table)
        #: Packed-row codec for the table's dimension domains; the
        #: candidate pipeline runs on packed int64 keys when it fits.
        self.codec = codec if codec is not None else RowCodec.from_table(table)
        self.transform = (
            transform if transform is not None
            else MeasureTransform.fit(table.measure)
        )
        #: Transformed measure (max-ent preconditioned).
        self.measure = self.transform.transformed
        #: Current per-tuple estimates in transformed space.
        self.estimates = np.ones(n, dtype=np.float64)
        #: Per-tuple rule coverage bits (RCT input).
        self.bit_matrix = BitMatrix(n)
        #: Boolean coverage masks per selected rule.
        self.masks = []

    @property
    def num_rows(self):
        return len(self.table)

    def partition_slice(self, partition, array):
        """Slice a session-wide array to one partition's rows."""
        return array[partition.start:partition.stop]

    def run_over_data(self, kernel, phase=None, shuffle_data=False,
                      shuffle_output=False, touch_cache=True):
        """Run ``kernel(task_ctx, partition)`` over every data partition.

        Parameters
        ----------
        kernel:
            The per-task function.
        phase:
            Optional phase label for simulated-time attribution.
        shuffle_data:
            Charge each partition's bytes as shuffle output — the cost
            profile of a repartition join over D (Naive SIRUM, §3.2).
        shuffle_output:
            Charge the kernel's declared output bytes at the shuffle
            rate (a reduce follows); implied by ``shuffle_data``.
        touch_cache:
            Account a storage-memory access per partition: free when
            cached, a disk read when evicted (§4.5).
        """
        cluster = self.cluster

        def wrapped(tc, part):
            if touch_cache:
                cluster.cached_access(tc, ("data", part.index), part.size_bytes)
            if shuffle_data:
                tc.add_output_bytes(part.size_bytes)
            return kernel(tc, part)

        def execute():
            return cluster.run_stage(
                wrapped,
                self.partitions,
                name=phase or "data_stage",
                shuffle_output=shuffle_data or shuffle_output,
            )

        if phase is not None:
            with cluster.phase(phase):
                return execute()
        return execute()

    def add_rule_coverage(self, rule, charge_phase=None):
        """Register a new rule: compute its mask and extend bit arrays.

        The mask is computed per partition via a metered stage (d
        comparisons per tuple — Algorithm 3 lines 1-5) when
        ``charge_phase`` is given, or silently for algorithms whose
        cost model charges matching elsewhere (Baseline SIRUM
        re-evaluates t matches r on every scaling pass instead).
        """
        mask = rule.match_mask(self.table)
        if charge_phase is not None:

            def kernel(tc, part):
                tc.add_records(part.num_rows)
                tc.add_ops(part.num_rows * self.table.schema.arity)
                return None

            self.run_over_data(kernel, phase=charge_phase)
        self.masks.append(mask)
        self.bit_matrix.add_rule(mask)
        return mask
