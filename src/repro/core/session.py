"""Mining session: partitioned dataset state shared across stages.

Holds the partitioned view of the input table plus the evolving mining
state — the transformed measure, the per-tuple estimates and the rule
coverage bit matrix — and funnels every pass over D through the
cluster's stage API so cache behaviour, shuffles and task costs are
metered consistently.
"""

from contextlib import contextmanager
from functools import partial

import numpy as np

from repro.common.errors import EngineError
from repro.core.codec import RowCodec
from repro.core.measure import MeasureTransform
from repro.data.table import TableBlock
from repro.engine.shm import SharedArray
from repro.core.rct import BitMatrix

#: A partition kernel's input: one contiguous block of the table as
#: NumPy column views (see :meth:`repro.data.table.Table.partition_blocks`).
DataPartition = TableBlock


class _DataStageKernel:
    """Picklable per-partition wrapper shared by every data stage.

    Adds the bookkeeping ``run_over_data`` owes each partition — the
    storage-cache touch (always deferred; the engine replays accesses
    in partition order) and the repartition-shuffle charge — then runs
    the stage's kernel.  A plain module-level class, so it crosses a
    process boundary whenever the wrapped kernel does.
    """

    __slots__ = ("kernel", "touch_cache", "shuffle_data")

    def __init__(self, kernel, touch_cache, shuffle_data):
        self.kernel = kernel
        self.touch_cache = touch_cache
        self.shuffle_data = shuffle_data

    def __call__(self, tc, part):
        if self.touch_cache:
            tc.request_cache_access(("data", part.index), part.size_bytes)
        if self.shuffle_data:
            tc.add_output_bytes(part.size_bytes)
        return self.kernel(tc, part)


def _coverage_kernel(tc, part, arity):
    """Charge one rule-coverage pass: d comparisons per tuple."""
    tc.add_records(part.num_rows)
    tc.add_ops(part.num_rows * arity)
    return None


class MiningSession:
    """Partitioned dataset + mining state bound to a cluster.

    ``codec`` and ``transform`` may be supplied precomputed — both are
    pure functions of the table, so a caller that mines the same
    dataset repeatedly (the concurrent mining service) computes them
    once per dataset version and skips two O(n) passes per job.
    """

    def __init__(self, cluster, table, num_partitions=None, codec=None,
                 transform=None):
        if len(table) == 0:
            raise EngineError("cannot mine an empty table")
        self.cluster = cluster
        self.table = table
        if num_partitions is None:
            num_partitions = (
                cluster.spec.num_executors * cluster.spec.cores_per_executor
            )
        num_partitions = max(1, min(num_partitions, len(table)))
        #: True when the cluster runs stages on worker processes, so
        #: session data must be reachable through shared memory.
        self.shared = shared = cluster.uses_processes
        #: Zero-copy contiguous blocks of the table; partition kernels
        #: receive these and vectorize over their own column views.  In
        #: process mode the blocks are shared-memory descriptors, so
        #: shipping one to a worker does not copy its data.
        self.partitions = table.partition_blocks(num_partitions,
                                                 shared=shared)
        self.num_partitions = len(self.partitions)
        # Bind the table's shard map to the cluster so placed execution
        # can attribute affinity (and detect dataset-version rebinds).
        cluster.bind_shard_map(table.shard_map(num_partitions))
        n = len(table)
        #: Packed-row codec for the table's dimension domains; the
        #: candidate pipeline runs on packed int64 keys when it fits.
        self.codec = codec if codec is not None else RowCodec.from_table(table)
        self.transform = (
            transform if transform is not None
            else MeasureTransform.fit(table.measure)
        )
        # In process mode the measure and the evolving estimates live
        # in session-owned shared memory: kernels receive descriptors,
        # and the driver's in-place estimate updates are visible to
        # workers through the same pages.
        self._shared_measure = None
        self._shared_estimates = None
        measure = self.transform.transformed
        estimates = np.ones(n, dtype=np.float64)
        if shared:
            self._shared_measure = SharedArray.create(measure)
            measure = self._shared_measure.array
            self._shared_estimates = SharedArray.create(estimates)
            estimates = self._shared_estimates.array
        #: Transformed measure (max-ent preconditioned).
        self.measure = measure
        #: Current per-tuple estimates in transformed space.
        self.estimates = estimates
        #: Per-tuple rule coverage bits (RCT input).
        self.bit_matrix = BitMatrix(n)
        #: Boolean coverage masks per selected rule.
        self.masks = []

    @property
    def num_rows(self):
        return len(self.table)

    def partition_slice(self, partition, array):
        """Slice a session-wide array to one partition's rows."""
        return array[partition.start:partition.stop]

    def measure_ref(self):
        """The measure as a kernel argument.

        A :class:`~repro.engine.shm.SharedArray` descriptor in process
        mode (workers reattach, no copy), the plain array otherwise;
        kernels resolve either through :func:`repro.engine.shm.resolve`.
        """
        if self._shared_measure is not None:
            return self._shared_measure
        return self.measure

    def estimates_ref(self):
        """The current estimates as a kernel argument (see measure_ref)."""
        if self._shared_estimates is not None:
            return self._shared_estimates
        return self.estimates

    @contextmanager
    def shared_ref(self, array):
        """Bind a row/candidate-scale array for one stage's kernels.

        In process mode the array is copied to a transient
        shared-memory segment (one copy total, instead of one pickled
        copy per task inside the kernel partial) and unlinked when the
        block exits; otherwise the array passes through untouched.
        Kernels resolve either via :func:`repro.engine.shm.resolve`.
        """
        if not self.shared:
            yield array
            return
        shared = SharedArray.create(array)
        try:
            yield shared
        finally:
            shared.unlink()

    def close(self):
        """Release session-owned shared-memory segments (idempotent).

        Unlinks the measure/estimates segments this session created;
        the table's column pack is table-owned and outlives the session
        (concurrent jobs on the same dataset share it).  Serial and
        thread modes hold no shared memory, making this a no-op.
        """
        for shared in (self._shared_measure, self._shared_estimates):
            if shared is not None:
                shared.unlink()

    def run_over_data(self, kernel, phase=None, shuffle_data=False,
                      shuffle_output=False, touch_cache=True):
        """Run ``kernel(task_ctx, partition)`` over every data partition.

        Parameters
        ----------
        kernel:
            The per-task function.
        phase:
            Optional phase label for simulated-time attribution.
        shuffle_data:
            Charge each partition's bytes as shuffle output — the cost
            profile of a repartition join over D (Naive SIRUM, §3.2).
        shuffle_output:
            Charge the kernel's declared output bytes at the shuffle
            rate (a reduce follows); implied by ``shuffle_data``.
        touch_cache:
            Account a storage-memory access per partition: free when
            cached, a disk read when evicted (§4.5).
        """
        cluster = self.cluster
        wrapped = _DataStageKernel(kernel, touch_cache, shuffle_data)

        def execute():
            return cluster.run_stage(
                wrapped,
                self.partitions,
                name=phase or "data_stage",
                shuffle_output=shuffle_data or shuffle_output,
            )

        if phase is not None:
            with cluster.phase(phase):
                return execute()
        return execute()

    def add_rule_coverage(self, rule, charge_phase=None):
        """Register a new rule: compute its mask and extend bit arrays.

        The mask is computed per partition via a metered stage (d
        comparisons per tuple — Algorithm 3 lines 1-5) when
        ``charge_phase`` is given, or silently for algorithms whose
        cost model charges matching elsewhere (Baseline SIRUM
        re-evaluates t matches r on every scaling pass instead).
        """
        mask = rule.match_mask(self.table)
        if charge_phase is not None:
            kernel = partial(
                _coverage_kernel, arity=self.table.schema.arity
            )
            self.run_over_data(kernel, phase=charge_phase)
        self.masks.append(mask)
        self.bit_matrix.add_rule(mask)
        return mask
