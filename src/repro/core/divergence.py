"""KL-divergence, entropy and the information-gain estimate.

Thesis §2.3 measures rule-set quality as the KL-divergence between the
(normalized) true measure distribution t[m] and the maximum-entropy
estimate t[m-hat]; §2.4 (Eq. 2.2) scores a candidate rule by the gain
estimate  gain(r) = S_m * log(S_m / S_mhat)  over its covered tuples,
which avoids running iterative scaling per candidate.
"""

import numpy as np

from repro.common.errors import DataError


def kl_divergence(m, mhat):
    """KL-divergence between normalized ``m`` and ``mhat`` (natural log).

    Both arrays are normalized to probability vectors first, matching
    the thesis's "after normalization" usage.  Entries where m is 0
    contribute 0 (0 log 0 = 0); a positive m opposite a zero mhat is
    undefined and raises :class:`DataError` (absolute continuity).
    """
    m = np.asarray(m, dtype=np.float64)
    mhat = np.asarray(mhat, dtype=np.float64)
    if m.shape != mhat.shape:
        raise DataError("kl_divergence requires equal-length arrays")
    if np.any(m < 0) or np.any(mhat < 0):
        raise DataError("kl_divergence requires non-negative inputs")
    m_total = m.sum()
    mhat_total = mhat.sum()
    if m_total <= 0 or mhat_total <= 0:
        raise DataError("kl_divergence requires positive totals")
    p = m / m_total
    q = mhat / mhat_total
    support = p > 0
    if np.any(q[support] <= 0):
        raise DataError("mhat must be positive wherever m is positive")
    return float(np.sum(p[support] * np.log(p[support] / q[support])))


def entropy(values):
    """Shannon entropy (natural log) of a normalized value vector."""
    values = np.asarray(values, dtype=np.float64)
    if np.any(values < 0):
        raise DataError("entropy requires non-negative inputs")
    total = values.sum()
    if total <= 0:
        raise DataError("entropy requires a positive total")
    p = values / total
    p = p[p > 0]
    return float(-np.sum(p * np.log(p)))


def information_gain(sum_m, sum_mhat):
    """Candidate-rule gain estimate, thesis Eq. 2.2.

    ``sum_m`` and ``sum_mhat`` are the covered tuples' measure and
    estimate totals.  A rule whose support is underestimated
    (sum_m > sum_mhat) gets positive gain; a rule already in the rule
    set satisfies sum_m == sum_mhat and gets gain 0.
    """
    if sum_m <= 0:
        # 0 * log(0/x) = 0; negative sums cannot occur on transformed
        # measures but are clamped defensively.
        return 0.0
    if sum_mhat <= 0:
        raise DataError("sum_mhat must be positive when sum_m is positive")
    return float(sum_m * np.log(sum_m / sum_mhat))


def rule_set_information_gain(m, mhat_root_only, mhat_full):
    """Information gain of a rule set (thesis §5.1).

    Defined as the KL-divergence using just the all-wildcards rule minus
    the KL-divergence using the full rule set.
    """
    return kl_divergence(m, mhat_root_only) - kl_divergence(m, mhat_full)
