"""Cube-lattice operations: ancestor enumeration and column grouping.

Thesis §2.5 defines the cube lattice CL(t) of a tuple; §4.3 splits
ancestor generation into multiple stages along *column groups* so that
shared ancestors are merged (reduced) before their senior ancestors are
generated, shrinking the number of emitted key-value pairs.  Appendix A
proves the staged generation emits exactly the same candidate set with
the same aggregates; ``tests/core/test_lattice.py`` checks that theorem
property-based.
"""

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.core.rule import Rule, WILDCARD


def cube_lattice(rule, include_self=True):
    """All elements of CL(rule): the rule and every ancestor."""
    return list(rule.ancestors(include_self=include_self))


def lattice_size(rule):
    """|CL(rule)| = 2^(number of bound attributes)."""
    return 1 << rule.num_bound


def make_column_groups(arity, num_groups, seed=None):
    """Randomly partition dimension positions into ordered groups.

    Thesis §4.3: "we randomly partition the dimension attributes into g
    ordered parts".  With ``seed=None`` the split is the deterministic
    even split in attribute order (used by tests); otherwise positions
    are shuffled first.
    """
    if not 1 <= num_groups <= arity:
        raise ConfigError(
            "num_groups must be between 1 and the number of dimensions"
        )
    positions = list(range(arity))
    if seed is not None:
        make_rng(seed).shuffle(positions)
    groups = []
    for g in range(num_groups):
        start = arity * g // num_groups
        stop = arity * (g + 1) // num_groups
        groups.append(tuple(sorted(positions[start:stop])))
    return [g for g in groups if g]


def ancestors_within_group(rule, group):
    """Ancestors of ``rule`` whose new wildcards lie only in ``group``.

    Yields ``rule`` itself (empty subset) plus every rule obtained by
    wildcarding a non-empty subset of the rule's bound positions inside
    ``group``.  This is the per-stage mapper of thesis §4.3.
    """
    bound_in_group = [p for p in group if rule.values[p] != WILDCARD]
    for mask in range(1 << len(bound_in_group)):
        values = list(rule.values)
        for bit, pos in enumerate(bound_in_group):
            if mask & (1 << bit):
                values[pos] = WILDCARD
        yield Rule(values)


def generate_ancestors_single_stage(weighted_rules, multiplicities=None):
    """Naive one-round ancestor generation with aggregate merging.

    Parameters
    ----------
    weighted_rules:
        Mapping of :class:`Rule` to a numeric aggregate vector (tuple of
        floats) — typically (sum_m, sum_mhat, count) per LCA.
    multiplicities:
        Optional mapping of rule -> number of *instances* the rule
        stands for (its (t, ts) pair count).  The thesis's mappers emit
        ancestors once per LCA instance of the |s| x |D| join, so the
        emission count — the Figure 5.8 metric and the mappers' CPU
        cost — is instance-weighted.  Defaults to 1 per rule.

    Returns
    -------
    (aggregates, emitted):
        ``aggregates`` maps every rule in the union of the cube lattices
        to the elementwise sum of its descendants' inputs; ``emitted``
        counts mapper output pairs.
    """
    aggregates = {}
    emitted = 0
    for rule, agg in weighted_rules.items():
        weight = 1 if multiplicities is None else multiplicities.get(rule, 1)
        count = 0
        for ancestor in rule.ancestors():
            count += 1
            _merge(aggregates, ancestor, agg)
        emitted += int(weight) * count
    return aggregates, emitted


def generate_ancestors_staged(weighted_rules, groups, multiplicities=None):
    """Column-grouped multi-stage ancestor generation (thesis §4.3).

    Stage ``i`` takes the merged output of stage ``i-1`` and wildcards
    subsets of group ``i``'s attributes.  Because merging (the reduce)
    happens between stages, shared ancestors are emitted once rather
    than once per descendant; Appendix A shows the final aggregates are
    identical to the single-stage computation.

    Emission counting mirrors the real pipeline: the first stage's
    mappers process LCA *instances* (``multiplicities``-weighted), while
    later stages process the previous stage's reduced (distinct)
    output — which is exactly where the savings come from.

    Returns the same ``(aggregates, emitted)`` pair as
    :func:`generate_ancestors_single_stage`.
    """
    current = dict(weighted_rules)
    emitted = 0
    first = True
    for group in groups:
        next_stage = {}
        for rule, agg in current.items():
            weight = 1
            if first and multiplicities is not None:
                weight = int(multiplicities.get(rule, 1))
            count = 0
            for ancestor in ancestors_within_group(rule, group):
                count += 1
                _merge(next_stage, ancestor, agg)
            emitted += weight * count
        current = next_stage
        first = False
    return current, emitted


def _merge(aggregates, rule, agg):
    existing = aggregates.get(rule)
    if existing is None:
        aggregates[rule] = tuple(agg)
    else:
        aggregates[rule] = tuple(a + b for a, b in zip(existing, agg))
