"""Candidate rule generation and gain computation.

Three generation modes:

- sample-pruned (default, thesis §3.1.1): ancestors of LCA(s, D) with
  the multiplicity correction, ancestor generation either single-stage
  or column-grouped (§4.3);
- exhaustive (§3.1, used by the cube-exploration experiments where
  pruning is disabled): the full data cube of D, computed per cuboid;
- the shared scoring step: Eq. 2.2 gain per candidate.
"""

import numpy as np

from repro.common.errors import DataError
from repro.core import lattice
from repro.core.divergence import information_gain
from repro.core.rule import Rule, WILDCARD
from repro.core.sampling import sample_match_counts


class CandidateSet:
    """Scored candidate rules from one mining iteration.

    Candidates are held either as explicit :class:`Rule` objects
    (``rules``) or as packed int64 keys plus a codec (``keys`` +
    ``codec``); the packed form avoids materializing millions of Rule
    objects on high-dimensional workloads.  :meth:`rule_at` decodes on
    demand either way.
    """

    def __init__(self, rules, sums_m, sums_mhat, counts, gains,
                 emitted_pairs, keys=None, codec=None):
        if rules is None and (keys is None or codec is None):
            raise DataError("provide rules, or keys plus a codec")
        self.rules = rules
        self.keys = keys
        self.codec = codec
        self.sums_m = sums_m
        self.sums_mhat = sums_mhat
        self.counts = counts
        self.gains = gains
        #: Mapper-emitted (rule, aggregate) pairs during ancestor
        #: generation — the quantity of thesis Figure 5.8.
        self.emitted_pairs = emitted_pairs

    def __len__(self):
        if self.rules is not None:
            return len(self.rules)
        return int(self.keys.size)

    def rule_at(self, index):
        """The candidate rule at ``index``, decoded if packed."""
        if self.rules is not None:
            return self.rules[index]
        return Rule(self.codec.unpack(int(self.keys[index])))

    def order_by_gain(self):
        """Candidate indices sorted by descending gain."""
        return np.argsort(-self.gains, kind="stable")

    def best(self):
        if len(self) == 0:
            raise DataError("no candidate rules were generated")
        return int(np.argmax(self.gains))


def generate_from_lcas(lca_aggregates, sample_rows, column_groups=None, tc=None):
    """Candidate rules from aggregated LCAs (thesis §3.1.1 + §4.3).

    Parameters
    ----------
    lca_aggregates:
        Mapping lca tuple -> [sum_m, sum_mhat, count] from the pruning
        step (already merged across blocks).
    sample_rows:
        The sample s, for the multiplicity correction.
    column_groups:
        None for single-stage ancestor generation; otherwise the
        ordered attribute groups of §4.3 (FastAncestor SIRUM).
    tc:
        Optional task context; charged one op per emitted pair plus the
        correction's matching cost.
    """
    weighted = {Rule(key): tuple(agg) for key, agg in lca_aggregates.items()}
    multiplicities = {rule: int(agg[2]) for rule, agg in weighted.items()}
    if column_groups is None:
        aggregates, emitted = lattice.generate_ancestors_single_stage(
            weighted, multiplicities
        )
    else:
        aggregates, emitted = lattice.generate_ancestors_staged(
            weighted, column_groups, multiplicities
        )

    rules = list(aggregates.keys())
    raw = np.asarray([aggregates[r] for r in rules], dtype=np.float64)
    candidate_rows = [r.values for r in rules]
    multiplicities = sample_match_counts(candidate_rows, sample_rows)
    if np.any(multiplicities == 0):
        raise DataError(
            "every candidate must match at least one sample tuple by "
            "construction; the correction found one that does not"
        )
    corrected = raw / multiplicities[:, None]
    gains = _gains(corrected[:, 0], corrected[:, 1])
    if tc is not None:
        tc.add_ops(emitted)
        tc.add_ops(len(rules) * len(sample_rows))
        tc.add_records(len(rules))
    return CandidateSet(
        rules,
        corrected[:, 0],
        corrected[:, 1],
        corrected[:, 2],
        gains,
        emitted,
    )


def generate_exhaustive(columns, measure, estimates, tc=None):
    """Full-cube candidate generation over a data block (no pruning).

    Computes every cuboid of the block: for each of the 2^d wildcard
    patterns, groups the block by the bound attributes and aggregates
    (SUM(m), SUM(m-hat), COUNT).  This is the simple MapReduce data-cube
    algorithm of [25] that Naive SIRUM uses (§3.1) and the mode the
    cube-exploration evaluation runs in (§5.6.2).

    Returns (aggregates dict, emitted pair count).
    """
    from repro.core.codec import RowCodec, group_packed, group_rows_fallback

    n = measure.size
    d = len(columns)
    if d > 20:
        raise DataError(
            "exhaustive generation over %d dimensions would enumerate "
            "2^%d cuboids; use sample-based pruning" % (d, d)
        )
    aggregates = {}
    emitted = n * (1 << d)
    weights = [measure, estimates, np.ones(n, dtype=np.float64)]
    codec = RowCodec([int(col.max()) + 1 if col.size else 1 for col in columns])
    terms = None
    if codec.fits:
        terms = [
            (columns[j].astype(np.int64) + 1) << codec.offsets[j]
            for j in range(d)
        ]
    stacked = np.column_stack(columns) if d else np.empty((n, 0), dtype=np.int64)
    for pattern in range(1 << d):
        bound = [j for j in range(d) if not pattern & (1 << j)]
        if terms is not None:
            keys = np.zeros(n, dtype=np.int64)
            for j in bound:
                keys += terms[j]
            uniq, (sums_m, sums_mhat, counts) = group_packed(keys, weights)
            rows = codec.unpack_batch(uniq)
        else:
            projected = stacked.copy()
            for j in range(d):
                if pattern & (1 << j):
                    projected[:, j] = WILDCARD
            rows, (sums_m, sums_mhat, counts) = group_rows_fallback(
                projected, weights
            )
        for row, sm, smh, c in zip(rows, sums_m, sums_mhat, counts):
            key = tuple(int(v) for v in row)
            existing = aggregates.get(key)
            if existing is None:
                aggregates[key] = [sm, smh, c]
            else:
                existing[0] += sm
                existing[1] += smh
                existing[2] += c
    if tc is not None:
        # Each tuple emits 2^d cuboid cells; hash-add per emission.
        tc.add_ops(emitted * 2)
        tc.add_records(n)
    return aggregates, emitted


def merge_exhaustive(dicts):
    """Reduce-side merge of per-block exhaustive cube aggregates."""
    merged = {}
    for acc in dicts:
        for key, agg in acc.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = list(agg)
            else:
                existing[0] += agg[0]
                existing[1] += agg[1]
                existing[2] += agg[2]
    return merged


def candidate_set_from_cube(cube_aggregates, emitted):
    """Score a merged exhaustive cube into a :class:`CandidateSet`."""
    rules = [Rule(key) for key in cube_aggregates]
    raw = np.asarray(
        [cube_aggregates[r.values] for r in rules], dtype=np.float64
    )
    if raw.size == 0:
        raise DataError("exhaustive generation produced no candidates")
    gains = _gains(raw[:, 0], raw[:, 1])
    return CandidateSet(rules, raw[:, 0], raw[:, 1], raw[:, 2], gains, emitted)


def _gains(sums_m, sums_mhat):
    """Vectorized Eq. 2.2 gains; semantics of :func:`information_gain`."""
    sums_m = np.asarray(sums_m, dtype=np.float64)
    sums_mhat = np.asarray(sums_mhat, dtype=np.float64)
    gains = np.zeros(sums_m.size, dtype=np.float64)
    positive = sums_m > 0
    if np.any(sums_mhat[positive] <= 0):
        raise DataError(
            "estimate totals must be positive wherever measure totals are"
        )
    gains[positive] = sums_m[positive] * np.log(
        sums_m[positive] / sums_mhat[positive]
    )
    return gains


def select_rules(candidates, existing_rules, rules_per_iteration=1,
                 top_fraction=0.01, min_gain_ratio=0.5):
    """Pick the rules to add this iteration (thesis §4.4).

    The most informative rule is always taken.  With
    ``rules_per_iteration`` > 1, further rules are taken from the top of
    the gain ordering provided each is (a) pairwise disjoint from every
    rule already picked this iteration, (b) has gain at least
    ``min_gain_ratio`` times the top gain, and (c) ranks within the top
    ``top_fraction`` of candidates.

    Rules already in the rule set have gain 0 and are skipped.
    """
    if rules_per_iteration < 1:
        raise DataError("rules_per_iteration must be at least 1")
    existing = set(existing_rules)
    order = candidates.order_by_gain()
    cutoff_rank = max(1, int(len(order) * top_fraction))
    picked = []
    top_gain = None
    for rank, idx in enumerate(order):
        rule = candidates.rule_at(idx)
        gain = float(candidates.gains[idx])
        if rule in existing:
            continue
        if gain <= 0.0:
            break
        if not picked:
            picked.append((rule, gain))
            top_gain = gain
            if rules_per_iteration == 1:
                break
            continue
        if rank >= cutoff_rank:
            break
        if gain < min_gain_ratio * top_gain:
            break
        if all(rule.is_disjoint(prev) for prev, _ in picked):
            picked.append((rule, gain))
            if len(picked) >= rules_per_iteration:
                break
    return picked
