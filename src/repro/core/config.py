"""Mining configuration and the Table 4.2 variant presets."""

from repro.common.errors import ConfigError


class SirumConfig:
    """All knobs of the SIRUM miner.

    Parameters
    ----------
    k:
        Number of rules to generate *in addition to* the all-wildcards
        rule added first (thesis Algorithm 2).
    sample_size:
        |s|, the candidate-pruning sample size (default 64, §3.3).
    epsilon:
        Iterative-scaling convergence threshold (default 0.01, §5.1.1).
    use_broadcast_join:
        Broadcast the sample/rule list instead of shuffling D (§3.2).
        Off only for Naive SIRUM.
    use_rct:
        Fast iterative scaling via the Rule Coverage Table (§4.1).
    use_fast_pruning:
        Inverted-index LCA computation (§4.2).
    num_column_groups:
        None for single-stage ancestor generation; an integer >= 2
        enables the §4.3 column-grouped multi-stage pipeline.
    rules_per_iteration:
        Mutually-disjoint rules added per iteration (§4.4).
    top_fraction / min_gain_ratio:
        Multi-rule eligibility: extra rules must rank in the top
        fraction of candidates and reach this fraction of the top gain.
    exhaustive:
        Disable sample-based pruning and enumerate the full data cube
        (the §5.6.2 cube-exploration setting).
    sample_data_fraction:
        "SIRUM on sample data" (§4.5): mine over this fraction of D.
    target_kl:
        If set, keep adding rules past ``k`` until the KL-divergence
        drops to this value (the *-variants of §5.5) or ``max_rules``
        is reached.
    max_rules:
        Hard cap on generated rules (default 4 * k).
    eliminate_redundant:
        Drop candidate rules whose support set equals a more general
        candidate's (thesis §7 future work); the surviving rules'
        gains — and hence the mined rule set's quality — are unchanged.
    reset_lambdas:
        Re-start all multipliers at 1 whenever a rule is added — the
        prior-work behaviour of [29] that §5.6.2 shows is expensive.
    num_partitions:
        Input partitions; defaults to executors x cores (the thesis
        uses 384 on 16 x 24 cores).
    seed:
        Seed for sampling and column-group shuffling.
    """

    def __init__(
        self,
        k=10,
        sample_size=64,
        epsilon=0.01,
        use_broadcast_join=True,
        use_rct=False,
        use_fast_pruning=False,
        num_column_groups=None,
        rules_per_iteration=1,
        top_fraction=0.01,
        min_gain_ratio=0.5,
        exhaustive=False,
        sample_data_fraction=None,
        target_kl=None,
        max_rules=None,
        eliminate_redundant=False,
        reset_lambdas=False,
        num_partitions=None,
        max_scaling_iterations=10_000,
        seed=0,
    ):
        if k < 1:
            raise ConfigError("k must be at least 1")
        if sample_size < 1:
            raise ConfigError("sample_size must be at least 1")
        if epsilon <= 0:
            raise ConfigError("epsilon must be positive")
        if rules_per_iteration < 1:
            raise ConfigError("rules_per_iteration must be at least 1")
        if not 0.0 < top_fraction <= 1.0:
            raise ConfigError("top_fraction must be in (0, 1]")
        if not 0.0 <= min_gain_ratio <= 1.0:
            raise ConfigError("min_gain_ratio must be in [0, 1]")
        if num_column_groups is not None and num_column_groups < 2:
            raise ConfigError("num_column_groups must be None or >= 2")
        if sample_data_fraction is not None and not 0.0 < sample_data_fraction <= 1.0:
            raise ConfigError("sample_data_fraction must be in (0, 1]")
        if target_kl is not None and target_kl < 0:
            raise ConfigError("target_kl must be non-negative")
        if max_rules is not None and max_rules < k:
            raise ConfigError("max_rules must be at least k")
        if num_partitions is not None and num_partitions < 1:
            raise ConfigError("num_partitions must be at least 1")
        if max_scaling_iterations < 1:
            raise ConfigError("max_scaling_iterations must be at least 1")
        self.k = k
        self.sample_size = sample_size
        self.epsilon = epsilon
        self.use_broadcast_join = use_broadcast_join
        self.use_rct = use_rct
        self.use_fast_pruning = use_fast_pruning
        self.num_column_groups = num_column_groups
        self.rules_per_iteration = rules_per_iteration
        self.top_fraction = top_fraction
        self.min_gain_ratio = min_gain_ratio
        self.exhaustive = exhaustive
        self.sample_data_fraction = sample_data_fraction
        self.target_kl = target_kl
        self.max_rules = max_rules if max_rules is not None else 4 * k
        self.eliminate_redundant = eliminate_redundant
        self.reset_lambdas = reset_lambdas
        self.num_partitions = num_partitions
        self.max_scaling_iterations = max_scaling_iterations
        self.seed = seed

    def replace(self, **overrides):
        """Return a copy with the given fields replaced."""
        fields = dict(self.__dict__)
        if fields["max_rules"] == 4 * fields["k"] and "max_rules" not in overrides:
            # Keep the default max_rules tracking k when only k changes.
            fields.pop("max_rules")
        fields.update(overrides)
        return SirumConfig(**fields)


#: Optimization bundles of thesis Table 4.2, applied over a base config.
VARIANT_FLAGS = {
    "naive": {"use_broadcast_join": False},
    "baseline": {},
    "rct": {"use_rct": True},
    "fastpruning": {"use_fast_pruning": True},
    "fastancestor": {"num_column_groups": 2},
    "multirule": {"rules_per_iteration": 2},
    "optimized": {
        "use_rct": True,
        "use_fast_pruning": True,
        "num_column_groups": 2,
        "rules_per_iteration": 2,
    },
}


def variant_config(name, base=None, **overrides):
    """Build the config for a named Table 4.2 variant."""
    try:
        flags = VARIANT_FLAGS[name]
    except KeyError:
        raise ConfigError(
            "unknown variant %r; choose from %s"
            % (name, ", ".join(sorted(VARIANT_FLAGS)))
        ) from None
    base = base or SirumConfig()
    merged = dict(flags)
    merged.update(overrides)
    return base.replace(**merged)
