"""Iterative scaling — thesis Algorithm 1.

Solves the maximum-entropy problem incrementally: every estimate is a
product of per-rule multipliers, t[m-hat] = prod_{r: t matches r} λ(r),
and the algorithm repeatedly rescales the multiplier of the rule whose
average estimate deviates most from its true average until every rule's
relative deviation is below ε.

This module is the *centralized* fixpoint computation over explicit
coverage masks; the distributed cost of running it against D every loop
(what Baseline SIRUM does) versus against the compact RCT (thesis §4.1)
is accounted by the miner, which reports the number of data passes this
function performed.
"""

import numpy as np

from repro.common.errors import ConvergenceError, DataError

DEFAULT_EPSILON = 0.01
DEFAULT_MAX_ITERATIONS = 10_000


class ScalingResult:
    """Outcome of an iterative-scaling run."""

    def __init__(self, lambdas, estimates, iterations, data_passes):
        self.lambdas = lambdas
        self.estimates = estimates
        self.iterations = iterations
        #: Number of conceptual passes over D the distributed baseline
        #: would have made (2 per loop iteration: one to compute the
        #: m-hat(r) averages, one to update matching tuples).
        self.data_passes = data_passes


def iterative_scale(
    masks,
    measure,
    lambdas=None,
    estimates=None,
    epsilon=DEFAULT_EPSILON,
    max_iterations=DEFAULT_MAX_ITERATIONS,
):
    """Run Algorithm 1 until all rules converge within ``epsilon``.

    Parameters
    ----------
    masks:
        List of boolean coverage arrays, one per rule in R, each of the
        dataset's length.  ``masks[0]`` is normally the all-wildcards
        rule covering everything.
    measure:
        Transformed measure column (non-negative, positive total).
    lambdas:
        Existing multipliers to carry over (thesis §5.6.2 shows carrying
        them over beats resetting, as prior work [29] did).  New rules
        beyond ``len(lambdas)`` start at 1.
    estimates:
        Existing t[m-hat] column consistent with ``lambdas``; if None it
        is recomputed as the product of multipliers.
    epsilon:
        Relative convergence threshold on |m(r) - m-hat(r)| / |m(r)|.
    max_iterations:
        Safety budget; exceeding it raises :class:`ConvergenceError`.
    """
    measure = np.asarray(measure, dtype=np.float64)
    n = measure.size
    if n == 0:
        raise DataError("iterative scaling needs a non-empty dataset")
    masks = [np.asarray(mask, dtype=bool) for mask in masks]
    for mask in masks:
        if mask.size != n:
            raise DataError("coverage mask length mismatch")
    num_rules = len(masks)
    if num_rules == 0:
        raise DataError("iterative scaling needs at least one rule")
    if epsilon <= 0:
        raise DataError("epsilon must be positive")

    lam = np.ones(num_rules, dtype=np.float64)
    if lambdas is not None:
        lambdas = np.asarray(lambdas, dtype=np.float64)
        lam[: lambdas.size] = lambdas

    if estimates is None:
        estimates = np.ones(n, dtype=np.float64)
        for i, mask in enumerate(masks):
            if lam[i] != 1.0:
                estimates[mask] *= lam[i]
    else:
        estimates = np.asarray(estimates, dtype=np.float64).copy()

    counts = np.array([int(mask.sum()) for mask in masks], dtype=np.float64)
    if np.any(counts == 0):
        raise DataError("every rule must cover at least one tuple")
    targets = np.array(
        [float(measure[mask].sum()) for mask in masks], dtype=np.float64
    )
    target_means = targets / counts

    iterations = 0
    while True:
        if iterations >= max_iterations:
            raise ConvergenceError(
                "iterative scaling did not converge in %d iterations"
                % max_iterations
            )
        iterations += 1
        estimate_means = np.array(
            [float(estimates[mask].mean()) for mask in masks]
        )
        diffs = _relative_diffs(target_means, estimate_means)
        next_rule = int(np.argmax(diffs))
        if diffs[next_rule] <= epsilon:
            break
        factor = target_means[next_rule] / estimate_means[next_rule]
        lam[next_rule] *= factor
        estimates[masks[next_rule]] *= factor
    return ScalingResult(lam, estimates, iterations, data_passes=2 * iterations)


def _relative_diffs(target_means, estimate_means):
    """|m(r) - m-hat(r)| / |m(r)| with guarded zero targets.

    A rule whose covered measure total is zero is driven to (and kept
    at) a zero estimate by an absolute criterion, since the relative
    one is undefined.
    """
    diffs = np.empty_like(target_means)
    for i, (target, estimate) in enumerate(zip(target_means, estimate_means)):
        if target != 0.0:
            diffs[i] = abs(target - estimate) / abs(target)
        else:
            diffs[i] = abs(estimate)
    return diffs
