"""Materialized cube: per-cuboid group aggregates plus queries."""

from repro.common.errors import DataError
from repro.core.rule import WILDCARD
from repro.cube.cuboid import CuboidLattice, popcount, positions_of


class GroupAggregate:
    """Count and measure sum for one group (extendable per measure)."""

    __slots__ = ("count", "sum_measure")

    def __init__(self, count=0, sum_measure=0.0):
        self.count = count
        self.sum_measure = sum_measure

    def add(self, measure_value):
        self.count += 1
        self.sum_measure += measure_value

    def merge(self, other):
        self.count += other.count
        self.sum_measure += other.sum_measure
        return self

    @property
    def avg(self):
        if self.count == 0:
            raise DataError("average of an empty group is undefined")
        return self.sum_measure / self.count

    def copy(self):
        return GroupAggregate(self.count, self.sum_measure)

    def __eq__(self, other):
        return (
            isinstance(other, GroupAggregate)
            and self.count == other.count
            and abs(self.sum_measure - other.sum_measure) < 1e-9
        )

    def __repr__(self):
        return "GroupAggregate(count=%d, sum=%.6g)" % (
            self.count,
            self.sum_measure,
        )


class MaterializedCube:
    """A (possibly partial) collection of materialized cuboids.

    ``cuboids`` maps cuboid mask -> {group key tuple -> GroupAggregate}.
    Group keys hold the encoded values of the cuboid's grouped
    attributes, ordered by attribute position.
    """

    def __init__(self, arity, cuboids):
        self.lattice = CuboidLattice(arity)
        self.arity = arity
        self.cuboids = dict(cuboids)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def has_cuboid(self, mask):
        return mask in self.cuboids

    def cuboid(self, mask):
        try:
            return self.cuboids[mask]
        except KeyError:
            raise DataError("cuboid %r is not materialized" % (mask,)) from None

    def num_groups(self):
        """Total group count across materialized cuboids."""
        return sum(len(groups) for groups in self.cuboids.values())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def point(self, rule_values):
        """Aggregate for one rule (wildcard = aggregated attribute).

        ``rule_values`` is a full-arity tuple mixing encoded values and
        :data:`WILDCARD`; the matching cuboid is the one grouping
        exactly the bound positions.  Returns a GroupAggregate or None
        if the group is empty.
        """
        if len(rule_values) != self.arity:
            raise DataError("point query arity mismatch")
        mask = 0
        key = []
        for j, value in enumerate(rule_values):
            if value != WILDCARD:
                mask |= 1 << j
                key.append(value)
        groups = self.cuboid(mask)
        return groups.get(tuple(key))

    def slice(self, mask, fixed):
        """All groups of cuboid ``mask`` matching the ``fixed`` values.

        ``fixed`` maps attribute position -> required encoded value;
        every position must be grouped in ``mask``.  Returns a list of
        (key, GroupAggregate).
        """
        positions = positions_of(mask)
        for position in fixed:
            if position not in positions:
                raise DataError(
                    "slice position %d is aggregated in cuboid %r"
                    % (position, mask)
                )
        index_of = {pos: i for i, pos in enumerate(positions)}
        out = []
        for key, agg in self.cuboid(mask).items():
            if all(key[index_of[pos]] == v for pos, v in fixed.items()):
                out.append((key, agg))
        return out

    def roll_up(self, from_mask, to_mask):
        """Aggregate cuboid ``from_mask`` down to ancestor ``to_mask``.

        Returns the coarser cuboid's groups computed *from* the finer
        one; used by partial cubes to answer unmaterialized cuboids.
        """
        if not self.lattice.is_ancestor(to_mask, from_mask):
            raise DataError("roll_up target must be an ancestor cuboid")
        source = self.cuboid(from_mask)
        out = {}
        for key, agg in source.items():
            coarse_key = self.lattice.project_key(key, from_mask, to_mask)
            if coarse_key in out:
                out[coarse_key].merge(agg.copy())
            else:
                out[coarse_key] = agg.copy()
        return out

    # ------------------------------------------------------------------
    # Validation helpers (used heavily by tests)
    # ------------------------------------------------------------------

    def consistent_with_base(self):
        """True iff every cuboid equals a roll-up of the base cuboid."""
        base = self.lattice.base_mask
        if base not in self.cuboids:
            return False
        for mask in self.cuboids:
            if mask == base:
                continue
            expected = self.roll_up(base, mask)
            if self.cuboids[mask] != expected:
                return False
        return True

    def __eq__(self, other):
        return (
            isinstance(other, MaterializedCube)
            and self.arity == other.arity
            and self.cuboids.keys() == other.cuboids.keys()
            and all(
                self.cuboids[mask] == other.cuboids[mask]
                for mask in self.cuboids
            )
        )

    def __repr__(self):
        return "MaterializedCube(arity=%d, cuboids=%d, groups=%d)" % (
            self.arity,
            len(self.cuboids),
            self.num_groups(),
        )
