"""Four cube-computation algorithms producing identical results.

All take a :class:`~repro.data.table.Table` and return a
:class:`~repro.cube.materialized.MaterializedCube` over the requested
cuboids.  They differ — as in the literature the thesis cites — in how
much work is shared between cuboids:

``naive_cube``
    One full pass over the rows per cuboid (the 2^d independent
    group-bys a SQL engine without CUBE support would run).
``hash_cube``
    Smallest-parent computation (Agarwal et al. [3]): compute the base
    cuboid from the data, then every other cuboid by hashing the rows
    of its *smallest* already-computed parent.
``sort_cube``
    Pipe-sort style (Lee et al. [22]): cover the lattice with root-to-
    apex paths; each path needs one sort of the base cuboid after which
    every cuboid on the path falls out of a single streaming pass.
``buc_cube``
    Bottom-Up Cube with iceberg pruning: recursively partitions the
    data, skipping any partition below ``min_support`` — the downward-
    closure pruning that SIRUM's gain function notably *lacks* (§3.1.1).

Each returns per-cuboid ``{key: GroupAggregate}`` maps; an optional
``stats`` dict records work counters so benchmarks can compare the
algorithms' economics.
"""

from repro.common.errors import DataError
from repro.cube.cuboid import CuboidLattice, popcount, positions_of
from repro.cube.materialized import GroupAggregate, MaterializedCube


def _encoded_rows(table):
    """Rows as (dimension-code tuple, measure float) pairs."""
    columns = table.dimension_columns()
    measure = table.measure
    n = len(table)
    return [
        (tuple(int(col[i]) for col in columns), float(measure[i]))
        for i in range(n)
    ]


def _aggregate(pairs, positions):
    """Hash-aggregate (key, measure) pairs onto the kept positions."""
    groups = {}
    for codes, value in pairs:
        key = tuple(codes[j] for j in positions)
        agg = groups.get(key)
        if agg is None:
            groups[key] = agg = GroupAggregate()
        agg.add(value)
    return groups


# ----------------------------------------------------------------------
# Naive: one pass per cuboid
# ----------------------------------------------------------------------


def naive_cube(table, masks=None, stats=None):
    """Compute each requested cuboid with an independent scan."""
    lattice = CuboidLattice(table.schema.arity)
    masks = lattice.all_masks() if masks is None else list(masks)
    rows = _encoded_rows(table)
    cuboids = {}
    tuples_read = 0
    for mask in masks:
        cuboids[mask] = _aggregate(rows, positions_of(mask))
        tuples_read += len(rows)
    if stats is not None:
        stats["tuples_read"] = tuples_read
        stats["passes"] = len(masks)
    return MaterializedCube(table.schema.arity, cuboids)


# ----------------------------------------------------------------------
# Hash-based: smallest parent
# ----------------------------------------------------------------------


def hash_cube(table, masks=None, stats=None):
    """Compute cuboids from their smallest materialized parent.

    The base cuboid is always materialized (it is every cuboid's
    ancestor source); requested coarser cuboids are computed finest-
    first so each can pick the smallest parent already available.
    """
    arity = table.schema.arity
    lattice = CuboidLattice(arity)
    requested = set(lattice.all_masks() if masks is None else masks)
    rows = _encoded_rows(table)
    base_mask = lattice.base_mask
    cuboids = {base_mask: _aggregate(rows, positions_of(base_mask))}
    tuples_read = len(rows)

    order = sorted(requested - {base_mask}, key=popcount, reverse=True)
    for mask in order:
        parent = _smallest_parent(mask, cuboids, lattice)
        source = cuboids[parent]
        groups = {}
        for key, agg in source.items():
            coarse_key = lattice.project_key(key, parent, mask)
            if coarse_key in groups:
                groups[coarse_key].merge(agg.copy())
            else:
                groups[coarse_key] = agg.copy()
        cuboids[mask] = groups
        tuples_read += len(source)
    if stats is not None:
        stats["tuples_read"] = tuples_read
        stats["passes"] = 1 + len(order)
    if masks is not None and base_mask not in requested:
        del cuboids[base_mask]
    return MaterializedCube(arity, cuboids)


def _smallest_parent(mask, cuboids, lattice):
    """Pick the materialized strict descendant with the fewest groups."""
    best = None
    best_size = None
    for candidate, groups in cuboids.items():
        if candidate != mask and lattice.is_ancestor(mask, candidate):
            if best_size is None or len(groups) < best_size:
                best = candidate
                best_size = len(groups)
    if best is None:
        raise DataError("no materialized parent for cuboid %r" % (mask,))
    return best


# ----------------------------------------------------------------------
# Sort-based: shared sorts along lattice paths
# ----------------------------------------------------------------------


def sort_cube(table, stats=None):
    """Pipe-sort style full cube via shared sorted orders.

    The lattice is covered by prefix chains: for every subset S of
    attributes (as a sorted position list), the chain of its prefixes
    S[:len], S[:len-1], ..., [] is computable from one pass over data
    sorted by S.  We pick chains greedily so each sort covers as many
    not-yet-computed cuboids as possible, then stream each sorted run
    once, emitting aggregates at every prefix boundary.
    """
    arity = table.schema.arity
    lattice = CuboidLattice(arity)
    rows = _encoded_rows(table)
    base = _aggregate(rows, positions_of(lattice.base_mask))
    base_items = list(base.items())

    remaining = set(lattice.all_masks())
    chains = []
    # Longest-first: each base-level ordering covers its whole prefix chain.
    for mask in sorted(remaining, key=popcount, reverse=True):
        if mask not in remaining:
            continue
        order = positions_of(mask)
        chain = []
        for prefix_length in range(len(order), -1, -1):
            prefix_mask = 0
            for position in order[:prefix_length]:
                prefix_mask |= 1 << position
            if prefix_mask in remaining:
                chain.append((prefix_length, prefix_mask))
                remaining.discard(prefix_mask)
        chains.append((order, chain))

    cuboids = {}
    sorts = 0
    tuples_read = 0
    for order, chain in chains:
        index_of = {pos: i for i, pos in enumerate(positions_of(lattice.base_mask))}
        sort_key = lambda item: tuple(item[0][index_of[p]] for p in order)
        run = sorted(base_items, key=sort_key)
        sorts += 1
        tuples_read += len(run)
        for prefix_length, prefix_mask in chain:
            groups = {}
            current_key = None
            current = None
            for key, agg in run:
                prefix = tuple(key[index_of[p]] for p in order[:prefix_length])
                if prefix != current_key:
                    current_key = prefix
                    current = groups.get(prefix)
                    if current is None:
                        groups[prefix] = current = GroupAggregate()
                current.merge(agg.copy())
            # Keys must follow attribute-position order, not sort order.
            cuboids[prefix_mask] = _reorder_keys(
                groups, order[:prefix_length]
            )
    if stats is not None:
        stats["sorts"] = sorts
        stats["tuples_read"] = tuples_read
        stats["passes"] = sorts
    return MaterializedCube(arity, cuboids)


def _reorder_keys(groups, order):
    """Convert sort-order keys into attribute-position-order keys."""
    target = sorted(range(len(order)), key=lambda i: order[i])
    if target == list(range(len(order))):
        return groups
    out = {}
    for key, agg in groups.items():
        reordered = tuple(key[i] for i in target)
        if reordered in out:
            out[reordered].merge(agg)
        else:
            out[reordered] = agg
    return out


# ----------------------------------------------------------------------
# BUC: bottom-up with iceberg pruning
# ----------------------------------------------------------------------


def buc_cube(table, min_support=1, stats=None):
    """Bottom-Up Cube computation with minimum-support pruning.

    Produces every group whose count is at least ``min_support``, in
    every cuboid.  With ``min_support=1`` the result equals the full
    cube; larger values give an iceberg cube, pruning entire sub-
    lattices the moment a partition falls below support (valid because
    COUNT is anti-monotone — unlike SIRUM's gain, §3.1.1).
    """
    if min_support < 1:
        raise DataError("min_support must be at least 1")
    arity = table.schema.arity
    CuboidLattice(arity)  # validates arity bounds
    rows = _encoded_rows(table)
    cuboids = {mask: {} for mask in range(1 << arity)}
    counters = {"partitions": 0, "tuples_read": 0}

    if len(rows) >= min_support:
        total = GroupAggregate()
        for _codes, value in rows:
            total.add(value)
        cuboids[0][()] = total
        _buc_recurse(rows, 0, 0, (), arity, min_support, cuboids, counters)

    if stats is not None:
        stats.update(counters)
    empty = [mask for mask, groups in cuboids.items() if not groups]
    for mask in empty:
        if mask != 0:
            del cuboids[mask]
    return MaterializedCube(arity, cuboids)


def _buc_recurse(rows, first_dim, mask, key_prefix, arity, min_support,
                 cuboids, counters):
    """Expand partitions on dimensions >= first_dim (BUC's recursion).

    ``rows`` all share the group values in ``key_prefix`` for the
    attributes in ``mask``.  For each later attribute, partition on its
    values; qualified partitions are emitted and recursed into.
    """
    for dim in range(first_dim, arity):
        partitions = {}
        for codes, value in rows:
            partitions.setdefault(codes[dim], []).append((codes, value))
        counters["tuples_read"] += len(rows)
        child_mask = mask | (1 << dim)
        for code, part in sorted(partitions.items()):
            if len(part) < min_support:
                continue  # prune: no descendant can reach support either
            counters["partitions"] += 1
            key = key_prefix + (code,)
            agg = GroupAggregate()
            for _codes, value in part:
                agg.add(value)
            cuboids[child_mask][key] = agg
            _buc_recurse(
                part, dim + 1, child_mask, key, arity, min_support,
                cuboids, counters,
            )
