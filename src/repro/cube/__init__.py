"""Data-cube computation and querying.

SIRUM's candidate-rule generation *is* a data-cube computation (thesis
§3.1 uses the MapReduce cube algorithm of Nandi et al. [25]), and the
related work chapter situates it against hash-based cube computation
(Agarwal et al. [3]), sort-based distributed computation (Lee et
al. [22]) and partial cubes (Dehne et al. [15]).  This package
implements that family over the columnar :class:`~repro.data.table.Table`:

- :mod:`repro.cube.cuboid` — the group-by lattice (which attribute
  *sets* exist, distinct from the per-value cube lattice of §2.5);
- :mod:`repro.cube.compute` — four algorithms producing identical
  cubes: naive per-cuboid passes, smallest-parent hash computation,
  pipe-sort style shared-sort computation, and BUC with iceberg
  (minimum-support) pruning;
- :mod:`repro.cube.materialized` — the result container plus point /
  slice / roll-up queries;
- :mod:`repro.cube.partial` — greedy selection of a cuboid subset under
  a storage budget, answering queries from the nearest materialized
  ancestor.

All aggregate (count, SUM(m)) per group, the aggregates SIRUM's gain
formula needs.
"""

from repro.cube.compute import buc_cube, hash_cube, naive_cube, sort_cube
from repro.cube.cuboid import CuboidLattice
from repro.cube.materialized import MaterializedCube
from repro.cube.partial import PartialCube, choose_cuboids

__all__ = [
    "CuboidLattice",
    "MaterializedCube",
    "PartialCube",
    "buc_cube",
    "choose_cuboids",
    "hash_cube",
    "naive_cube",
    "sort_cube",
]
