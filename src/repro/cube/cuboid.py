"""The cuboid (group-by) lattice.

A *cuboid* is identified by the set of dimension attributes it groups
by, encoded as a bitmask over attribute positions: bit ``j`` set means
attribute ``A_j`` is grouped (kept); clear means it is aggregated away
(the wildcard column of thesis §2.5).  The full cube over ``d``
attributes has ``2^d`` cuboids; mask ``(1 << d) - 1`` is the base
cuboid (finest) and mask ``0`` is the apex (grand total).
"""

from repro.common.errors import DataError


def popcount(mask):
    """Number of set bits (grouped attributes) in a cuboid mask."""
    return bin(mask).count("1")


def mask_of(positions, arity):
    """Bitmask for an iterable of attribute positions."""
    mask = 0
    for pos in positions:
        if not 0 <= pos < arity:
            raise DataError("attribute position %r out of range" % (pos,))
        mask |= 1 << pos
    return mask


def positions_of(mask):
    """Sorted attribute positions grouped by ``mask``."""
    out = []
    j = 0
    while mask:
        if mask & 1:
            out.append(j)
        mask >>= 1
        j += 1
    return out


class CuboidLattice:
    """Navigation over the ``2^d`` cuboids of a ``d``-attribute cube."""

    def __init__(self, arity):
        if arity < 1:
            raise DataError("a cube needs at least one dimension")
        if arity > 20:
            raise DataError(
                "refusing a %d-attribute cube (2^%d cuboids)" % (arity, arity)
            )
        self.arity = arity
        self.base_mask = (1 << arity) - 1

    def all_masks(self):
        """Every cuboid mask, coarsest (0) to finest."""
        return list(range(self.base_mask + 1))

    def masks_by_level(self):
        """Cuboid masks grouped by number of grouped attributes.

        Returns a list of ``arity + 1`` lists; entry ``l`` holds all
        masks with exactly ``l`` attributes grouped.
        """
        levels = [[] for _ in range(self.arity + 1)]
        for mask in self.all_masks():
            levels[popcount(mask)].append(mask)
        return levels

    def parents(self, mask):
        """Immediate finer cuboids (one more grouped attribute).

        A parent can produce this cuboid by aggregating away exactly one
        attribute — the "compute from smallest parent" candidates.
        """
        out = []
        for j in range(self.arity):
            bit = 1 << j
            if not mask & bit:
                out.append(mask | bit)
        return out

    def children(self, mask):
        """Immediate coarser cuboids (one fewer grouped attribute)."""
        out = []
        for j in range(self.arity):
            bit = 1 << j
            if mask & bit:
                out.append(mask & ~bit)
        return out

    def is_ancestor(self, coarse, fine):
        """True iff ``coarse`` can be computed from ``fine`` by aggregation.

        Holds exactly when coarse's grouped attributes are a subset of
        fine's.
        """
        return coarse & fine == coarse

    def project_key(self, key, from_mask, to_mask):
        """Re-express a group key of ``from_mask`` in cuboid ``to_mask``.

        ``key`` is a tuple holding values for ``from_mask``'s grouped
        attributes in position order.  ``to_mask`` must be an ancestor
        (subset) of ``from_mask``.
        """
        if not self.is_ancestor(to_mask, from_mask):
            raise DataError("project_key target is not an ancestor cuboid")
        from_positions = positions_of(from_mask)
        keep = set(positions_of(to_mask))
        return tuple(
            value
            for position, value in zip(from_positions, key)
            if position in keep
        )

    def __len__(self):
        return self.base_mask + 1

    def __repr__(self):
        return "CuboidLattice(arity=%d, cuboids=%d)" % (self.arity, len(self))
