"""Partial cubes: materialize a cuboid subset, answer the rest by roll-up.

Thesis related work points at partial data cubes for parallel
warehousing (Dehne et al. [15]).  The classic formulation
(Harinarayan / Rajaraman / Ullman's greedy view selection) picks, under
a storage budget, the cuboids whose materialization most reduces the
cost of answering every cuboid query, where an unmaterialized cuboid is
answered by rolling up its cheapest materialized descendant.
"""

from repro.common.errors import DataError
from repro.cube.compute import hash_cube, naive_cube
from repro.cube.cuboid import CuboidLattice


def choose_cuboids(cube, budget_groups):
    """Greedy benefit-per-cost selection of cuboids to materialize.

    Parameters
    ----------
    cube:
        A fully materialized cube (used to read exact per-cuboid group
        counts, playing the role of HRU's size estimates).
    budget_groups:
        Storage budget in total stored groups.  The base cuboid is
        always selected (queries are unanswerable without it) and
        counts against the budget.

    Returns the sorted list of selected cuboid masks.
    """
    lattice = cube.lattice
    base = lattice.base_mask
    sizes = {mask: len(groups) for mask, groups in cube.cuboids.items()}
    if base not in sizes:
        raise DataError("choose_cuboids needs the base cuboid materialized")
    if budget_groups < sizes[base]:
        raise DataError(
            "budget %d cannot hold the base cuboid (%d groups)"
            % (budget_groups, sizes[base])
        )
    selected = {base}
    used = sizes[base]

    def answer_cost(mask, chosen):
        """Rows scanned to answer ``mask`` from the best chosen cuboid."""
        return min(
            sizes[candidate]
            for candidate in chosen
            if lattice.is_ancestor(mask, candidate)
        )

    while True:
        best = None
        best_ratio = 0.0
        for candidate in sizes:
            if candidate in selected or used + sizes[candidate] > budget_groups:
                continue
            benefit = 0
            for mask in sizes:
                before = answer_cost(mask, selected)
                after = min(before, answer_cost(mask, selected | {candidate}))
                benefit += before - after
            if sizes[candidate] == 0:
                continue
            ratio = benefit / sizes[candidate]
            if ratio > best_ratio:
                best_ratio = ratio
                best = candidate
        if best is None:
            return sorted(selected)
        selected.add(best)
        used += sizes[best]


class PartialCube:
    """Query layer over a materialized cuboid subset.

    Unmaterialized cuboids are answered by rolling up the smallest
    materialized descendant; ``last_answer_cost`` exposes the number of
    source groups read, which the ablation benchmark reports.
    """

    def __init__(self, cube, selected_masks):
        for mask in selected_masks:
            if not cube.has_cuboid(mask):
                raise DataError("selected cuboid %r is not in the cube" % mask)
        if cube.lattice.base_mask not in set(selected_masks):
            raise DataError("the base cuboid must always be selected")
        self._full = cube
        self.lattice = cube.lattice
        self.selected = sorted(selected_masks)
        self._materialized = {
            mask: cube.cuboids[mask] for mask in selected_masks
        }
        self.last_answer_cost = 0

    @classmethod
    def build(cls, table, budget_groups, algorithm=hash_cube):
        """Compute the full cube, select under budget, keep the subset."""
        cube = algorithm(table)
        selected = choose_cuboids(cube, budget_groups)
        return cls(cube, selected)

    def stored_groups(self):
        return sum(len(groups) for groups in self._materialized.values())

    def cuboid(self, mask):
        """Groups of cuboid ``mask``, rolling up if unmaterialized."""
        if mask in self._materialized:
            self.last_answer_cost = 0  # direct hit, no roll-up scan
            return self._materialized[mask]
        source = self._best_source(mask)
        self.last_answer_cost = len(self._materialized[source])
        rolled = {}
        for key, agg in self._materialized[source].items():
            coarse = self.lattice.project_key(key, source, mask)
            if coarse in rolled:
                rolled[coarse].merge(agg.copy())
            else:
                rolled[coarse] = agg.copy()
        return rolled

    def point(self, rule_values):
        """Point query mirroring :meth:`MaterializedCube.point`."""
        from repro.core.rule import WILDCARD

        mask = 0
        key = []
        for j, value in enumerate(rule_values):
            if value != WILDCARD:
                mask |= 1 << j
                key.append(value)
        return self.cuboid(mask).get(tuple(key))

    def _best_source(self, mask):
        best = None
        best_size = None
        for candidate, groups in self._materialized.items():
            if self.lattice.is_ancestor(mask, candidate):
                if best_size is None or len(groups) < best_size:
                    best = candidate
                    best_size = len(groups)
        if best is None:
            raise DataError("no materialized descendant answers %r" % mask)
        return best
