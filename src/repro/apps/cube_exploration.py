"""Smart data-cube exploration (thesis §1, §5.6.2; prior work [29]).

The analyst has already examined some group-by results; those cells are
encoded as *prior rules* whose constraints the maximum-entropy estimate
must satisfy, and SIRUM recommends the k rules carrying the most
*additional* information (thesis Table 1.3).

The §5.6.2 experiment assumes the user has seen the two single-
attribute group-bys with the lowest cardinality and disables candidate
pruning (prior work did not implement it).
"""

from repro.common.errors import ConfigError
from repro.core.config import variant_config
from repro.core.miner import Sirum
from repro.core.rule import Rule, WILDCARD


def lowest_cardinality_dimensions(table, count=2):
    """Names of the ``count`` dimensions with the smallest domains."""
    dims = sorted(table.schema.dimensions, key=table.domain_size)
    if count > len(dims):
        raise ConfigError(
            "asked for %d dimensions but the table has %d" % (count, len(dims))
        )
    return dims[:count]


def group_by_rules(table, dimension_name):
    """One rule per group of a single-attribute group-by query.

    The cells of ``GROUP BY dimension_name`` correspond to rules binding
    that attribute to each active-domain value, wildcards elsewhere.
    Only values that actually occur are returned (empty groups carry no
    constraint).
    """
    j = table.schema.dimension_index(dimension_name)
    arity = table.schema.arity
    seen_codes = sorted(set(int(c) for c in table.dimension_column(dimension_name)))
    rules = []
    for code in seen_codes:
        values = [WILDCARD] * arity
        values[j] = code
        rules.append(Rule(values))
    return rules


def explore_cube(
    table,
    k=10,
    prior_dimensions=None,
    variant="optimized",
    cluster=None,
    parallelism=None,
    executor=None,
    **overrides,
):
    """Recommend the k most informative unexplored cells.

    Parameters
    ----------
    prior_dimensions:
        Dimension names whose group-by results the analyst has already
        seen; defaults to the two lowest-cardinality dimensions as in
        the §5.6.2 experiment.

    Candidate pruning is disabled (``exhaustive=True``) to match the
    prior-work setting, unless overridden.
    """
    if prior_dimensions is None:
        prior_dimensions = lowest_cardinality_dimensions(table, 2)
    prior = []
    for name in prior_dimensions:
        prior.extend(group_by_rules(table, name))
    overrides.setdefault("exhaustive", True)
    config = variant_config(variant, k=k, **overrides)
    owns_cluster = cluster is None
    if cluster is None:
        from repro.core.miner import make_default_cluster

        cluster = make_default_cluster(parallelism=parallelism,
                                       executor=executor)
    try:
        return Sirum(config).mine(table, cluster=cluster, prior_rules=prior)
    finally:
        # An internally created cluster would otherwise leak a live
        # worker pool per call when parallelism > 1.
        if owns_cluster:
            cluster.close()
