"""Data-cleansing diagnosis (thesis §1, Tables 1.4/1.5).

The measure attribute is a dirtiness indicator (1 = dirty, 0 = clean);
informative rules highlight dimension-value combinations whose records
are disproportionately dirty (or clean).
"""

import numpy as np

from repro.common.errors import DataError
from repro.core.miner import mine


def diagnose_dirty_records(table, k=10, variant="optimized", cluster=None,
                           **overrides):
    """Mine rules explaining where dirty records concentrate.

    Requires a binary measure column.  Returns ``(result, findings)``
    where ``findings`` is the subset of mined rules whose covered dirty
    rate differs from the overall rate, ordered by |rate - overall|
    descending — the thesis Table 1.5 view.
    """
    measure = table.measure
    values = np.unique(measure)
    if not np.all(np.isin(values, (0.0, 1.0))):
        raise DataError(
            "cleansing diagnosis expects a 0/1 dirtiness measure; got "
            "values %s" % values[:5]
        )
    result = mine(table, k=k, variant=variant, cluster=cluster, **overrides)
    overall = table.measure_mean()
    findings = [
        mined
        for mined in result.rule_set
        if not mined.rule.is_root() and mined.count > 0
    ]
    findings.sort(key=lambda mined: abs(mined.avg_measure - overall),
                  reverse=True)
    return result, findings
