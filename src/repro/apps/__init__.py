"""Applications of informative rule mining (thesis Chapter 1).

- :mod:`~repro.apps.summarization` — data profiling and summarization;
- :mod:`~repro.apps.cube_exploration` — recommending informative cells
  of a data cube given what the analyst has already examined;
- :mod:`~repro.apps.cleaning` — diagnosing data-quality problems by
  mining rules over a dirtiness indicator.
"""

from repro.apps.summarization import summarize
from repro.apps.cube_exploration import (
    explore_cube,
    group_by_rules,
    lowest_cardinality_dimensions,
)
from repro.apps.cleaning import diagnose_dirty_records

__all__ = [
    "summarize",
    "explore_cube",
    "group_by_rules",
    "lowest_cardinality_dimensions",
    "diagnose_dirty_records",
]
