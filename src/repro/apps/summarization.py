"""Data profiling and summarization (thesis §1, first application).

Summarize the distribution of a numeric measure as a function of the
dimension attributes — the flight-delay scenario of Tables 1.1/1.2.
"""

from repro.core.miner import mine


def summarize(table, k=10, variant="optimized", cluster=None, **overrides):
    """Produce a k-rule summary of ``table``'s measure distribution.

    Thin wrapper over :func:`repro.core.miner.mine` that exists to give
    the application its thesis name; returns the
    :class:`~repro.core.result.MiningResult`, whose ``rule_set`` plays
    the role of thesis Table 1.2.
    """
    return mine(table, k=k, variant=variant, cluster=cluster, **overrides)
