"""Command-line interface: mine informative rules from CSV files.

Usage::

    python -m repro.cli mine data.csv --measure delay --k 10
    python -m repro.cli explore data.csv --measure delay --prior day,origin
    python -m repro.cli clean data.csv --measure is_dirty --k 5
    python -m repro.cli sql data.csv --measure delay \
        --query "SELECT day, AVG(delay) FROM data GROUP BY day"
    python -m repro.cli serve data.csv --measure delay \
        --clients 8 --requests 32
    python -m repro.cli serve data.csv --measure delay \
        --listen 127.0.0.1:7711
    python -m repro.cli shard-worker --listen 127.0.0.1:7731

The mining subcommands read a CSV with a header row, treat every
non-measure column as a dimension attribute (unless ``--dimensions``
narrows them), and print the mined rule set as a markdown table plus
quality metrics.  The ``sql`` subcommand registers the CSV as a table
named ``data`` and runs one query against the bundled SQL engine.
The ``serve`` subcommand stands up the concurrent mining service and
drives a scripted mixed mining + SQL workload from N client threads,
printing throughput, latency percentiles and cache/coalescing
statistics; with ``--listen HOST:PORT`` it instead serves the dataset
over the framed network protocol (:mod:`repro.net`) until interrupted,
draining in-flight jobs on shutdown.  The ``shard-worker`` subcommand
runs one remote shard-execution worker (:mod:`repro.net.worker`) that
``mine --shard-workers`` drivers pin placed shards to — trusted
networks only, since it executes pickled kernels.
"""

import argparse
import sys

from repro.apps import diagnose_dirty_records, explore_cube
from repro.common.errors import ReproError
from repro.core.config import VARIANT_FLAGS
from repro.core.miner import mine
from repro.data.csvio import read_csv
from repro.sql import SqlEngine


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIRUM: scalable informative rule mining",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, help_text in [
        ("mine", "mine the most informative rules"),
        ("explore", "recommend data-cube cells given prior group-bys"),
        ("clean", "diagnose where dirty records concentrate"),
    ]:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("csv", help="input CSV file with a header row")
        sub.add_argument("--measure", required=True,
                         help="name of the numeric measure column")
        sub.add_argument(
            "--dimensions",
            help="comma-separated dimension columns (default: all others)",
        )
        sub.add_argument("--k", type=int, default=10,
                         help="rules to mine beyond the all-wildcards rule")
        sub.add_argument(
            "--variant", default="optimized",
            choices=sorted(VARIANT_FLAGS),
            help="optimization bundle (thesis Table 4.2)",
        )
        sub.add_argument("--sample-size", type=int, default=64,
                         help="candidate-pruning sample size |s|")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--parallelism", type=int, default=None,
            help="worker threads running partition kernels (default: "
                 "REPRO_PARALLELISM or serial); results are identical "
                 "across settings",
        )
        sub.add_argument(
            "--executor", choices=["thread", "process"], default=None,
            help="worker pool kind for parallel kernels (default: "
                 "REPRO_EXECUTOR or thread); process sidesteps the GIL "
                 "for pure-Python kernels, results are identical",
        )
        if name == "explore":
            sub.add_argument(
                "--prior",
                help="comma-separated dimensions whose group-bys the "
                     "analyst has already seen (default: the two with "
                     "the lowest cardinality)",
            )
        if name == "mine":
            sub.add_argument(
                "--shard-workers", metavar="HOST:PORT,...", default=None,
                help="comma-separated shard-worker addresses (started "
                     "with the shard-worker subcommand); implies the "
                     "remote executor — shards are pinned to workers "
                     "and results stay identical to serial",
            )
    sql = subparsers.add_parser(
        "sql", help="run one SQL query against the CSV (table name: data)"
    )
    sql.add_argument("csv", help="input CSV file with a header row")
    sql.add_argument("--measure", required=True,
                     help="name of the numeric measure column")
    sql.add_argument(
        "--dimensions",
        help="comma-separated dimension columns (default: all others)",
    )
    sql.add_argument("--query", required=True, help="SQL text to execute")
    sql.add_argument("--max-rows", type=int, default=50,
                     help="rows to print (default 50)")
    sql.add_argument("--explain", action="store_true",
                     help="print the optimized plan instead of executing")
    serve = subparsers.add_parser(
        "serve",
        help="run a scripted concurrent workload through the mining service",
    )
    serve.add_argument("csv", help="input CSV file with a header row")
    serve.add_argument("--measure", required=True,
                       help="name of the numeric measure column")
    serve.add_argument(
        "--dimensions",
        help="comma-separated dimension columns (default: all others)",
    )
    serve.add_argument("--clients", type=int, default=8,
                       help="concurrent client threads (default 8)")
    serve.add_argument("--requests", type=int, default=32,
                       help="total requests in the scripted workload")
    serve.add_argument("--workers", type=int, default=4,
                       help="service worker threads (default 4)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="bounded admission queue depth (default 64)")
    serve.add_argument("--k", type=int, default=3,
                       help="rules per mining request (default 3)")
    serve.add_argument("--sample-size", type=int, default=16,
                       help="candidate-pruning sample size |s|")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--parallelism", type=int, default=None,
        help="worker threads inside each mining job's cluster engine "
             "(intra-request parallelism; default: REPRO_PARALLELISM "
             "or serial)",
    )
    serve.add_argument(
        "--executor", choices=["thread", "process", "remote"],
        default=None,
        help="pool kind for each mining job's engine workers "
             "(default: REPRO_EXECUTOR or thread); 'remote' runs "
             "every job on --shard-workers",
    )
    serve.add_argument(
        "--max-engine-workers", type=int, default=None,
        help="machine-wide engine-worker budget shared by all "
             "concurrent jobs (default: the host's core count)",
    )
    serve.add_argument(
        "--admission", choices=["budget", "oversubscribe"],
        default="budget",
        help="'budget' (default) caps aggregate engine workers at "
             "--max-engine-workers, degrading busy jobs toward serial; "
             "'oversubscribe' gives every job its full --parallelism",
    )
    serve.add_argument(
        "--shard-workers", metavar="HOST:PORT,...", default=None,
        help="comma-separated shard-worker addresses the service may "
             "run jobs on: with --executor thread/process they are "
             "spill capacity when the local budget is exhausted; with "
             "--executor remote every job runs on them",
    )
    serve.add_argument(
        "--compare-serial", action="store_true",
        help="also run the workload serially and uncached, and print "
             "the throughput ratio",
    )
    serve.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="instead of the scripted workload, serve the dataset over "
             "the framed network protocol on HOST:PORT (PORT 0 picks a "
             "free port) until interrupted",
    )
    serve.add_argument(
        "--tenant-quota", type=int, default=8,
        help="with --listen: per-tenant in-flight job quota (default 8)",
    )
    serve.add_argument(
        "--serve-seconds", type=float, default=None,
        help="with --listen: stop after this many seconds "
             "(default: run until Ctrl-C)",
    )
    worker = subparsers.add_parser(
        "shard-worker",
        help="run one shard-execution worker for remote placed mining",
    )
    worker.add_argument(
        "--listen", metavar="HOST:PORT", default="127.0.0.1:0",
        help="address to serve the shard-worker protocol on (default "
             "127.0.0.1:0 — loopback, free port); the worker executes "
             "pickled kernels, so bind only trusted interfaces",
    )
    worker.add_argument(
        "--serve-seconds", type=float, default=None,
        help="stop after this many seconds (default: run until Ctrl-C)",
    )
    worker.add_argument(
        "--block-cache-bytes", type=int, default=None,
        help="bound on fetched colfile blocks kept in the worker's "
             "block cache (default: REPRO_WORKER_BLOCK_CACHE_BYTES "
             "or 256 MiB)",
    )
    worker.add_argument(
        "--no-local-files", action="store_true",
        help="never open colfiles from this worker's own filesystem; "
             "fetch every block from the driver (the shared-nothing "
             "stance for workers without the driver's storage)",
    )
    return parser


def _load(args):
    dimensions = None
    if args.dimensions:
        dimensions = [d.strip() for d in args.dimensions.split(",")]
    return read_csv(args.csv, measure=args.measure, dimensions=dimensions)


def _print_result(table, result, out):
    out.write(result.rule_set.to_markdown(table) + "\n\n")
    out.write("rules: %d\n" % len(result.rule_set))
    out.write("kl_divergence: %.6g\n" % result.final_kl)
    out.write("information_gain: %.6g\n" % result.information_gain)
    out.write("simulated_cluster_seconds: %.3f\n" % result.simulated_seconds)


def _parse_listen(listen):
    host, sep, port = listen.rpartition(":")
    if not sep or not host:
        raise ReproError(
            "--listen expects HOST:PORT, got %r" % listen
        )
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(
            "--listen port must be an integer, got %r" % port
        ) from None


def _service_config(args):
    from repro.service import ServiceConfig

    shard_workers = None
    if getattr(args, "shard_workers", None):
        shard_workers = [
            w.strip() for w in args.shard_workers.split(",") if w.strip()
        ]
    return ServiceConfig(
        num_workers=args.workers, max_queue_depth=args.queue_depth,
        engine_parallelism=args.parallelism,
        engine_executor=args.executor,
        max_engine_workers=args.max_engine_workers,
        admission=args.admission,
        shard_workers=shard_workers,
    )


def _run_listen(args, table, out):
    """Serve the CSV as dataset ``data`` over the framed protocol."""
    import time

    from repro.net import NetConfig, ServiceServer, TenantPolicy
    from repro.service import RuleMiningService

    host, port = _parse_listen(args.listen)
    service = RuleMiningService(_service_config(args))
    server = None
    try:
        service.register_dataset("data", table)
        server = ServiceServer(service, NetConfig(
            host=host, port=port,
            default_tenant=TenantPolicy(max_inflight=args.tenant_quota),
        ))
        server.start()
        out.write(
            "serving dataset 'data' (%d rows) on %s:%d "
            "(tenant quota %d, %d workers)\n" % (
                len(table), host, server.port, args.tenant_quota,
                args.workers,
            )
        )
        try:
            if args.serve_seconds is not None:
                time.sleep(args.serve_seconds)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            out.write("interrupted\n")
        out.write("draining...\n")
        drained = server.drain(timeout=30.0)
        net = server.net_stats()
        out.write(
            "drained (all jobs flushed: %s); served %d connections, "
            "%d jobs (%d coalesced, %d quota rejections)\n" % (
                drained, net["connections_opened"],
                net["jobs_submitted"], net["coalesce_hits"],
                net["quota_rejections"],
            )
        )
    finally:
        if server is not None:
            server.stop()
        service.close()


def _run_shard_worker(args, out):
    """Run one shard-execution worker until interrupted."""
    import os
    import time

    from repro.net.worker import ShardWorker, parse_address

    host, port = parse_address(args.listen)
    with ShardWorker(host=host, port=port,
                     block_cache_bytes=args.block_cache_bytes,
                     local_files=not args.no_local_files) as worker:
        out.write(
            "shard worker serving on %s (pid %d)\n"
            % (worker.address, os.getpid())
        )
        out.flush()
        try:
            if args.serve_seconds is not None:
                time.sleep(args.serve_seconds)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            out.write("interrupted\n")
        stats = worker.stats()
        out.write(
            "served %d stages, %d tasks\n"
            % (stats["stages"], stats["tasks"])
        )


def _run_serve(args, table, out):
    from repro.bench.harness import (
        build_service_workload,
        latency_summary,
        run_serial_reference,
        run_service_workload,
        service_results_match,
    )
    from repro.service import RuleMiningService

    requests = build_service_workload(
        "data", list(table.schema.dimensions), table.schema.measure,
        num_requests=args.requests, k=args.k,
        sample_size=args.sample_size, seed=args.seed,
    )
    service = RuleMiningService(_service_config(args))
    try:
        service.register_dataset("data", table)
        run = run_service_workload(
            service, "data", requests, num_clients=args.clients
        )
        stats = service.stats()
    finally:
        service.close()
    summary = latency_summary(run["latencies"])
    out.write(
        "served %d requests from %d clients in %.3fs (%.1f req/s)\n" % (
            len(requests), args.clients, run["wall_seconds"],
            run["throughput_rps"],
        )
    )
    out.write(
        "latency: mean=%.4fs p50=%.4fs p95=%.4fs max=%.4fs\n" % (
            summary["mean"], summary["p50"], summary["p95"], summary["max"],
        )
    )
    out.write(
        "cache: %d hits / %d misses; coalesced: %d; rejected: %d\n" % (
            stats["cache"]["hits"], stats["cache"]["misses"],
            stats["coalesce_hits"], stats["queue"]["rejections"],
        )
    )
    out.write(
        "jobs: %d submitted, %d executed, %d failed\n" % (
            stats["jobs"]["submitted"], stats["jobs"]["completed"],
            stats["jobs"]["failed"],
        )
    )
    budget = stats["budget"]
    if "max_engine_workers" in budget:
        out.write(
            "engine budget: %d workers, peak %d in use; %d grants "
            "(%d degraded), %.3fs total wait\n" % (
                budget["max_engine_workers"], budget["peak_in_use"],
                budget["grants"], budget["degraded_grants"],
                budget["total_wait_seconds"],
            )
        )
    else:
        out.write("engine budget: disabled (admission=oversubscribe)\n")
    if args.compare_serial:
        serial = run_serial_reference(table, "data", requests)
        match = service_results_match(run["results"], serial["results"])
        out.write(
            "serial uncached: %.3fs (%.1f req/s); speedup %.2fx; "
            "results identical: %s\n" % (
                serial["wall_seconds"], serial["throughput_rps"],
                serial["wall_seconds"] / run["wall_seconds"]
                if run["wall_seconds"] > 0 else float("inf"),
                match,
            )
        )


def main(argv=None, out=None):
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "shard-worker":
            _run_shard_worker(args, out)
            return 0
        table = _load(args)
        if args.command == "serve":
            if args.listen is not None:
                _run_listen(args, table, out)
            else:
                _run_serve(args, table, out)
        elif args.command == "sql":
            engine = SqlEngine()
            engine.register_table("data", table)
            if args.explain:
                out.write(engine.explain(args.query) + "\n")
            else:
                result = engine.query(args.query)
                out.write(result.pretty(max_rows=args.max_rows) + "\n")
                out.write("(%d rows)\n" % len(result))
        elif args.command == "mine":
            executor = args.executor
            workers = None
            if args.shard_workers:
                workers = [
                    w.strip() for w in args.shard_workers.split(",")
                    if w.strip()
                ]
                executor = "remote"
            result = mine(
                table, k=args.k, variant=args.variant,
                sample_size=args.sample_size, seed=args.seed,
                parallelism=args.parallelism, executor=executor,
                workers=workers,
            )
            _print_result(table, result, out)
        elif args.command == "explore":
            prior = None
            if args.prior:
                prior = [d.strip() for d in args.prior.split(",")]
            result = explore_cube(
                table, k=args.k, prior_dimensions=prior,
                variant=args.variant, seed=args.seed,
                parallelism=args.parallelism, executor=args.executor,
            )
            _print_result(table, result, out)
        else:
            result, findings = diagnose_dirty_records(
                table, k=args.k, variant=args.variant,
                sample_size=args.sample_size, seed=args.seed,
                parallelism=args.parallelism, executor=args.executor,
            )
            _print_result(table, result, out)
            out.write("\ntop deviations from the overall dirty rate:\n")
            for finding in findings[:10]:
                out.write(
                    "  %s  rate=%.3f  count=%d\n"
                    % (" | ".join(finding.decode(table)),
                       finding.avg_measure, finding.count)
                )
    except ReproError as exc:
        out.write("error: %s\n" % exc)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
