"""Command-line interface: mine informative rules from CSV files.

Usage::

    python -m repro.cli mine data.csv --measure delay --k 10
    python -m repro.cli explore data.csv --measure delay --prior day,origin
    python -m repro.cli clean data.csv --measure is_dirty --k 5
    python -m repro.cli sql data.csv --measure delay \
        --query "SELECT day, AVG(delay) FROM data GROUP BY day"

The mining subcommands read a CSV with a header row, treat every
non-measure column as a dimension attribute (unless ``--dimensions``
narrows them), and print the mined rule set as a markdown table plus
quality metrics.  The ``sql`` subcommand registers the CSV as a table
named ``data`` and runs one query against the bundled SQL engine.
"""

import argparse
import sys

from repro.apps import diagnose_dirty_records, explore_cube
from repro.common.errors import ReproError
from repro.core.config import VARIANT_FLAGS
from repro.core.miner import mine
from repro.data.csvio import read_csv
from repro.sql import SqlEngine


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIRUM: scalable informative rule mining",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, help_text in [
        ("mine", "mine the most informative rules"),
        ("explore", "recommend data-cube cells given prior group-bys"),
        ("clean", "diagnose where dirty records concentrate"),
    ]:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("csv", help="input CSV file with a header row")
        sub.add_argument("--measure", required=True,
                         help="name of the numeric measure column")
        sub.add_argument(
            "--dimensions",
            help="comma-separated dimension columns (default: all others)",
        )
        sub.add_argument("--k", type=int, default=10,
                         help="rules to mine beyond the all-wildcards rule")
        sub.add_argument(
            "--variant", default="optimized",
            choices=sorted(VARIANT_FLAGS),
            help="optimization bundle (thesis Table 4.2)",
        )
        sub.add_argument("--sample-size", type=int, default=64,
                         help="candidate-pruning sample size |s|")
        sub.add_argument("--seed", type=int, default=0)
        if name == "explore":
            sub.add_argument(
                "--prior",
                help="comma-separated dimensions whose group-bys the "
                     "analyst has already seen (default: the two with "
                     "the lowest cardinality)",
            )
    sql = subparsers.add_parser(
        "sql", help="run one SQL query against the CSV (table name: data)"
    )
    sql.add_argument("csv", help="input CSV file with a header row")
    sql.add_argument("--measure", required=True,
                     help="name of the numeric measure column")
    sql.add_argument(
        "--dimensions",
        help="comma-separated dimension columns (default: all others)",
    )
    sql.add_argument("--query", required=True, help="SQL text to execute")
    sql.add_argument("--max-rows", type=int, default=50,
                     help="rows to print (default 50)")
    sql.add_argument("--explain", action="store_true",
                     help="print the optimized plan instead of executing")
    return parser


def _load(args):
    dimensions = None
    if args.dimensions:
        dimensions = [d.strip() for d in args.dimensions.split(",")]
    return read_csv(args.csv, measure=args.measure, dimensions=dimensions)


def _print_result(table, result, out):
    out.write(result.rule_set.to_markdown(table) + "\n\n")
    out.write("rules: %d\n" % len(result.rule_set))
    out.write("kl_divergence: %.6g\n" % result.final_kl)
    out.write("information_gain: %.6g\n" % result.information_gain)
    out.write("simulated_cluster_seconds: %.3f\n" % result.simulated_seconds)


def main(argv=None, out=None):
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        table = _load(args)
        if args.command == "sql":
            engine = SqlEngine()
            engine.register_table("data", table)
            if args.explain:
                out.write(engine.explain(args.query) + "\n")
            else:
                result = engine.query(args.query)
                out.write(result.pretty(max_rows=args.max_rows) + "\n")
                out.write("(%d rows)\n" % len(result))
        elif args.command == "mine":
            result = mine(
                table, k=args.k, variant=args.variant,
                sample_size=args.sample_size, seed=args.seed,
            )
            _print_result(table, result, out)
        elif args.command == "explore":
            prior = None
            if args.prior:
                prior = [d.strip() for d in args.prior.split(",")]
            result = explore_cube(
                table, k=args.k, prior_dimensions=prior,
                variant=args.variant, seed=args.seed,
            )
            _print_result(table, result, out)
        else:
            result, findings = diagnose_dirty_records(
                table, k=args.k, variant=args.variant,
                sample_size=args.sample_size, seed=args.seed,
            )
            _print_result(table, result, out)
            out.write("\ntop deviations from the overall dirty rate:\n")
            for finding in findings[:10]:
                out.write(
                    "  %s  rate=%.3f  count=%d\n"
                    % (" | ".join(finding.decode(table)),
                       finding.avg_measure, finding.count)
                )
    except ReproError as exc:
        out.write("error: %s\n" % exc)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
