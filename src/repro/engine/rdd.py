"""Eager RDD layer over the cluster context.

Provides the familiar coarse-grained transformation API (thesis §2.6.3)
over arbitrary Python elements.  Transformations execute immediately —
the simulator has no need for lazy DAG re-execution — but costs are
metered stage by stage exactly as the cluster context prescribes.

SIRUM's hot paths use vectorized kernels through
:meth:`ClusterContext.run_stage` directly; this layer exists for the
engine's own tests, examples and the naive/baseline implementations
where per-element processing matches what the thesis profiles.
"""

from repro.common.errors import EngineError
from repro.common.rng import make_rng

# Rough per-element serialized size used for shuffle-byte estimates.
ELEMENT_BYTES = 64


# ----------------------------------------------------------------------
# Stage kernels
#
# Module-level classes rather than closures so a kernel pickles — and
# therefore runs in a process-pool worker — whenever the user function
# it wraps does.  Each receives ``(tc, (index, partition))`` and defers
# its storage-cache touch; the driver replays accesses in partition
# order (the cluster-module contract for every execution mode).
# ----------------------------------------------------------------------


class _IndexedKernel:
    """Base: cache accounting for one ``(index, partition)`` task.

    Slots-only classes, so the default pickle protocol ships them
    whenever their fields (notably the user function) pickle.
    """

    __slots__ = ("cache_key",)

    def __init__(self, cache_key):
        self.cache_key = cache_key

    def touch(self, tc, index, part):
        if self.cache_key is not None:
            tc.request_cache_access(
                (self.cache_key, index), len(part) * ELEMENT_BYTES
            )


class _MapPartitionsKernel(_IndexedKernel):
    """Run ``fn(list) -> list`` over one partition."""

    __slots__ = ("fn",)

    def __init__(self, fn, cache_key):
        super().__init__(cache_key)
        self.fn = fn

    def __call__(self, tc, item):
        index, part = item
        self.touch(tc, index, part)
        tc.add_records(len(part))
        result = list(self.fn(part))
        tc.add_ops(len(result))
        return result


class _CombineKernel(_IndexedKernel):
    """Map-side combine of (k, v) pairs with ``combine``."""

    __slots__ = ("combine",)

    def __init__(self, combine, cache_key):
        super().__init__(cache_key)
        self.combine = combine

    def __call__(self, tc, item):
        index, part = item
        self.touch(tc, index, part)
        tc.add_records(len(part))
        acc = {}
        for key, value in part:
            if key in acc:
                acc[key] = self.combine(acc[key], value)
            else:
                acc[key] = value
            tc.add_ops(1)
        tc.add_output_bytes(len(acc) * ELEMENT_BYTES)
        return acc


class _CollectKernel(_IndexedKernel):
    __slots__ = ()

    def __call__(self, tc, item):
        index, part = item
        self.touch(tc, index, part)
        tc.add_records(len(part))
        return list(part)


class _CountKernel(_IndexedKernel):
    __slots__ = ()

    def __call__(self, tc, item):
        index, part = item
        self.touch(tc, index, part)
        tc.add_records(len(part))
        return len(part)


class _SampleKernel(_IndexedKernel):
    """Bernoulli sampling with one independent RNG per partition."""

    __slots__ = ("fraction", "seed")

    def __init__(self, fraction, seed, cache_key):
        super().__init__(cache_key)
        self.fraction = fraction
        self.seed = seed

    def __call__(self, tc, item):
        index, part = item
        self.touch(tc, index, part)
        tc.add_records(len(part))
        rng = make_rng((self.seed, index))
        result = [x for x in part if rng.random() < self.fraction]
        tc.add_ops(len(result))
        return result


def _reduce_kernel(tc, bucket):
    tc.add_records(len(bucket))
    return list(bucket.items())


class _MapFn:
    """``fn`` element-wise over a partition (picklable with ``fn``)."""

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [fn(x) for x in part]


class _FilterFn(_MapFn):
    __slots__ = ()

    def __call__(self, part):
        fn = self.fn
        return [x for x in part if fn(x)]


class _FlatMapFn(_MapFn):
    __slots__ = ()

    def __call__(self, part):
        fn = self.fn
        out = []
        for x in part:
            out.extend(fn(x))
        return out


class _BroadcastJoinFn:
    """Map-side join against a broadcast dict (ships with the kernel)."""

    __slots__ = ("table",)

    def __init__(self, table):
        self.table = table

    def __call__(self, part):
        table = self.table
        return [
            (key, (value, table[key])) for key, value in part if key in table
        ]


class RDD:
    """An eagerly materialized, partitioned collection."""

    def __init__(self, ctx, partitions, cache_key=None):
        self.ctx = ctx
        self._partitions = [list(p) for p in partitions]
        self._cache_key = cache_key

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    @classmethod
    def parallelize(cls, ctx, data, num_partitions):
        """Split ``data`` into ``num_partitions`` roughly equal chunks.

        Chunk boundaries come from the same
        :class:`~repro.engine.placement.ShardMap` split every other
        layer partitions with (unclamped: the caller's partition count
        is kept even when some chunks are empty).
        """
        from repro.engine.placement import ShardMap

        data = list(data)
        if num_partitions < 1:
            raise EngineError("num_partitions must be at least 1")
        shard_map = ShardMap.build(len(data), num_partitions, clamp=False)
        return cls(ctx, [data[s.start:s.stop] for s in shard_map])

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def num_partitions(self):
        return len(self._partitions)

    def cache(self):
        """Register partitions with the cluster's storage memory."""
        self._cache_key = "rdd-%d" % id(self)
        for i, part in enumerate(self._partitions):
            self.ctx.cache.access(
                (self._cache_key, i), len(part) * ELEMENT_BYTES
            )
        return self

    # ------------------------------------------------------------------
    # Narrow transformations
    # ------------------------------------------------------------------

    def map(self, fn):
        return self.map_partitions(_MapFn(fn))

    def filter(self, fn):
        return self.map_partitions(_FilterFn(fn))

    def flat_map(self, fn):
        return self.map_partitions(_FlatMapFn(fn))

    def map_partitions(self, fn):
        """Apply ``fn(list) -> list`` per partition as one stage."""
        indexed = list(enumerate(self._partitions))
        kernel = _MapPartitionsKernel(fn, self._cache_key)
        stage = self.ctx.run_stage(kernel, indexed, name="map_partitions")
        return RDD(self.ctx, stage.outputs)

    # ------------------------------------------------------------------
    # Wide transformations
    # ------------------------------------------------------------------

    def reduce_by_key(self, combine, num_partitions=None):
        """Group (k, v) pairs by key and fold values with ``combine``.

        Performs a map-side combine per partition (as Spark does), then
        a metered shuffle, then a reduce stage.
        """
        num_partitions = num_partitions or self.num_partitions
        indexed = list(enumerate(self._partitions))
        combine_kernel = _CombineKernel(combine, self._cache_key)
        combined = self.ctx.run_stage(
            combine_kernel, indexed, name="map_side_combine", shuffle_output=True
        )

        buckets = [dict() for _ in range(num_partitions)]
        for acc in combined.outputs:
            for key, value in acc.items():
                bucket = buckets[hash(key) % num_partitions]
                if key in bucket:
                    bucket[key] = combine(bucket[key], value)
                else:
                    bucket[key] = value

        reduced = self.ctx.run_stage(_reduce_kernel, buckets, name="reduce")
        return RDD(self.ctx, reduced.outputs)

    def group_by_key(self, num_partitions=None):
        as_lists = self.map(lambda kv: (kv[0], [kv[1]]))
        return as_lists.reduce_by_key(lambda a, b: a + b, num_partitions)

    def join(self, other, num_partitions=None):
        """Inner shuffle join of two (k, v) RDDs -> (k, (v1, v2))."""
        left = self.map(lambda kv: (kv[0], ("L", kv[1])))
        right = other.map(lambda kv: (kv[0], ("R", kv[1])))
        both = RDD(self.ctx, left._partitions + right._partitions)
        grouped = both.group_by_key(num_partitions or self.num_partitions)

        def emit(kv):
            key, tagged = kv
            lefts = [v for tag, v in tagged if tag == "L"]
            rights = [v for tag, v in tagged if tag == "R"]
            return [(key, (lv, rv)) for lv in lefts for rv in rights]

        return grouped.flat_map(emit)

    def broadcast_join(self, small_pairs):
        """Map-side join against a broadcast dict of (k -> v)."""
        small = dict(small_pairs)
        handle = self.ctx.broadcast(small, len(small) * ELEMENT_BYTES)
        return self.map_partitions(_BroadcastJoinFn(handle.value))

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def collect(self):
        stage = self.ctx.run_stage(
            _CollectKernel(self._cache_key),
            list(enumerate(self._partitions)), name="collect"
        )
        out = []
        for part in stage.outputs:
            out.extend(part)
        return out

    def count(self):
        stage = self.ctx.run_stage(
            _CountKernel(self._cache_key),
            list(enumerate(self._partitions)), name="count"
        )
        return sum(stage.outputs)

    def sample(self, fraction, seed=None):
        """Bernoulli sample of elements, one decision per element.

        ``seed=None`` (the default) derives a fresh per-call seed from
        the cluster context, so repeated samples draw different rows
        while whole-run reruns still reproduce.  Pass an explicit seed
        to pin one draw.  Decisions use one independent RNG per
        partition (seeded by ``(seed, partition_index)``), making the
        sample independent of task execution order — serial and
        parallel stages keep the same rows.
        """
        if not 0.0 < fraction <= 1.0:
            raise EngineError("sample fraction must be in (0, 1]")
        if seed is None:
            seed = self.ctx.next_sample_seed()
        indexed = list(enumerate(self._partitions))
        kernel = _SampleKernel(fraction, seed, self._cache_key)
        stage = self.ctx.run_stage(kernel, indexed, name="sample")
        return RDD(self.ctx, stage.outputs)

    def union(self, other):
        if other.ctx is not self.ctx:
            raise EngineError("cannot union RDDs from different clusters")
        return RDD(self.ctx, self._partitions + other._partitions)
