"""Shared-memory column blocks for the process-pool execution mode.

``ClusterContext(executor="process")`` runs partition kernels in worker
*processes*.  Shipping each partition's columns through the task pickle
would copy the table once per stage, so the driver instead copies the
data once into a POSIX shared-memory segment and kernels receive tiny
descriptors (segment name + per-array offset/dtype/shape) that reattach
to the same physical pages inside the worker.  Attachments resolve to
*read-only* NumPy views — stage kernels are pure per-partition
functions and must not write shared state.

Lifetime
--------
The creating process owns a segment: it is unlinked when the owning
:class:`SharedArrayPack` is garbage collected (``weakref.finalize``,
which also runs at interpreter exit) or when the owner calls
:meth:`SharedArrayPack.unlink` explicitly; both are idempotent, and a
forked worker inheriting the owner object never unlinks (the finalizer
checks the owning PID).  Unlinking only removes the *name* — existing
mappings, including worker attachments, stay valid until released.
Workers cache a bounded number of attachments per process so repeated
stages over the same table do not re-map it.

File-backed tables skip shm entirely: :class:`MmapTableBlock` carries
``(path, file_key, row range)`` and workers resolve it against a
process-cached read-only mmap of the colfile itself
(:func:`attached_handle`), so the kernel reads the OS page cache —
zero copies of the table are made for the job.  ``file_key`` pins the
exact file state; a file rewritten between pickling and attachment is
refused rather than silently misread.
"""

import os
import sys
import threading
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory as _shared_memory

import numpy as np

#: Per-array alignment inside a pack, generous enough for any SIMD load.
_ALIGNMENT = 64

#: Attachments kept open per worker process; old ones are closed as new
#: segments arrive (streaming workloads create a segment per batch).
_ATTACHMENT_CAP = 8

_attachments = OrderedDict()  # segment name -> SharedMemory, LRU order
_attachments_lock = threading.Lock()
_register_patch_lock = threading.Lock()

#: Process-local hit/miss counters for the two attachment caches.
#: These are the observable record of placement affinity: a worker
#: pinned to the same shards stage after stage resolves every block
#: through a cached handle (hits), while shards bouncing across
#: workers re-open and re-verify per move (misses).  Counters live in
#: whichever process resolves the block — the driver for serial and
#: thread stages, each pool worker for process stages.
_cache_stats_lock = threading.Lock()
_segment_hits = 0
_segment_misses = 0
_handle_hits = 0
_handle_misses = 0


def _count_segment(hit):
    global _segment_hits, _segment_misses
    with _cache_stats_lock:
        if hit:
            _segment_hits += 1
        else:
            _segment_misses += 1


def _count_handle(hit):
    global _handle_hits, _handle_misses
    with _cache_stats_lock:
        if hit:
            _handle_hits += 1
        else:
            _handle_misses += 1


def attachment_cache_stats():
    """This process's attachment-cache counters, one dict."""
    with _cache_stats_lock:
        return {
            "segment_hits": _segment_hits,
            "segment_misses": _segment_misses,
            "handle_hits": _handle_hits,
            "handle_misses": _handle_misses,
            "segments_cached": len(_attachments),
            "handles_cached": len(_handles),
        }


def reset_attachment_cache_stats():
    """Zero the counters (benchmarks isolate phases with this)."""
    global _segment_hits, _segment_misses, _handle_hits, _handle_misses
    with _cache_stats_lock:
        _segment_hits = _segment_misses = 0
        _handle_hits = _handle_misses = 0


def _noop_register(name, rtype):
    pass


def _attach_segment(name):
    """Attach an existing segment without taking cleanup ownership.

    A plain ``SharedMemory(name=...)`` registers the segment with the
    resource tracker — shared, under fork, with the creator — so the
    attaching process would fight the creator over cleanup.  Python
    3.13 grew ``track=False`` for exactly this; older versions get the
    registration suppressed instead (unregistering *after* the fact
    would remove the creator's entry from the shared tracker).
    """
    if sys.version_info >= (3, 13):
        return _shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    with _register_patch_lock:
        original = resource_tracker.register
        resource_tracker.register = _noop_register
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _close_quietly(segment):
    try:
        segment.close()
    except BufferError:
        # Live views still reference the mapping; dropping our handle
        # is enough — the mapping is released when the views go away.
        pass


def attached_segment(name):
    """The (cached) attachment of segment ``name`` in this process."""
    with _attachments_lock:
        segment = _attachments.get(name)
        if segment is not None:
            _attachments.move_to_end(name)
            _count_segment(hit=True)
            return segment
    _count_segment(hit=False)
    segment = _attach_segment(name)
    with _attachments_lock:
        racing = _attachments.get(name)
        if racing is not None:
            _close_quietly(segment)
            return racing
        _attachments[name] = segment
        while len(_attachments) > _ATTACHMENT_CAP:
            _, stale = _attachments.popitem(last=False)
            _close_quietly(stale)
        return segment


_handles = OrderedDict()  # (path, file_key) -> ColFileHandle, LRU order
_handles_lock = threading.Lock()


def attached_handle(path, file_key):
    """The (cached) :class:`~repro.data.colfile.ColFileHandle` for the
    file state ``(path, file_key)`` in this process.

    Opens and verifies the file on first use; subsequent blocks of the
    same file reuse the mapping.  Evicted cache entries are closed only
    if no live views reference them (``ColFileHandle.close`` keeps the
    map alive otherwise).
    """
    from repro.common.errors import DataError
    from repro.data.colfile import ColFileHandle

    key = (str(path), tuple(file_key))
    with _handles_lock:
        handle = _handles.get(key)
        if handle is not None:
            _handles.move_to_end(key)
            _count_handle(hit=True)
            return handle
    _count_handle(hit=False)
    handle = ColFileHandle(path)
    if tuple(handle.file_key) != key[1]:
        handle.close()
        raise DataError(
            "columnar file %s changed on disk since the block was "
            "created (size/mtime mismatch)" % path
        )
    with _handles_lock:
        racing = _handles.get(key)
        if racing is not None:
            handle.close()
            return racing
        _handles[key] = handle
        while len(_handles) > _ATTACHMENT_CAP:
            _, stale = _handles.popitem(last=False)
            stale.close()
        return handle


# ----------------------------------------------------------------------
# Served handles and remote block fetch
# ----------------------------------------------------------------------

#: Live handles the *driver* volunteers for serving remote block
#: fetches.  Unlike the attachment cache these are borrowed, never
#: owned: registration keeps a weak reference, so a closed or collected
#: handle simply disappears.  The registry is what keeps block shipping
#: working after the colfile is deleted or renamed — the driver's mmap
#: outlives the directory entry, so ``block_fetch`` can still be served
#: from it even though ``attached_handle`` could no longer open the
#: path (the basis of the no-shared-disk contract).
_served_handles = {}  # (path, file_key) -> weakref to ColFileHandle
_served_lock = threading.Lock()

#: Per-thread remote block fetcher, installed by a shard worker around
#: each ``run_stage`` batch (:func:`block_fetcher`).  ``None`` outside
#: a worker stage: resolution is purely local.
_block_fetcher = threading.local()


def register_served_handle(handle):
    """Volunteer a live :class:`~repro.data.colfile.ColFileHandle` for
    serving remote block fetches (weakly referenced; idempotent)."""
    key = (str(handle.path), tuple(handle.file_key))
    with _served_lock:
        _served_handles[key] = weakref.ref(handle)
        # Drop entries whose handles have been collected or closed —
        # registration is the only growth point, so this keeps the
        # registry proportional to live handles.
        for k in list(_served_handles):
            live = _served_handles[k]()
            if live is None or live.closed:
                del _served_handles[k]


def served_handle(path, file_key):
    """The registered live handle for ``(path, file_key)``, or None.

    Safe to serve only while the mapped inode still holds the
    registered state: a *deleted* (or renamed-over) file keeps its old
    inode alive under the mmap, but an **in-place rewrite** truncates
    the very pages the handle maps — touching them would fault.  So a
    path that still exists must also still match ``file_key``;
    otherwise the stale registration is dropped and resolution falls
    through to :func:`attached_handle`, which refuses the mismatched
    state with a typed :class:`~repro.common.errors.DataError`.
    """
    key = (str(path), tuple(file_key))
    with _served_lock:
        ref = _served_handles.get(key)
    if ref is None:
        return None
    handle = ref()
    if handle is None or handle.closed:
        return None
    try:
        stat = os.stat(path)
    except OSError:
        return handle  # file gone: the live mmap is the only copy
    if (stat.st_size, stat.st_mtime_ns) != tuple(file_key):
        with _served_lock:
            if _served_handles.get(key) is ref:
                del _served_handles[key]
        return None
    return handle


class block_fetcher:
    """Context manager installing a remote block fetcher on this thread.

    ``fetcher(path, file_key)`` must return a ``read_rows``-capable
    source for that file state (a shard worker installs one that ships
    blocks from the driver, see
    :class:`~repro.net.worker.RemoteColFile`).  With ``local_files``
    False, local resolution is skipped entirely — the no-shared-disk
    configuration, where even a same-named file on the worker's own
    disk must not be trusted.
    """

    def __init__(self, fetcher, local_files=True):
        self._fetcher = fetcher
        self._local_files = local_files
        self._previous = None

    def __enter__(self):
        self._previous = (
            getattr(_block_fetcher, "fetcher", None),
            getattr(_block_fetcher, "local_files", True),
        )
        _block_fetcher.fetcher = self._fetcher
        _block_fetcher.local_files = self._local_files
        return self

    def __exit__(self, *exc_info):
        _block_fetcher.fetcher, _block_fetcher.local_files = self._previous


def resolve_local_handle(path, file_key):
    """A local ``read_rows`` source for ``(path, file_key)``.

    Registered live handles win (they survive file deletion); the
    process attachment cache opens the file otherwise.  This is the
    resolution the driver serves ``block_fetch`` requests with.
    """
    handle = served_handle(path, file_key)
    if handle is not None:
        return handle
    return attached_handle(path, file_key)


def resolve_block_source(path, file_key):
    """A ``read_rows`` source for ``(path, file_key)``, local or remote.

    Local resolution (:func:`resolve_local_handle`) applies first; when
    it fails — or is disabled — and the thread has a block fetcher
    installed, the fetcher supplies a remote source instead.  This is
    the one seam :class:`MmapTableBlock` resolves through, so the same
    pickled descriptor works on the driver, on a shared-disk worker and
    on a shared-nothing worker.
    """
    from repro.common.errors import DataError

    fetcher = getattr(_block_fetcher, "fetcher", None)
    local_files = getattr(_block_fetcher, "local_files", True)
    if local_files or fetcher is None:
        try:
            return resolve_local_handle(path, file_key)
        except DataError:
            if fetcher is None:
                raise
    return fetcher(path, file_key)


def _unlink_segment(segment, owner_pid):
    """Finalizer: remove the segment name, in the owning process only."""
    if os.getpid() != owner_pid:
        return
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    _close_quietly(segment)


class SharedArrayPack:
    """Several aligned NumPy arrays in one shared-memory segment.

    Create with :meth:`create` (copies each source array once); the
    object pickles as a descriptor and :attr:`arrays` resolves the
    views lazily on either side.  Driver-side (owner) views are
    writable — the session updates its estimates in place and workers
    observe the new values through the same pages; worker-side views
    are read-only.
    """

    def __init__(self, name, specs):
        self.name = name
        self.specs = tuple(specs)  # (offset, dtype_str, shape) per array
        self._segment = None
        self._arrays = None
        self._owner = False
        self._finalizer = None

    @classmethod
    def create(cls, arrays):
        arrays = [np.ascontiguousarray(a) for a in arrays]
        specs = []
        offset = 0
        for a in arrays:
            offset = -(-offset // _ALIGNMENT) * _ALIGNMENT
            specs.append((offset, a.dtype.str, a.shape))
            offset += a.nbytes
        segment = _shared_memory.SharedMemory(create=True,
                                              size=max(1, offset))
        views = []
        for a, (off, dtype, shape) in zip(arrays, specs):
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=segment.buf, offset=off)
            view[...] = a
            views.append(view)
        pack = cls(segment.name, specs)
        pack._segment = segment
        pack._arrays = views
        pack._owner = True
        pack._finalizer = weakref.finalize(
            pack, _unlink_segment, segment, os.getpid()
        )
        return pack

    @property
    def arrays(self):
        if self._arrays is None:
            segment = attached_segment(self.name)
            views = []
            for off, dtype, shape in self.specs:
                view = np.ndarray(shape, dtype=np.dtype(dtype),
                                  buffer=segment.buf, offset=off)
                view.setflags(write=False)
                views.append(view)
            self._arrays = views
        return self._arrays

    def unlink(self):
        """Remove the segment name (owner only; idempotent)."""
        if self._finalizer is not None:
            self._finalizer()

    def __getstate__(self):
        return (self.name, self.specs)

    def __setstate__(self, state):
        self.name, self.specs = state
        self._segment = None
        self._arrays = None
        self._owner = False
        self._finalizer = None


class SharedArray:
    """One shared-memory NumPy array (a single-entry pack)."""

    def __init__(self, pack):
        self._pack = pack

    @classmethod
    def create(cls, array):
        return cls(SharedArrayPack.create([array]))

    @property
    def array(self):
        return self._pack.arrays[0]

    def unlink(self):
        self._pack.unlink()


def resolve(obj):
    """The ndarray behind ``obj`` (passthrough for plain arrays).

    Stage kernels bind session arrays through this so the same kernel
    runs on a plain array (serial/thread modes) or on a
    :class:`SharedArray` descriptor (process mode).
    """
    if isinstance(obj, SharedArray):
        return obj.array
    return obj


class SharedTableBlock:
    """Picklable :class:`~repro.data.table.TableBlock` equivalent.

    Carries the pack descriptor plus its row range; ``columns`` and
    ``measure`` materialize as zero-copy views of the shared pages on
    first access (driver or worker).  The pack's final array is the
    measure column; the rest are the dimension columns in schema order.
    """

    __slots__ = ("index", "start", "stop", "size_bytes", "_pack",
                 "_columns", "_measure")

    def __init__(self, index, pack, start, stop, size_bytes):
        self.index = index
        self.start = start
        self.stop = stop
        self.size_bytes = size_bytes
        self._pack = pack
        self._columns = None
        self._measure = None

    @property
    def num_rows(self):
        return self.stop - self.start

    @property
    def columns(self):
        if self._columns is None:
            arrays = self._pack.arrays
            self._columns = [col[self.start:self.stop]
                             for col in arrays[:-1]]
        return self._columns

    @property
    def measure(self):
        if self._measure is None:
            self._measure = self._pack.arrays[-1][self.start:self.stop]
        return self._measure

    def __getstate__(self):
        return (self.index, self.start, self.stop, self.size_bytes,
                self._pack)

    def __setstate__(self, state):
        (self.index, self.start, self.stop, self.size_bytes,
         self._pack) = state
        self._columns = None
        self._measure = None


class MmapTableBlock:
    """Picklable table block backed by an mmap of the colfile itself.

    The file-backed counterpart of :class:`SharedTableBlock`: instead of
    a shm segment name it carries ``(path, file_key)`` plus its row
    range, and ``columns`` / ``measure`` resolve through
    :func:`resolve_block_source` — normally the process-cached
    read-only mapping from :func:`attached_handle`; on a shared-nothing
    worker, a remote source that ships the needed blocks from the
    driver (:func:`block_fetcher`).  A
    partition contained in one colfile block is a pure zero-copy view;
    one spanning blocks concatenates just its own rows (the columnar
    layout interleaves per block).  Either way no whole-table copy ever
    exists — the OS page cache is the only shared storage.

    There is no segment to unlink, so no owner/finalizer machinery:
    lifetime is the file's.
    """

    __slots__ = ("index", "start", "stop", "size_bytes", "path",
                 "file_key", "_columns", "_measure")

    def __init__(self, index, path, file_key, start, stop, size_bytes):
        self.index = index
        self.start = start
        self.stop = stop
        self.size_bytes = size_bytes
        self.path = str(path)
        self.file_key = tuple(file_key)
        self._columns = None
        self._measure = None

    @property
    def num_rows(self):
        return self.stop - self.start

    def _resolve(self):
        source = resolve_block_source(self.path, self.file_key)
        self._columns, self._measure = source.read_rows(self.start, self.stop)

    @property
    def columns(self):
        if self._columns is None:
            self._resolve()
        return self._columns

    @property
    def measure(self):
        if self._measure is None:
            self._resolve()
        return self._measure

    def __getstate__(self):
        return (self.index, self.start, self.stop, self.size_bytes,
                self.path, self.file_key)

    def __setstate__(self, state):
        (self.index, self.start, self.stop, self.size_bytes,
         self.path, self.file_key) = state
        self._columns = None
        self._measure = None
