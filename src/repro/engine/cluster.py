"""Cluster context: stages, scheduling, broadcast, caching.

A *stage* runs one kernel over a list of partitions, exactly like a
Spark stage runs one task per partition.  Kernels execute for real (in
process) and report their work through a
:class:`~repro.engine.task.TaskContext`; the scheduler then computes the
stage's simulated duration by placing tasks on executor cores (longest
processing time first), applying per-executor straggler factors, and
adding task-launch, shuffle and stage overheads.

``parallelism`` selects the *real* execution mode: 1 (the default)
runs partition kernels serially on the driver thread; N > 1 runs them
concurrently on a thread pool of N workers.  The two modes are
bit-compatible — outputs, counters and simulated seconds are identical
— because kernels must be pure per-partition functions and all shared
accounting happens on the driver in partition order:

- each task charges its own :class:`TaskContext` (exclusive, no locks);
- partition-cache accesses are *deferred* in parallel mode and replayed
  in partition order once every task has finished, so the LRU hit/miss
  sequence matches the serial one exactly;
- task durations, stage charges and counter merges are computed from
  the per-task contexts in partition order on the driver thread.

The default parallelism is read from the ``REPRO_PARALLELISM``
environment variable (unset/empty means serial), so a whole test run
can exercise the parallel mode without touching call sites.
"""

from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
import heapq
import os
import threading

from repro.common.errors import EngineError
from repro.data.hdfs import SimulatedHdfs
from repro.engine.cost import ClusterSpec, CostModel
from repro.engine.memory import CacheManager
from repro.engine.metrics import MetricsRegistry
from repro.engine.task import TaskContext


def default_parallelism():
    """Worker count from ``REPRO_PARALLELISM`` (1 when unset/empty)."""
    value = os.environ.get("REPRO_PARALLELISM", "").strip()
    if not value:
        return 1
    try:
        parsed = int(value)
    except ValueError:
        raise EngineError(
            "REPRO_PARALLELISM must be an integer, got %r" % value
        ) from None
    if parsed < 1:
        raise EngineError("REPRO_PARALLELISM must be at least 1")
    return parsed


class Broadcast:
    """Handle for a read-only value replicated to every executor."""

    def __init__(self, value, size_bytes):
        self.value = value
        self.size_bytes = size_bytes


class StageResult:
    """Outputs plus accounting for one executed stage."""

    def __init__(self, outputs, simulated_seconds, tasks):
        self.outputs = outputs
        self.simulated_seconds = simulated_seconds
        self.tasks = tasks


class ClusterContext:
    """A simulated cluster: run stages, broadcast values, cache data.

    ``parallelism`` is the number of real worker threads partition
    kernels run on (see the module docstring); ``None`` resolves from
    the ``REPRO_PARALLELISM`` environment variable.
    """

    def __init__(self, spec=None, cost_model=None, hdfs=None,
                 parallelism=None):
        self.spec = spec or ClusterSpec()
        self.cost = cost_model or CostModel()
        self.hdfs = hdfs or SimulatedHdfs()
        self.metrics = MetricsRegistry()
        self.cache = CacheManager(self.spec.total_storage_bytes, self.metrics)
        if parallelism is None:
            parallelism = default_parallelism()
        if parallelism < 1:
            raise EngineError("parallelism must be at least 1")
        self.parallelism = int(parallelism)
        self._pool = None
        self._sample_epoch = 0
        self._sample_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Worker pool lifecycle
    # ------------------------------------------------------------------

    def _worker_pool(self):
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="repro-stage",
            )
        return self._pool

    def close(self):
        """Shut down the worker pool (idempotent; serial mode is a no-op)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):
        try:
            pool = self._pool
        except AttributeError:  # interpreter teardown / failed __init__
            return
        if pool is not None:
            pool.shutdown(wait=False)

    def next_sample_seed(self):
        """A deterministic per-call seed for sampling operators.

        Successive calls yield distinct seeds (so repeated ``sample``
        calls draw different rows) while the sequence itself is a pure
        function of the cluster spec's seed — reruns reproduce.
        Thread-safe, like the cluster's other shared state.
        """
        with self._sample_lock:
            self._sample_epoch += 1
            return int(self.spec.seed) * 1_000_003 + self._sample_epoch

    # ------------------------------------------------------------------
    # Phase attribution
    # ------------------------------------------------------------------

    @contextmanager
    def phase(self, name):
        """Attribute simulated time of enclosed stages to phase ``name``."""
        self.metrics.push_phase(name)
        try:
            yield
        finally:
            self.metrics.pop_phase()

    # ------------------------------------------------------------------
    # Broadcast variables
    # ------------------------------------------------------------------

    def broadcast(self, value, size_bytes):
        """Replicate ``value`` to all executors, charging network time.

        The charge models Spark's torrent broadcast: the payload crosses
        the network once per receiving executor.
        """
        if size_bytes < 0:
            raise EngineError("broadcast size must be non-negative")
        receivers = max(self.spec.num_executors - 1, 0)
        self.metrics.charge(
            size_bytes * receivers * self.cost.broadcast_byte_seconds
        )
        self.metrics.increment("broadcast_bytes", size_bytes * receivers)
        return Broadcast(value, size_bytes)

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------

    def run_stage(self, kernel, partitions, name="stage", shuffle_output=False):
        """Execute ``kernel(task_ctx, partition)`` once per partition.

        Parameters
        ----------
        kernel:
            Callable receiving a :class:`TaskContext` and one partition
            object; its return value becomes the task output.  With
            ``parallelism`` > 1 kernels run concurrently and must be
            pure per-partition functions (no shared mutable state
            beyond their own task context).
        partitions:
            Sequence of partition objects (one task each).
        shuffle_output:
            If true, each task's declared ``output_bytes`` are charged
            at the shuffle byte rate (a wide dependency follows).

        Returns a :class:`StageResult` whose ``outputs`` are in
        partition order; outputs, counters and simulated seconds do
        not depend on the execution mode.
        """
        partitions = list(partitions)
        if not partitions:
            return StageResult([], 0.0, [])
        workers = min(self.parallelism, len(partitions))
        if workers > 1:
            tasks = [
                TaskContext(task_id=i, partition_id=i, defer_cache=True)
                for i in range(len(partitions))
            ]
            outputs = list(
                self._worker_pool().map(
                    lambda pair: kernel(*pair), zip(tasks, partitions)
                )
            )
            # Replay deferred cache accesses in partition order: the
            # hit/miss sequence (and resulting disk charges) is then
            # exactly what the serial loop would have produced.
            for tc in tasks:
                for key, size_bytes in tc.cache_requests:
                    tc.add_disk_bytes(self.cache.access(key, size_bytes))
                tc.cache_requests = []
        else:
            outputs = []
            tasks = []
            for i, part in enumerate(partitions):
                tc = TaskContext(task_id=i, partition_id=i)
                outputs.append(kernel(tc, part))
                tasks.append(tc)
        durations = [
            self.cost.task_seconds(
                tc.ops, tc.records, tc.disk_bytes, tc.light_ops
            )
            for tc in tasks
        ]
        makespan = self._schedule(durations)
        shuffle_seconds = 0.0
        if shuffle_output:
            shuffle_bytes = sum(tc.output_bytes for tc in tasks)
            shuffle_seconds = shuffle_bytes * self.cost.shuffle_byte_seconds
            self.metrics.increment("shuffle_bytes", shuffle_bytes)
        total = (
            makespan
            + shuffle_seconds
            + self.cost.stage_overhead_seconds
            + self.cost.job_launch_seconds
        )
        self.metrics.charge(total)
        self.metrics.increment("stages")
        self.metrics.increment("tasks", len(tasks))
        self.metrics.increment(
            "disk_read_bytes", sum(tc.disk_bytes for tc in tasks)
        )
        self.cache.record_timeline()
        return StageResult(outputs, total, tasks)

    def _schedule(self, durations):
        """LPT placement of task durations onto executor cores.

        Each executor contributes ``cores_per_executor`` slots running at
        the executor's straggler-adjusted speed; every task also pays the
        task-launch overhead on its slot.  Returns the stage makespan.

        When the spec enables ``speculative_execution``, tasks still
        running past ``speculation_multiplier`` times the stage's median
        task time are re-launched on the next free slot and finish at
        whichever attempt completes first — the straggler mitigation of
        Ananthanarayanan et al. [5] that thesis §5.7.2 points to.
        """
        slots = []  # heap of (available_at, slowdown_factor)
        for e in range(self.spec.num_executors):
            factor = float(self.spec.straggler_factors[e])
            for _ in range(self.spec.cores_per_executor):
                slots.append((0.0, factor))
        heapq.heapify(slots)
        launch = self.cost.task_launch_seconds
        placements = []  # (start, finish, duration)
        for duration in sorted(durations, reverse=True):
            available_at, factor = heapq.heappop(slots)
            finish = available_at + launch + duration * factor
            placements.append((available_at, finish, duration))
            heapq.heappush(slots, (finish, factor))
        if not placements:
            return 0.0
        makespan = max(finish for _s, finish, _d in placements)
        if not getattr(self.spec, "speculative_execution", False):
            return makespan

        # Speculation pass: clone attempts of tasks whose run time
        # exceeds the threshold; the clone starts once the straggling is
        # detectable (median run time after the task started).
        run_times = sorted(finish - start for start, finish, _d in placements)
        median = run_times[len(run_times) // 2]
        threshold = self.spec.speculation_multiplier * median
        makespan = 0.0
        clones = 0
        for start, finish, duration in placements:
            effective = finish
            if finish - start > threshold:
                available_at, factor = heapq.heappop(slots)
                clone_start = max(available_at, start + median)
                clone_finish = clone_start + launch + duration * factor
                effective = min(finish, clone_finish)
                clones += 1
                heapq.heappush(slots, (clone_finish, factor))
            makespan = max(makespan, effective)
        if clones:
            self.metrics.increment("speculative_clones", clones)
        return makespan

    # ------------------------------------------------------------------
    # Cache access helper
    # ------------------------------------------------------------------

    def cached_access(self, tc, key, size_bytes):
        """Access a cached partition inside a task.

        On a cache hit this is free; on a miss the task is charged a
        disk read of the partition's size (HDFS re-read / recompute, as
        in thesis §4.5).  In a parallel stage the access is deferred
        and replayed by the driver in partition order, so the charge
        lands on ``tc`` after the kernel returns rather than inline.
        """
        if tc.defer_cache:
            tc.request_cache_access(key, size_bytes)
        else:
            tc.add_disk_bytes(self.cache.access(key, size_bytes))

    def reset_metrics(self):
        """Start a fresh metrics registry (cache contents are kept)."""
        old = self.metrics
        self.metrics = MetricsRegistry()
        self.cache._metrics = self.metrics
        return old
