"""Cluster context: stages, scheduling, broadcast, caching.

A *stage* runs one kernel over a list of partitions, exactly like a
Spark stage runs one task per partition.  Kernels execute for real (in
process) and report their work through a
:class:`~repro.engine.task.TaskContext`; the scheduler then computes the
stage's simulated duration by placing tasks on executor cores (longest
processing time first), applying per-executor straggler factors, and
adding task-launch, shuffle and stage overheads.

``parallelism`` selects the *real* execution mode: 1 (the default)
runs partition kernels serially on the driver thread; N > 1 runs them
concurrently on a pool of N workers.  ``executor`` picks the pool
kind: ``"thread"`` (default) shares the driver's address space and
suits NumPy-heavy kernels that release the GIL; ``"process"`` runs
kernels in worker processes, which pays pickling/IPC per task but lets
pure-Python kernels (dict-path ancestor generation, the RDD baselines)
use every core.  All modes are bit-compatible — outputs, counters and
simulated seconds are identical — because kernels must be pure
per-partition functions and all shared accounting happens on the
driver in partition order:

- each task charges its own :class:`TaskContext` (exclusive, no
  locks); process-mode workers ship the context back as a serialized
  charge record the driver applies to a driver-side context;
- partition-cache accesses are *deferred* in every mode and replayed
  in partition order once the stage's tasks have finished, so the LRU
  hit/miss sequence is one canonical sequence regardless of execution
  mode (and an aborted stage leaves the cache untouched);
- task durations, stage charges and counter merges are computed from
  the per-task contexts in partition order on the driver thread.

Process-mode kernels must be picklable (module-level functions or
classes, ``functools.partial`` over them); a stage whose kernel does
not pickle transparently runs on the thread pool instead (counted in
``ClusterContext.fallback_stages``).  Failure semantics are identical
across modes: the exception of the lowest-index failing partition
propagates, in-flight tasks are drained, and the aborted stage charges
nothing — metrics and cache are exactly as they were before the stage.

The worker count resolves with one explicit precedence — **explicit
argument > placed/budget grant > environment > serial default**.  A
cluster given ``parallelism=N`` uses N; otherwise a cluster carrying a
``budget_grant`` (an allocation from the service's
:class:`~repro.service.budget.EngineBudget`, placed or not) uses the
*granted* degree; otherwise the ``REPRO_PARALLELISM`` environment
variable applies (unset/empty means serial).  The executor kind
resolves as explicit argument > ``REPRO_EXECUTOR`` > threads.  A held
grant is released when the cluster closes — after its pools have
joined, so slots return only once the workers they paid for are
actually gone.

Placement
---------
``placed=True`` (or a budget grant carrying slot ids, or
``REPRO_PLACEMENT=1``) turns the worker pool into an *addressable
topology*: one single-worker pool per slot, and ``run_stage`` routes
kernel i to the worker pinned to shard i (``i % workers``), so a
worker sees the same shards stage after stage and its process-local
attachment caches (:mod:`repro.engine.shm`) stay hot across stages and
coalesced jobs.  When the budget forces fewer workers than a stage has
shards, the stage *degrades to unplaced* execution on the shared pool
— pinning a worker to several shards would serialize them behind each
other, so the placed path only engages when every shard can own a
worker.  :meth:`ClusterContext.placement_stats` reports shard count,
affinity hit-rate and rebalances.

``executor="remote"`` extends the same routing across the wire: the
cluster ships pickled kernels plus picklable shard descriptors
(:class:`~repro.engine.shm.MmapTableBlock` /
:class:`~repro.engine.shm.SharedTableBlock`) to shard workers
(:mod:`repro.net.worker`) at ``workers=[...]`` addresses, sticky by
shard id, and merges outputs and charge records in partition order —
bit-identical to serial, like every other mode.
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as _wait_futures
from contextlib import contextmanager
import heapq
import os
import pickle
import threading

from repro.common.errors import EngineError
from repro.data.hdfs import SimulatedHdfs
from repro.engine.cost import ClusterSpec, CostModel
from repro.engine.memory import CacheManager
from repro.engine.metrics import MetricsRegistry
from repro.engine.placement import PlacementTracker, default_placement
from repro.engine.task import TaskContext


#: Supported worker-pool kinds for parallel stage execution.
EXECUTOR_THREAD = "thread"
EXECUTOR_PROCESS = "process"
EXECUTOR_REMOTE = "remote"
EXECUTORS = (EXECUTOR_THREAD, EXECUTOR_PROCESS, EXECUTOR_REMOTE)


def default_parallelism():
    """Worker count from ``REPRO_PARALLELISM`` (1 when unset/empty)."""
    value = os.environ.get("REPRO_PARALLELISM", "").strip()
    if not value:
        return 1
    try:
        parsed = int(value)
    except ValueError:
        raise EngineError(
            "REPRO_PARALLELISM must be an integer, got %r" % value
        ) from None
    if parsed < 1:
        raise EngineError("REPRO_PARALLELISM must be at least 1")
    return parsed


def default_executor():
    """Pool kind from ``REPRO_EXECUTOR`` (threads when unset/empty)."""
    value = os.environ.get("REPRO_EXECUTOR", "").strip().lower()
    if not value:
        return EXECUTOR_THREAD
    if value not in EXECUTORS:
        raise EngineError(
            "REPRO_EXECUTOR must be one of %s, got %r"
            % (", ".join(EXECUTORS), value)
        )
    return value


def resolve_parallelism(explicit=None, budget_grant=None):
    """Worker count under the documented precedence.

    Explicit argument > placed/budget grant > ``REPRO_PARALLELISM`` >
    serial.  The grant contributes its *granted* degree — what the
    machine-wide budget actually allocated, not what the job asked for
    — and a *placed* grant (one carrying slot ids) ranks exactly like
    an unplaced one: its degree is the number of slots it holds, which
    the budget keeps equal to ``granted``.
    """
    if explicit is not None:
        if explicit < 1:
            raise EngineError("parallelism must be at least 1")
        return int(explicit)
    if budget_grant is not None:
        slots = getattr(budget_grant, "slots", ())
        if slots:
            return len(slots)
        return int(budget_grant.granted)
    return default_parallelism()


def resolve_placement(explicit=None, budget_grant=None):
    """Placement preference under the same precedence as the degree.

    Explicit argument > placed grant (a grant carrying slot ids turns
    placement on) > ``REPRO_PLACEMENT`` > off.
    """
    if explicit is not None:
        return bool(explicit)
    if budget_grant is not None and getattr(budget_grant, "slots", ()):
        return True
    return default_placement()


def _is_pickling_error(exc):
    """True when ``exc`` reports a pickling failure.

    Submission-side failures (unpicklable partition data) and
    worker-side result failures (unpicklable task output) both surface
    through the task's future as one of these, letting the process
    path distinguish "this stage cannot cross a process boundary" from
    a genuine kernel error.
    """
    if isinstance(exc, pickle.PicklingError):
        return True
    return (isinstance(exc, (TypeError, AttributeError))
            and "pickle" in str(exc).lower())


def _drain_pools_then_release(pools, grant):
    """Join leaked worker pools, then return their budget slots."""
    for pool in pools:
        pool.shutdown(wait=True)
    grant.release()


def _run_pickled_task(kernel_bytes, index, partition):
    """Process-pool worker body: run one pickled kernel over one task.

    Executes in the worker process.  The kernel charges a local
    :class:`TaskContext` (cache accesses deferred, as in every mode)
    and the context travels back as a charge record — the driver never
    shares mutable state with workers.
    """
    kernel = pickle.loads(kernel_bytes)
    tc = TaskContext(task_id=index, partition_id=index, defer_cache=True)
    output = kernel(tc, partition)
    return output, tc.charges()


class Broadcast:
    """Handle for a read-only value replicated to every executor."""

    def __init__(self, value, size_bytes):
        self.value = value
        self.size_bytes = size_bytes


class StageResult:
    """Outputs plus accounting for one executed stage."""

    def __init__(self, outputs, simulated_seconds, tasks):
        self.outputs = outputs
        self.simulated_seconds = simulated_seconds
        self.tasks = tasks


class ClusterContext:
    """A simulated cluster: run stages, broadcast values, cache data.

    ``parallelism`` is the number of real workers partition kernels run
    on and ``executor`` the pool kind (``"thread"`` or ``"process"``;
    see the module docstring).  ``budget_grant`` is an engine-worker
    allocation from a :class:`~repro.service.budget.EngineBudget`;
    when ``parallelism`` is not given explicitly the *granted* degree
    is used, and the grant is released when this cluster closes.  With
    neither, the ``REPRO_PARALLELISM`` / ``REPRO_EXECUTOR``
    environment variables resolve the defaults.
    """

    def __init__(self, spec=None, cost_model=None, hdfs=None,
                 parallelism=None, executor=None, budget_grant=None,
                 placed=None, workers=None):
        self.spec = spec or ClusterSpec()
        self.cost = cost_model or CostModel()
        self.hdfs = hdfs or SimulatedHdfs()
        self.metrics = MetricsRegistry()
        self.cache = CacheManager(self.spec.total_storage_bytes, self.metrics)
        #: The budget allocation backing this cluster's workers (if
        #: any); released on close, on every completion/abort path.
        self.budget_grant = budget_grant
        self.parallelism = resolve_parallelism(parallelism, budget_grant)
        if executor is None:
            executor = default_executor()
        if executor not in EXECUTORS:
            raise EngineError(
                "executor must be one of %s, got %r"
                % (", ".join(EXECUTORS), executor)
            )
        self.executor = executor
        #: Remote shard-worker addresses ("host:port" or (host, port)),
        #: required by — and only meaningful for — the remote executor.
        self.workers = list(workers) if workers else []
        if executor == EXECUTOR_REMOTE:
            if not self.workers:
                raise EngineError(
                    "executor='remote' needs at least one worker address "
                    "(workers=[\"host:port\", ...])"
                )
            if parallelism is None and budget_grant is None \
                    and not os.environ.get("REPRO_PARALLELISM", "").strip():
                # With nothing else claiming a degree, a remote cluster
                # is as wide as its worker fleet.
                self.parallelism = len(self.workers)
        elif self.workers:
            raise EngineError(
                "worker addresses are only valid with executor='remote'"
            )
        #: Placed execution: route shard i to the worker pinned to slot
        #: ``i % workers`` (see the module docstring).  Resolution:
        #: explicit arg > placed grant > ``REPRO_PLACEMENT`` > off.
        self.placed = resolve_placement(placed, budget_grant)
        self.placement = PlacementTracker()
        #: Stages whose kernel did not pickle and ran on the thread
        #: pool instead of the process pool.  A plain attribute, not a
        #: metrics counter — registries stay bit-identical across modes.
        self.fallback_stages = 0
        self._pool = None
        self._process_pool = None
        self._placed_pools = None
        self._remote_clients = None
        self._sample_epoch = 0
        self._sample_lock = threading.Lock()

    @property
    def uses_processes(self):
        """True when partition data must cross a process boundary.

        Process-pool stages and remote stages both need picklable
        shard descriptors (shm or mmap blocks) rather than driver-local
        array views.
        """
        if self.executor == EXECUTOR_REMOTE:
            return True
        return self.executor == EXECUTOR_PROCESS and self.parallelism > 1

    # ------------------------------------------------------------------
    # Worker pool lifecycle
    # ------------------------------------------------------------------

    def _thread_pool(self):
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="repro-stage",
            )
        return self._pool

    def _worker_pool(self):
        if self.executor == EXECUTOR_PROCESS:
            if self._process_pool is None:
                self._process_pool = ProcessPoolExecutor(
                    max_workers=self.parallelism,
                )
            return self._process_pool
        return self._thread_pool()

    def _placed_worker_pools(self):
        """One single-worker pool per slot — the addressable topology.

        Stdlib pools cannot route a task to a chosen worker, so placed
        mode holds an array of one-worker pools instead: pool i *is*
        slot i, and submitting shard i to pool ``i % n`` is the whole
        placement mechanism.  Workers (threads or processes) spawn
        lazily on first submit, so unused slots cost nothing.
        """
        if self._placed_pools is None:
            if self.executor == EXECUTOR_PROCESS:
                self._placed_pools = [
                    ProcessPoolExecutor(max_workers=1)
                    for _ in range(self.parallelism)
                ]
            else:
                self._placed_pools = [
                    ThreadPoolExecutor(
                        max_workers=1,
                        thread_name_prefix="repro-shard-%d" % i,
                    )
                    for i in range(self.parallelism)
                ]
        return self._placed_pools

    def _worker_clients(self):
        """One connected client per remote shard-worker address."""
        if self._remote_clients is None:
            from repro.net.worker import ShardWorkerClient

            self._remote_clients = [
                ShardWorkerClient(address) for address in self.workers
            ]
        return self._remote_clients

    def _slot_id(self, local):
        """The reported slot id for local pool index ``local``.

        With a placed grant the machine-wide slot ids are the real
        identity (two clusters holding the same slots pin to the same
        budgeted workers); without one the local index serves.
        """
        slots = getattr(self.budget_grant, "slots", ())
        if slots:
            return slots[local % len(slots)]
        return local

    def close(self):
        """Shut down the worker pools (idempotent; serial mode is a no-op).

        Joins every worker thread and process, whichever executor kinds
        this cluster actually used (process mode keeps a thread pool
        too, for stages whose kernel does not pickle).  A budget grant
        backing this cluster is released last — slots return to the
        machine-wide budget only after the workers they paid for have
        actually exited.
        """
        pools = [self._pool, self._process_pool]
        pools.extend(self._placed_pools or ())
        self._pool = None
        self._process_pool = None
        self._placed_pools = None
        clients = self._remote_clients
        self._remote_clients = None
        for client in clients or ():
            client.close()
        for pool in pools:
            if pool is not None:
                pool.shutdown(wait=True)
        grant = self.budget_grant
        self.budget_grant = None
        if grant is not None:
            grant.release()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):
        try:
            pools = [self._pool, self._process_pool]
            pools.extend(self._placed_pools or ())
            clients = self._remote_clients
            grant = self.budget_grant
        except AttributeError:  # interpreter teardown / failed __init__
            return
        for client in clients or ():
            try:
                client.close()
            except Exception:
                pass
        live = [pool for pool in pools if pool is not None]
        for pool in live:
            pool.shutdown(wait=False)
        if grant is None:
            return
        if live:
            # A leaked cluster must not return its slots while the
            # workers they paid for may still be running — the budget's
            # aggregate cap would be transiently violated.  Drain on a
            # helper thread (shutdown is idempotent; the second call
            # just joins), then release.
            try:
                threading.Thread(
                    target=_drain_pools_then_release, args=(live, grant),
                    daemon=True,
                ).start()
            except RuntimeError:
                # Interpreter shutdown forbids new threads (3.12+).
                # The process is exiting: release inline so no waiter
                # is left deadlocked; the cap is moot at this point.
                grant.release()
        else:
            grant.release()

    def next_sample_seed(self):
        """A deterministic per-call seed for sampling operators.

        Successive calls yield distinct seeds (so repeated ``sample``
        calls draw different rows) while the sequence itself is a pure
        function of the cluster spec's seed — reruns reproduce.
        Thread-safe, like the cluster's other shared state.
        """
        with self._sample_lock:
            self._sample_epoch += 1
            return int(self.spec.seed) * 1_000_003 + self._sample_epoch

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def bind_shard_map(self, shard_map):
        """Bind placement to ``shard_map`` — the affinity scope.

        Callers that partition through a
        :class:`~repro.engine.placement.ShardMap` (the mining session
        does) bind it here so the tracker knows the shard count and can
        detect a rebind across dataset versions (counted as a
        *rebalance*: the old worker pins are meaningless against new
        data).  Purely observational — routing never depends on it.
        """
        self.placement.bind(shard_map)

    def placement_stats(self):
        """Placement topology and affinity counters, one dict."""
        stats = self.placement.stats()
        stats["enabled"] = bool(self.placed)
        stats["executor"] = self.executor
        stats["workers"] = (
            len(self.workers) if self.executor == EXECUTOR_REMOTE
            else self.parallelism
        )
        if self.executor == EXECUTOR_REMOTE and self._remote_clients:
            stats["healthy_workers"] = sum(
                1 for c in self._remote_clients if c.healthy
            )
            stats["blocks_shipped"] = sum(
                c.blocks_shipped for c in self._remote_clients
            )
            stats["bytes_shipped"] = sum(
                c.bytes_shipped for c in self._remote_clients
            )
        return stats

    # ------------------------------------------------------------------
    # Phase attribution
    # ------------------------------------------------------------------

    @contextmanager
    def phase(self, name):
        """Attribute simulated time of enclosed stages to phase ``name``."""
        self.metrics.push_phase(name)
        try:
            yield
        finally:
            self.metrics.pop_phase()

    # ------------------------------------------------------------------
    # Broadcast variables
    # ------------------------------------------------------------------

    def broadcast(self, value, size_bytes):
        """Replicate ``value`` to all executors, charging network time.

        The charge models Spark's torrent broadcast: the payload crosses
        the network once per receiving executor.
        """
        if size_bytes < 0:
            raise EngineError("broadcast size must be non-negative")
        receivers = max(self.spec.num_executors - 1, 0)
        self.metrics.charge(
            size_bytes * receivers * self.cost.broadcast_byte_seconds
        )
        self.metrics.increment("broadcast_bytes", size_bytes * receivers)
        return Broadcast(value, size_bytes)

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------

    def run_stage(self, kernel, partitions, name="stage", shuffle_output=False):
        """Execute ``kernel(task_ctx, partition)`` once per partition.

        Parameters
        ----------
        kernel:
            Callable receiving a :class:`TaskContext` and one partition
            object; its return value becomes the task output.  With
            ``parallelism`` > 1 kernels run concurrently and must be
            pure per-partition functions (no shared mutable state
            beyond their own task context).
        partitions:
            Sequence of partition objects (one task each).
        shuffle_output:
            If true, each task's declared ``output_bytes`` are charged
            at the shuffle byte rate (a wide dependency follows).

        Returns a :class:`StageResult` whose ``outputs`` are in
        partition order; outputs, counters and simulated seconds do
        not depend on the execution mode.  A kernel exception aborts
        the stage: pending tasks are cancelled, in-flight tasks are
        drained, the lowest-index failure propagates, and no charge —
        simulated time, counters or cache state — is applied.
        """
        partitions = list(partitions)
        if not partitions:
            return StageResult([], 0.0, [])
        workers = min(self.parallelism, len(partitions))
        if self.executor == EXECUTOR_REMOTE:
            # Remote stages always cross the wire (even a single
            # shard): routing is sticky by shard id, so it is placed
            # execution by construction.
            self.placement.record_stage(True)
            tasks, outputs = self._run_tasks_remote(kernel, partitions)
        elif workers > 1 and self.placed \
                and len(partitions) <= self.parallelism:
            # Every shard can own a worker: placed execution, shard i
            # pinned to slot i.
            self.placement.record_stage(True)
            tasks, outputs = self._run_tasks_placed(kernel, partitions)
        elif workers > 1 and self.executor == EXECUTOR_PROCESS:
            if self.placed:
                # More shards than budgeted workers: pinning would
                # serialize shards behind each other, so degrade to the
                # shared (unplaced) pool.
                self.placement.record_stage(False)
            tasks, outputs = self._run_tasks_process(kernel, partitions)
        elif workers > 1:
            if self.placed:
                self.placement.record_stage(False)
            tasks, outputs = self._run_tasks_threaded(
                kernel, partitions, self._thread_pool()
            )
        else:
            tasks, outputs = self._run_tasks_serial(kernel, partitions)
        # Replay deferred cache accesses in partition order — in every
        # mode, so the hit/miss sequence (and resulting disk charges)
        # is one canonical sequence and an aborted stage above never
        # touched the cache at all.
        for tc in tasks:
            for key, size_bytes in tc.cache_requests:
                tc.add_disk_bytes(self.cache.access(key, size_bytes))
            tc.cache_requests = []
        durations = [
            self.cost.task_seconds(
                tc.ops, tc.records, tc.disk_bytes, tc.light_ops
            )
            for tc in tasks
        ]
        makespan = self._schedule(durations)
        shuffle_seconds = 0.0
        if shuffle_output:
            shuffle_bytes = sum(tc.output_bytes for tc in tasks)
            shuffle_seconds = shuffle_bytes * self.cost.shuffle_byte_seconds
            self.metrics.increment("shuffle_bytes", shuffle_bytes)
        total = (
            makespan
            + shuffle_seconds
            + self.cost.stage_overhead_seconds
            + self.cost.job_launch_seconds
        )
        self.metrics.charge(total)
        self.metrics.increment("stages")
        self.metrics.increment("tasks", len(tasks))
        self.metrics.increment(
            "disk_read_bytes", sum(tc.disk_bytes for tc in tasks)
        )
        self.cache.record_timeline()
        return StageResult(outputs, total, tasks)

    # ------------------------------------------------------------------
    # Task execution (one body per execution mode)
    # ------------------------------------------------------------------

    def _run_tasks_serial(self, kernel, partitions):
        tasks = []
        outputs = []
        for i, part in enumerate(partitions):
            tc = TaskContext(task_id=i, partition_id=i, defer_cache=True)
            outputs.append(kernel(tc, part))
            tasks.append(tc)
        return tasks, outputs

    def _run_tasks_threaded(self, kernel, partitions, pool):
        tasks = [
            TaskContext(task_id=i, partition_id=i, defer_cache=True)
            for i in range(len(partitions))
        ]
        futures = [
            pool.submit(kernel, tc, part)
            for tc, part in zip(tasks, partitions)
        ]
        return tasks, self._collect_in_order(futures)

    def _run_tasks_process(self, kernel, partitions):
        try:
            kernel_bytes = pickle.dumps(
                kernel, protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            # Closures and other unpicklable kernels (the lazy/RDD
            # layers accept arbitrary user functions) cannot cross a
            # process boundary; run this stage on the thread pool.
            return self._fallback_to_threads(kernel, partitions)
        pool = self._worker_pool()
        futures = [
            pool.submit(_run_pickled_task, kernel_bytes, i, part)
            for i, part in enumerate(partitions)
        ]
        try:
            records = self._collect_in_order(futures)
        except BaseException as exc:
            if not _is_pickling_error(exc):
                raise
            # The kernel pickled but something else did not cross the
            # boundary: unpicklable partition elements at submission,
            # an unpicklable task output on the way back — or a kernel
            # that raised an exception whose *instance* does not
            # pickle (worker exception transport reports all of these
            # as pickling failures).  The aborted attempt charged
            # nothing (abort semantics) and kernels are pure, so
            # rerunning on the thread pool is safe and bit-identical;
            # in the unpicklable-exception case it costs a second run
            # but surfaces the kernel's real exception instead of a
            # transport PicklingError.
            return self._fallback_to_threads(kernel, partitions)
        return self._records_to_tasks(records)

    @staticmethod
    def _records_to_tasks(records):
        """Driver-side task contexts from worker charge records."""
        tasks = []
        outputs = []
        for i, (output, charges) in enumerate(records):
            tc = TaskContext(task_id=i, partition_id=i, defer_cache=True)
            tc.apply_charges(charges)
            tasks.append(tc)
            outputs.append(output)
        return tasks, outputs

    def _run_tasks_placed(self, kernel, partitions):
        """Placed execution: shard i on the single-worker pool for
        slot ``i % n`` (``n == parallelism >= len(partitions)``, so in
        practice every shard owns its worker).

        Identical semantics to the shared-pool paths — same charge
        records, same in-order collection, same fallback for kernels
        that do not pickle — only the routing differs.
        """
        pools = self._placed_worker_pools()
        if self.executor == EXECUTOR_PROCESS:
            try:
                kernel_bytes = pickle.dumps(
                    kernel, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:
                return self._fallback_to_threads(kernel, partitions)
            futures = []
            for i, part in enumerate(partitions):
                slot = i % len(pools)
                self.placement.record(i, self._slot_id(slot))
                futures.append(pools[slot].submit(
                    _run_pickled_task, kernel_bytes, i, part
                ))
            try:
                records = self._collect_in_order(futures)
            except BaseException as exc:
                if not _is_pickling_error(exc):
                    raise
                return self._fallback_to_threads(kernel, partitions)
            return self._records_to_tasks(records)
        tasks = [
            TaskContext(task_id=i, partition_id=i, defer_cache=True)
            for i in range(len(partitions))
        ]
        futures = []
        for i, (tc, part) in enumerate(zip(tasks, partitions)):
            slot = i % len(pools)
            self.placement.record(i, self._slot_id(slot))
            futures.append(pools[slot].submit(kernel, tc, part))
        return tasks, self._collect_in_order(futures)

    def _run_tasks_remote(self, kernel, partitions):
        """Remote execution: ship pickled kernel + shard descriptors to
        shard workers, sticky by shard id; merge in partition order.

        Each worker runs its batch in ascending shard order and ships
        back ``(output, charges)`` records; the driver applies charges
        to driver-side contexts exactly as process mode does, so every
        simulated metric is bit-identical to serial.  Failure semantics
        match too: the lowest-index failing shard's exception
        propagates and the aborted stage charges nothing.  Anything
        that cannot cross the wire (kernel, partition, output or
        exception instance) falls the stage back to the thread pool.

        A worker that times out or drops its connection mid-stage is
        marked dead (:meth:`~repro.net.worker.ShardWorkerClient.mark_dead`)
        and its unfinished shards re-place onto the surviving workers
        on the next round — counted as a
        :meth:`~repro.engine.placement.PlacementTracker.worker_failure`
        — repeating until the stage resolves or no worker survives, at
        which point the stage degrades to the local thread pool.
        Re-running a dead worker's shards is safe at-most-once: a
        failed ``run_stage`` call merges *nothing* (records and charges
        apply driver-side only from answered calls) and kernels are
        pure, so the retried result is bit-identical.
        """
        try:
            kernel_bytes = pickle.dumps(
                kernel, protocol=pickle.HIGHEST_PROTOCOL
            )
            blobs = [
                pickle.dumps(part, protocol=pickle.HIGHEST_PROTOCOL)
                for part in partitions
            ]
        except Exception:
            return self._fallback_to_threads(kernel, partitions)
        clients = self._worker_clients()
        pool = self._thread_pool()
        remaining = dict(enumerate(blobs))  # shard index -> blob
        records = {}
        failures = []
        # Every extra round is caused either by a worker death (at most
        # one per client) or by failure pruning (the lowest failing
        # index strictly decreases), so this backstop never trips on a
        # converging stage.
        rounds_left = len(clients) + len(partitions) + 1
        had_death = False
        while remaining:
            rounds_left -= 1
            alive = [
                (slot, client)
                for slot, client in enumerate(clients) if client.healthy
            ]
            if had_death and alive:
                # A death this stage makes the survivor list suspect
                # (a partitioned network rarely takes exactly one
                # host); probe before committing shards to a peer that
                # would only time out too.
                for slot, client in alive:
                    if not client.heartbeat():
                        client.mark_dead()
                        self.placement.worker_failure()
                alive = [
                    (slot, client)
                    for slot, client in alive if client.healthy
                ]
                had_death = False
            if not alive or rounds_left < 0:
                return self._fallback_to_threads(kernel, partitions)
            batches = {}  # slot -> [(shard index, blob)]
            for i in sorted(remaining):
                slot = alive[i % len(alive)][0]
                self.placement.record(i, slot)
                batches.setdefault(slot, []).append((i, remaining[i]))
            futures = {
                slot: pool.submit(
                    clients[slot].run_stage, kernel_bytes, batch
                )
                for slot, batch in batches.items()
            }
            for slot, future in futures.items():
                try:
                    worker_records, worker_failures = future.result()
                except EngineError:
                    # Timed out, refused or dropped mid-call: the
                    # worker is dead to this stage.  Nothing of its
                    # batch merged, so its shards stay in ``remaining``
                    # and re-place onto the survivors next round.
                    clients[slot].mark_dead()
                    self.placement.worker_failure(
                        [i for i, _blob in batches[slot]]
                    )
                    had_death = True
                    continue
                for i, record in worker_records.items():
                    records[i] = record
                    remaining.pop(i, None)
                failures.extend(worker_failures)
            if failures:
                # The lowest-index-failure contract: shards *below* the
                # lowest failure seen so far must still resolve (one of
                # them may fail at an even lower index, which is the
                # exception a serial run would surface); everything at
                # or above it is moot.
                lowest = min(f[0] for f in failures)
                remaining = {
                    i: blob for i, blob in remaining.items() if i < lowest
                }
        if failures:
            failures.sort(key=lambda f: f[0])
            _index, exc, is_pickling = failures[0]
            if is_pickling or any(f[2] for f in failures):
                # Something in this stage does not survive the wire
                # (unpicklable output or exception instance): rerun on
                # the thread pool, like process mode.
                return self._fallback_to_threads(kernel, partitions)
            raise exc
        return self._records_to_tasks(
            [records[i] for i in range(len(partitions))]
        )

    def _fallback_to_threads(self, kernel, partitions):
        self.fallback_stages += 1
        return self._run_tasks_threaded(
            kernel, partitions, self._thread_pool()
        )

    def _collect_in_order(self, futures):
        """Results in submission order; abort cleanly on failure.

        On the first failing task (by partition index — the same task
        whose exception a serial loop would surface), later tasks are
        cancelled, already-running ones are drained, and the original
        exception re-raises.  The caller applies no charges for an
        aborted stage.
        """
        outputs = []
        failure = None
        for index, future in enumerate(futures):
            try:
                outputs.append(future.result())
            except BaseException as exc:
                failure = exc
                for pending in futures[index + 1:]:
                    pending.cancel()
                break
        if failure is not None:
            _wait_futures(futures)
            raise failure
        return outputs

    def _schedule(self, durations):
        """LPT placement of task durations onto executor cores.

        Each executor contributes ``cores_per_executor`` slots running at
        the executor's straggler-adjusted speed; every task also pays the
        task-launch overhead on its slot.  Returns the stage makespan.

        When the spec enables ``speculative_execution``, tasks still
        running past ``speculation_multiplier`` times the stage's median
        task time are re-launched on the next free slot and finish at
        whichever attempt completes first — the straggler mitigation of
        Ananthanarayanan et al. [5] that thesis §5.7.2 points to.
        """
        slots = []  # heap of (available_at, slowdown_factor)
        for e in range(self.spec.num_executors):
            factor = float(self.spec.straggler_factors[e])
            for _ in range(self.spec.cores_per_executor):
                slots.append((0.0, factor))
        heapq.heapify(slots)
        launch = self.cost.task_launch_seconds
        placements = []  # (start, finish, duration)
        for duration in sorted(durations, reverse=True):
            available_at, factor = heapq.heappop(slots)
            finish = available_at + launch + duration * factor
            placements.append((available_at, finish, duration))
            heapq.heappush(slots, (finish, factor))
        if not placements:
            return 0.0
        makespan = max(finish for _s, finish, _d in placements)
        if not getattr(self.spec, "speculative_execution", False):
            return makespan

        # Speculation pass: clone attempts of tasks whose run time
        # exceeds the threshold; the clone starts once the straggling is
        # detectable (median run time after the task started).
        run_times = sorted(finish - start for start, finish, _d in placements)
        median = run_times[len(run_times) // 2]
        threshold = self.spec.speculation_multiplier * median
        makespan = 0.0
        clones = 0
        for start, finish, duration in placements:
            effective = finish
            if finish - start > threshold:
                available_at, factor = heapq.heappop(slots)
                clone_start = max(available_at, start + median)
                clone_finish = clone_start + launch + duration * factor
                effective = min(finish, clone_finish)
                clones += 1
                heapq.heappush(slots, (clone_finish, factor))
            makespan = max(makespan, effective)
        if clones:
            self.metrics.increment("speculative_clones", clones)
        return makespan

    # ------------------------------------------------------------------
    # Cache access helper
    # ------------------------------------------------------------------

    def cached_access(self, tc, key, size_bytes):
        """Access a cached partition inside a task.

        On a cache hit this is free; on a miss the task is charged a
        disk read of the partition's size (HDFS re-read / recompute, as
        in thesis §4.5).  Inside a stage the access is deferred — in
        every execution mode — and replayed by the driver in partition
        order, so the charge lands on ``tc`` after the kernel returns
        rather than inline and the sequence is mode-independent.
        """
        if tc.defer_cache:
            tc.request_cache_access(key, size_bytes)
        else:
            tc.add_disk_bytes(self.cache.access(key, size_bytes))

    def reset_metrics(self):
        """Start a fresh metrics registry (cache contents are kept)."""
        old = self.metrics
        self.metrics = MetricsRegistry()
        self.cache._metrics = self.metrics
        return old
