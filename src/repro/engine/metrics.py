"""Run metrics: simulated time, per-phase attribution, counters.

The miner labels stages with a *phase* (``"candidate_pruning"``,
``"ancestor_generation"``, ``"gain"``, ``"iterative_scaling"``, ...)
so benchmarks can break simulated time down the way thesis Figures 3.1
and 3.2 do.  The memory timeline records (simulated time, cached bytes)
pairs for the Figure 4.3/4.4 plots.

Accumulation is thread-safe: ``charge`` / ``increment`` / ``merge``
take an internal lock so a registry shared across threads (a cluster
reused by concurrent service jobs) never loses updates.  The *phase
stack* stays driver-owned — stage kernels never push or pop phases;
all stage-level charges are applied on the driver thread in partition
order, which is what keeps parallel and serial runs bit-identical.
"""

import threading

from collections import OrderedDict


class MetricsRegistry:
    """Accumulates simulated time and engine counters for one run."""

    def __init__(self):
        self.simulated_seconds = 0.0
        self.phase_seconds = OrderedDict()
        self.counters = OrderedDict()
        self.memory_timeline = []
        self._phase_stack = []
        self._lock = threading.RLock()

    # -- phases --------------------------------------------------------

    def push_phase(self, name):
        with self._lock:
            self._phase_stack.append(name)

    def pop_phase(self):
        with self._lock:
            self._phase_stack.pop()

    @property
    def current_phase(self):
        return self._phase_stack[-1] if self._phase_stack else "unattributed"

    def charge(self, seconds):
        """Advance simulated time, attributing it to the current phase."""
        with self._lock:
            self.simulated_seconds += seconds
            phase = self.current_phase
            self.phase_seconds[phase] = (
                self.phase_seconds.get(phase, 0.0) + seconds
            )

    # -- counters ------------------------------------------------------

    def increment(self, name, amount=1):
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name):
        return self.counters.get(name, 0)

    # -- memory timeline -----------------------------------------------

    def record_memory(self, cached_bytes):
        with self._lock:
            self.memory_timeline.append((self.simulated_seconds, cached_bytes))

    # -- views -----------------------------------------------------------

    def phase(self, name):
        return self.phase_seconds.get(name, 0.0)

    def snapshot(self):
        """Immutable copy of all metrics, for diffing before/after."""
        with self._lock:
            return {
                "simulated_seconds": self.simulated_seconds,
                "phase_seconds": dict(self.phase_seconds),
                "counters": dict(self.counters),
            }

    def merge(self, other):
        """Fold another registry's totals into this one."""
        theirs = other.snapshot()
        with self._lock:
            self.simulated_seconds += theirs["simulated_seconds"]
            for name, seconds in theirs["phase_seconds"].items():
                self.phase_seconds[name] = (
                    self.phase_seconds.get(name, 0.0) + seconds
                )
            for name, amount in theirs["counters"].items():
                self.counters[name] = self.counters.get(name, 0) + amount
        return self
