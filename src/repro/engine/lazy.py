"""Lazy RDDs: lineage DAG, stage pipelining, fault recovery.

The eager layer (:mod:`repro.engine.rdd`) meters every transformation
as its own stage.  Real Spark — the platform the thesis builds on —
instead records a *lineage* of lazy transformations and, when an action
runs, compiles chains of narrow transformations into single pipelined
stages separated only at shuffle boundaries (Zaharia et al. [37]).
This module implements that execution model on the same
:class:`~repro.engine.cluster.ClusterContext`:

- :class:`LazyRDD` — a lineage node; transformations build the DAG and
  nothing executes until an action (``collect`` / ``count`` / ...);
- :class:`DAGScheduler` — fuses narrow chains into one metered stage
  each (fewer stage overheads, no intermediate materialization),
  splits at wide dependencies, and reuses persisted partitions;
- **fault recovery** — ``fail_partitions`` drops a persisted RDD's
  materialized partitions; the next action transparently recomputes
  them from lineage, the RDD paper's core fault-tolerance story.

The pipelining benefit is observable: the same SIRUM dataflow executed
lazily charges fewer stages and fewer record touches than the eager
layer, which the engine ablation benchmark quantifies.
"""

from repro.common.errors import EngineError
from repro.common.rng import make_rng
from repro.engine.rdd import ELEMENT_BYTES

#: Lineage operator kinds considered narrow (pipelineable).
NARROW_KINDS = frozenset(["map_partitions", "broadcast_join", "sample"])


class LazyRDD:
    """A node in the lineage DAG.

    Construct via :meth:`parallelize` or a transformation on an
    existing LazyRDD; run with an action.  Each node knows its
    operator kind, payload and parent(s).
    """

    _next_id = 0

    def __init__(self, ctx, kind, payload, parents, num_partitions):
        self.ctx = ctx
        self.kind = kind
        self.payload = payload
        self.parents = list(parents)
        self.num_partitions = num_partitions
        self.persisted = False
        self._materialized = None
        LazyRDD._next_id += 1
        self._id = LazyRDD._next_id

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    @classmethod
    def parallelize(cls, ctx, data, num_partitions):
        data = list(data)
        if num_partitions < 1:
            raise EngineError("num_partitions must be at least 1")
        n = len(data)
        bounds = [n * i // num_partitions for i in range(num_partitions + 1)]
        partitions = [
            data[bounds[i]:bounds[i + 1]] for i in range(num_partitions)
        ]
        return cls(ctx, "parallelize", partitions, [], num_partitions)

    # ------------------------------------------------------------------
    # Narrow transformations (lazy)
    # ------------------------------------------------------------------

    def map_partitions(self, fn, label="map_partitions"):
        return LazyRDD(
            self.ctx, "map_partitions", (fn, label), [self], self.num_partitions
        )

    def map(self, fn):
        return self.map_partitions(
            lambda part: [fn(x) for x in part], label="map"
        )

    def filter(self, fn):
        return self.map_partitions(
            lambda part: [x for x in part if fn(x)], label="filter"
        )

    def flat_map(self, fn):
        def kernel(part):
            out = []
            for x in part:
                out.extend(fn(x))
            return out

        return self.map_partitions(kernel, label="flat_map")

    def sample(self, fraction, seed=None):
        """Per-partition Bernoulli sample (lineage-recomputable).

        ``seed=None`` derives a per-call seed from the cluster context;
        the resolved seed is stored in the lineage node, so fault
        recovery recomputes exactly the same sample.
        """
        if not 0.0 < fraction <= 1.0:
            raise EngineError("sample fraction must be in (0, 1]")
        if seed is None:
            seed = self.ctx.next_sample_seed()
        return LazyRDD(
            self.ctx, "sample", (fraction, seed), [self], self.num_partitions
        )

    def broadcast_join(self, small_pairs):
        """Map-side join against a broadcast dict (BJ SIRUM, §3.2)."""
        small = dict(small_pairs)
        return LazyRDD(
            self.ctx, "broadcast_join", small, [self], self.num_partitions
        )

    # ------------------------------------------------------------------
    # Wide transformations (stage boundaries)
    # ------------------------------------------------------------------

    def reduce_by_key(self, combine, num_partitions=None):
        return LazyRDD(
            self.ctx,
            "reduce_by_key",
            combine,
            [self],
            num_partitions or self.num_partitions,
        )

    def group_by_key(self, num_partitions=None):
        as_lists = self.map(lambda kv: (kv[0], [kv[1]]))
        return as_lists.reduce_by_key(lambda a, b: a + b, num_partitions)

    def union(self, other):
        if other.ctx is not self.ctx:
            raise EngineError("cannot union RDDs from different clusters")
        return LazyRDD(
            self.ctx,
            "union",
            None,
            [self, other],
            self.num_partitions + other.num_partitions,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def persist(self):
        """Keep this RDD's partitions after first materialization."""
        self.persisted = True
        return self

    cache = persist

    def unpersist(self):
        self.persisted = False
        self._materialized = None
        return self

    def is_materialized(self):
        return self._materialized is not None

    def fail_partitions(self, indices=None):
        """Simulate loss of materialized partitions (executor failure).

        Dropped partitions are recomputed from lineage by the next
        action.  With ``indices=None`` all partitions are lost.
        """
        if self._materialized is None:
            return 0
        if indices is None:
            lost = len(self._materialized)
            self._materialized = None
            return lost
        lost = 0
        for index in indices:
            if self._materialized[index] is not None:
                self._materialized[index] = None
                lost += 1
        return lost

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def collect(self):
        partitions = DAGScheduler(self.ctx).materialize(self)
        out = []
        for part in partitions:
            out.extend(part)
        return out

    def count(self):
        return len(self.collect())

    def reduce(self, fn):
        values = self.collect()
        if not values:
            raise EngineError("reduce of an empty RDD")
        acc = values[0]
        for value in values[1:]:
            acc = fn(acc, value)
        return acc

    def take(self, n):
        return self.collect()[:n]

    def __repr__(self):
        return "LazyRDD(#%d %s, %d partitions%s)" % (
            self._id,
            self.kind,
            self.num_partitions,
            ", persisted" if self.persisted else "",
        )


class DAGScheduler:
    """Materializes a lineage DAG with pipelined narrow stages.

    Walking up from the action's RDD, consecutive narrow operators are
    fused into a single kernel run as one
    :meth:`~repro.engine.cluster.ClusterContext.run_stage` call —
    records are touched once per *stage*, not once per transformation.
    Wide operators (``reduce_by_key``) end the chain: the child stage's
    combiner output is shuffled and reduced exactly as the eager layer
    does.  Persisted RDDs cut chains too: their partitions are reused
    when materialized and recomputed from lineage when lost.
    """

    def __init__(self, ctx):
        self.ctx = ctx
        #: Partitions recomputed due to fail_partitions, for tests.
        self.recomputed_partitions = 0

    def materialize(self, rdd):
        """Return ``rdd``'s partitions, executing whatever is missing."""
        if rdd._materialized is not None and all(
            part is not None for part in rdd._materialized
        ):
            return rdd._materialized

        partitions = self._compute(rdd)
        if rdd.persisted:
            if rdd._materialized is not None:
                # Partial loss: only the holes were recomputed work,
                # but _compute returned a full set; count the holes.
                self.recomputed_partitions += sum(
                    1 for part in rdd._materialized if part is None
                )
            rdd._materialized = list(partitions)
            for i, part in enumerate(partitions):
                self.ctx.cache.access(
                    ("lazy-%d" % rdd._id, i), len(part) * ELEMENT_BYTES
                )
        return partitions

    # ------------------------------------------------------------------
    # Recursive stage construction
    # ------------------------------------------------------------------

    def _compute(self, rdd):
        """Compute ``rdd`` by fusing its narrow ancestor chain."""
        chain = []
        node = rdd
        while True:
            if node._materialized is not None and all(
                part is not None for part in node._materialized
            ):
                source = node._materialized
                break
            if node is not rdd and node.persisted:
                # A persisted intermediate cuts the pipeline: compute
                # and keep it so later actions reuse the partitions.
                source = self.materialize(node)
                break
            if node.kind in NARROW_KINDS:
                chain.append(node)
                node = node.parents[0]
                continue
            source = self._compute_boundary(node)
            break
        if not chain:
            return source
        kernel = self._fuse(list(reversed(chain)))

        def stage_kernel(tc, item):
            index, part = item
            tc.add_records(len(part))
            result = kernel(part, index)
            tc.add_ops(len(result))
            return result

        stage = self.ctx.run_stage(
            stage_kernel,
            list(enumerate(source)),
            name="pipelined[%d ops]" % len(chain),
        )
        return stage.outputs

    def _fuse(self, nodes):
        """Compose narrow operators source-to-sink into one kernel."""
        steps = []
        for node in nodes:
            if node.kind == "map_partitions":
                fn = node.payload[0]
                steps.append(lambda part, index, fn=fn: list(fn(part)))
            elif node.kind == "broadcast_join":
                table = node.payload
                handle = self.ctx.broadcast(
                    table, len(table) * ELEMENT_BYTES
                )
                steps.append(
                    lambda part, index, h=handle: [
                        (k, (v, h.value[k])) for k, v in part if k in h.value
                    ]
                )
            elif node.kind == "sample":
                fraction, seed = node.payload
                steps.append(
                    lambda part, index, f=fraction, s=seed: _sample_partition(
                        part, f, s, index
                    )
                )
            else:
                raise EngineError("cannot fuse operator %r" % node.kind)

        def kernel(part, index):
            for step in steps:
                part = step(part, index)
            return part

        return kernel

    def _compute_boundary(self, node):
        """Execute a non-narrow node: source, shuffle or union."""
        if node.kind == "parallelize":
            return node.payload
        if node.kind == "union":
            left = self.materialize(node.parents[0])
            right = self.materialize(node.parents[1])
            return list(left) + list(right)
        if node.kind == "reduce_by_key":
            return self._shuffle_reduce(node)
        raise EngineError("unknown lineage operator %r" % node.kind)

    def _shuffle_reduce(self, node):
        combine = node.payload
        parent_parts = self.materialize(node.parents[0])
        num_partitions = node.num_partitions

        def combine_kernel(tc, item):
            _index, part = item
            tc.add_records(len(part))
            acc = {}
            for key, value in part:
                if key in acc:
                    acc[key] = combine(acc[key], value)
                else:
                    acc[key] = value
                tc.add_ops(1)
            tc.add_output_bytes(len(acc) * ELEMENT_BYTES)
            return acc

        combined = self.ctx.run_stage(
            combine_kernel,
            list(enumerate(parent_parts)),
            name="map_side_combine",
            shuffle_output=True,
        )
        buckets = [dict() for _ in range(num_partitions)]
        for acc in combined.outputs:
            for key, value in acc.items():
                bucket = buckets[hash(key) % num_partitions]
                if key in bucket:
                    bucket[key] = combine(bucket[key], value)
                else:
                    bucket[key] = value

        def reduce_kernel(tc, bucket):
            tc.add_records(len(bucket))
            return list(bucket.items())

        reduced = self.ctx.run_stage(reduce_kernel, buckets, name="reduce")
        return reduced.outputs


def _sample_partition(part, fraction, seed, index):
    """Deterministic per-partition Bernoulli sample."""
    rng = make_rng((seed, index))
    return [x for x in part if rng.random() < fraction]
