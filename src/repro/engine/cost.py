"""Cluster topology and cost-model parameters.

All rates are simulated seconds per unit.  Defaults are calibrated so
that the relative results of the thesis's platform comparison (§5.2)
and scalability study (§5.7) reproduce; absolute values are arbitrary.
"""

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng


class ClusterSpec:
    """Topology of a simulated cluster.

    Parameters
    ----------
    num_executors:
        Number of executor processes (the thesis uses one per node).
    cores_per_executor:
        Task slots per executor; tasks on one executor run in parallel
        across its cores (the thesis nodes have 24 cores).
    executor_memory_bytes:
        Memory per executor; ``storage_fraction`` of it caches data
        partitions (Spark's default unified-memory split, §4.5).
    storage_fraction:
        Fraction of executor memory available to cached partitions.
    straggler_sigma:
        Log-normal sigma of per-executor slowdown factors; 0 disables
        straggler simulation (§5.7.2 attributes weak-scaling loss to
        stragglers).
    seed:
        Seed for the straggler draw, so topologies are reproducible.
    """

    def __init__(
        self,
        num_executors=16,
        cores_per_executor=24,
        executor_memory_bytes=45 * 1024**3,
        storage_fraction=0.6,
        straggler_sigma=0.0,
        seed=7,
        speculative_execution=False,
        speculation_multiplier=1.5,
    ):
        if num_executors < 1:
            raise ConfigError("num_executors must be at least 1")
        if cores_per_executor < 1:
            raise ConfigError("cores_per_executor must be at least 1")
        if executor_memory_bytes <= 0:
            raise ConfigError("executor_memory_bytes must be positive")
        if not 0.0 < storage_fraction <= 1.0:
            raise ConfigError("storage_fraction must be in (0, 1]")
        if straggler_sigma < 0:
            raise ConfigError("straggler_sigma must be non-negative")
        if speculation_multiplier <= 1.0:
            raise ConfigError("speculation_multiplier must exceed 1")
        self.num_executors = num_executors
        self.cores_per_executor = cores_per_executor
        self.executor_memory_bytes = executor_memory_bytes
        self.storage_fraction = storage_fraction
        self.straggler_sigma = straggler_sigma
        self.seed = seed
        self.speculative_execution = speculative_execution
        self.speculation_multiplier = speculation_multiplier
        rng = make_rng(seed)
        if straggler_sigma > 0:
            self.straggler_factors = np.exp(
                rng.normal(0.0, straggler_sigma, size=num_executors)
            )
            # Normalize so the median executor runs at speed 1.
            self.straggler_factors /= np.median(self.straggler_factors)
        else:
            self.straggler_factors = np.ones(num_executors)

    @property
    def total_storage_bytes(self):
        """Aggregate cluster memory available for cached partitions."""
        return int(
            self.num_executors * self.executor_memory_bytes * self.storage_fraction
        )


#: The benchmark datasets are scaled down ~1000x from the thesis's row
#: counts, so one simulated row stands in for ~1000 cluster rows.  The
#: default rates for dataset-proportional quantities (``op_seconds``,
#: ``record_seconds`` and the byte rates) bake that factor in: e.g.
#: ``record_seconds`` of 1e-2 corresponds to ~10us of real per-record
#: work (JVM deserialization + iterator machinery on the thesis's Spark
#: cluster), and ``op_seconds`` of 1e-4 to ~100ns per attribute
#: comparison.  Candidate-scale work — proportional to the number of
#: *distinct* rules, which does not grow with |D| — is charged at the
#: unscaled ``light_op_seconds``.
ROW_SCALE = 1000.0


class CostModel:
    """Simulated-seconds rates for the work a stage performs.

    ``op_seconds`` charges dataset-proportional operations (attribute
    comparisons, per-pair LCA materialization, per-instance ancestor
    emissions); ``light_op_seconds`` charges candidate-scale operations
    (per distinct rule, per RCT row); ``record_seconds`` charges each
    record a task touches (iteration, deserialization); the byte rates
    charge data movement.  Defaults embed :data:`ROW_SCALE` (see above).
    """

    def __init__(
        self,
        op_seconds=1e-4,
        light_op_seconds=5e-7,
        record_seconds=1e-2,
        shuffle_byte_seconds=1e-5,
        broadcast_byte_seconds=2e-6,
        disk_byte_seconds=5e-6,
        task_launch_seconds=0.004,
        stage_overhead_seconds=0.02,
        job_launch_seconds=0.0,
    ):
        for name, value in [
            ("op_seconds", op_seconds),
            ("light_op_seconds", light_op_seconds),
            ("record_seconds", record_seconds),
            ("shuffle_byte_seconds", shuffle_byte_seconds),
            ("broadcast_byte_seconds", broadcast_byte_seconds),
            ("disk_byte_seconds", disk_byte_seconds),
            ("task_launch_seconds", task_launch_seconds),
            ("stage_overhead_seconds", stage_overhead_seconds),
            ("job_launch_seconds", job_launch_seconds),
        ]:
            if value < 0:
                raise ConfigError("%s must be non-negative" % name)
        self.op_seconds = op_seconds
        self.light_op_seconds = light_op_seconds
        self.record_seconds = record_seconds
        self.shuffle_byte_seconds = shuffle_byte_seconds
        self.broadcast_byte_seconds = broadcast_byte_seconds
        self.disk_byte_seconds = disk_byte_seconds
        self.task_launch_seconds = task_launch_seconds
        self.stage_overhead_seconds = stage_overhead_seconds
        self.job_launch_seconds = job_launch_seconds

    def task_seconds(self, ops, records, disk_bytes, light_ops=0):
        """Compute one task's simulated compute + disk time."""
        return (
            ops * self.op_seconds
            + light_ops * self.light_op_seconds
            + records * self.record_seconds
            + disk_bytes * self.disk_byte_seconds
        )
