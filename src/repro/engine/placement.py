"""Placement: the shard map as the one partition abstraction.

Partitioning used to be computed ad hoc at every layer — the table
sliced row ranges per ``partition_blocks`` call, the colfile handle kept
its own block-start bookkeeping, the session recomputed partition
counts per job, and no layer could say *where* a partition should run.
This module centralizes all of it:

- :class:`Shard` is one placed row range: a picklable descriptor
  ``(shard_id, start, stop, size_bytes)`` every execution mode consumes
  — serial and thread kernels slice table views by it, process kernels
  receive shm/mmap blocks built from it, and remote workers receive it
  inside an :class:`~repro.engine.shm.MmapTableBlock`.
- :class:`ShardMap` is the immutable, versioned assignment of a
  table's row ranges to shard ids.  It is built once per dataset
  version (:meth:`~repro.data.table.Table.shard_map` caches it) and
  reused by every stage, so serial, thread, process and remote
  executors all consume *identical* shard descriptors instead of
  recomputing ranges per call.
- :class:`PlacementTracker` records the worker↔shard affinity a placed
  cluster achieves: kernel i routed to the worker pinned to shard i is
  an affinity *hit* (that worker's mmap/attachment caches are already
  hot); a shard landing on a different worker than last time is a
  *miss*; a cluster rebound to a different dataset version is a
  *rebalance*.

Invariants (checked at construction, property-tested in
``tests/engine/test_placement.py``): shard ranges are a bijection over
the table's rows — full coverage, no overlap, in order — and with an
alignment every interior boundary is a multiple of it (the last shard
is ragged).  An empty table maps to zero shards.

The default row split (``align=1``) reproduces the historical formula
``bounds[i] = n * i // num_shards`` exactly, which is load-bearing:
per-shard row counts feed the cost model, and the engine's
bit-identity contract requires identical charges across in-RAM and
file-backed tables.
"""

import os
import threading

from repro.common.errors import EngineError


def default_placement():
    """Placement preference from ``REPRO_PLACEMENT`` (off when unset).

    Truthy spellings (``1``/``true``/``yes``/``on``) request placed
    execution; unset, empty and falsy spellings leave it off.
    """
    value = os.environ.get("REPRO_PLACEMENT", "").strip().lower()
    if value in ("", "0", "false", "no", "off"):
        return False
    if value in ("1", "true", "yes", "on"):
        return True
    raise EngineError(
        "REPRO_PLACEMENT must be a boolean spelling, got %r" % value
    )


class Shard:
    """One placed row range ``[start, stop)`` of a table.

    ``shard_id`` doubles as the placement id: a placed cluster routes
    shard i to the worker pinned to slot ``i % workers``, so the id is
    the whole addressing scheme — no lookup table travels with tasks.
    """

    __slots__ = ("shard_id", "start", "stop", "size_bytes")

    def __init__(self, shard_id, start, stop, size_bytes=0):
        self.shard_id = int(shard_id)
        self.start = int(start)
        self.stop = int(stop)
        self.size_bytes = int(size_bytes)

    @property
    def num_rows(self):
        return self.stop - self.start

    def __eq__(self, other):
        return (isinstance(other, Shard)
                and self.shard_id == other.shard_id
                and self.start == other.start
                and self.stop == other.stop
                and self.size_bytes == other.size_bytes)

    def __hash__(self):
        return hash((self.shard_id, self.start, self.stop, self.size_bytes))

    def __getstate__(self):
        return (self.shard_id, self.start, self.stop, self.size_bytes)

    def __setstate__(self, state):
        self.shard_id, self.start, self.stop, self.size_bytes = state

    def __repr__(self):
        return "Shard(%d, [%d, %d), %dB)" % (
            self.shard_id, self.start, self.stop, self.size_bytes,
        )


class ShardMap:
    """Immutable, versioned assignment of row ranges to shard ids.

    Build with :meth:`build` (even row split, the engine's partitioning)
    or :meth:`from_block_rows` (one shard per storage block, the
    colfile's physical layout).  ``version`` is the dataset version the
    map was built against — a table that changes data gets a new
    version, so stale maps are detectable (and a placed cluster counts
    a *rebalance* when rebound across versions).
    """

    __slots__ = ("version", "num_rows", "align", "_shards")

    def __init__(self, shards, num_rows, version=0, align=1):
        shards = tuple(shards)
        num_rows = int(num_rows)
        if num_rows < 0:
            raise EngineError("a shard map needs a non-negative row count")
        if align < 1:
            raise EngineError("shard alignment must be at least 1")
        expected_start = 0
        for i, shard in enumerate(shards):
            if shard.shard_id != i:
                raise EngineError(
                    "shard ids must be dense and ordered: position %d "
                    "holds id %d" % (i, shard.shard_id)
                )
            if shard.start != expected_start:
                raise EngineError(
                    "shard %d starts at row %d, expected %d (ranges must "
                    "tile the table with no gap or overlap)"
                    % (i, shard.start, expected_start)
                )
            if shard.stop < shard.start:
                raise EngineError("shard %d has a negative row range" % i)
            if i + 1 < len(shards) and shard.stop % align != 0:
                raise EngineError(
                    "interior shard %d ends at row %d, not a multiple of "
                    "the %d-row alignment" % (i, shard.stop, align)
                )
            expected_start = shard.stop
        if expected_start != num_rows:
            raise EngineError(
                "shards cover %d rows of %d" % (expected_start, num_rows)
            )
        self._shards = shards
        self.num_rows = num_rows
        self.version = int(version)
        self.align = int(align)

    # -- constructors --------------------------------------------------

    @classmethod
    def build(cls, num_rows, num_shards, version=0, bytes_per_row=1,
              align=1, clamp=True):
        """Evenly split ``num_rows`` into ``num_shards`` shards.

        With ``align=1`` the boundaries are exactly the engine's
        historical formula ``n * i // num_shards`` (row counts differing
        by at most one); a larger ``align`` rounds every interior
        boundary down to a multiple of it — block-aligned shards whose
        last shard absorbs the remainder.  With ``clamp`` (the table
        partitioning contract) ``num_shards`` is clamped to
        ``[1, num_rows]`` and an empty table yields an empty map;
        without it exactly ``num_shards`` shards come back, empty ones
        included (the RDD layer's contract — ``parallelize`` keeps the
        partition count the caller asked for).
        """
        num_rows = int(num_rows)
        num_shards = int(num_shards)
        if clamp:
            if num_rows == 0:
                return cls((), 0, version=version, align=align)
            num_shards = max(1, min(num_shards, num_rows))
        elif num_shards < 1:
            raise EngineError("a shard map needs at least one shard")
        bounds = [num_rows * i // num_shards for i in range(num_shards + 1)]
        if align > 1:
            bounds = [(b // align) * align for b in bounds[:-1]] + [num_rows]
            bounds = sorted(set(bounds))
        shards = []
        for i in range(len(bounds) - 1):
            start, stop = bounds[i], bounds[i + 1]
            shards.append(Shard(
                shard_id=i, start=start, stop=stop,
                size_bytes=(stop - start) * int(bytes_per_row),
            ))
        return cls(shards, num_rows, version=version, align=align)

    @classmethod
    def from_block_rows(cls, block_rows, version=0, bytes_per_row=1,
                        align=None):
        """One shard per storage block, from per-block row counts.

        This is the colfile's physical layout as a shard map: every
        block is ``block_rows[0]`` rows except the ragged last one, so
        the map is block-aligned by construction when ``align`` is the
        writer's block size.
        """
        shards = []
        row = 0
        for i, rows in enumerate(block_rows):
            rows = int(rows)
            shards.append(Shard(
                shard_id=i, start=row, stop=row + rows,
                size_bytes=rows * int(bytes_per_row),
            ))
            row += rows
        if align is None:
            align = int(block_rows[0]) if shards else 1
        return cls(shards, row, version=version, align=align)

    # -- access --------------------------------------------------------

    def __len__(self):
        return len(self._shards)

    def __iter__(self):
        return iter(self._shards)

    def __getitem__(self, shard_id):
        return self._shards[shard_id]

    @property
    def shards(self):
        return self._shards

    @property
    def bounds(self):
        """Row boundaries as one list: ``[0, ..., num_rows]``."""
        if not self._shards:
            return [0] if self.num_rows == 0 else [0, self.num_rows]
        return [s.start for s in self._shards] + [self.num_rows]

    def shard_of_row(self, row):
        """The shard containing ``row`` (bisection over the bounds)."""
        if not 0 <= row < self.num_rows or not self._shards:
            raise EngineError(
                "row %d outside the %d-row shard map" % (row, self.num_rows)
            )
        import bisect

        starts = [s.start for s in self._shards]
        return self._shards[bisect.bisect_right(starts, row) - 1]

    def placement_for(self, shard_id, num_workers):
        """Worker slot shard ``shard_id`` is pinned to (sticky modulo)."""
        if num_workers < 1:
            raise EngineError("placement needs at least one worker")
        return int(shard_id) % int(num_workers)

    def __eq__(self, other):
        return (isinstance(other, ShardMap)
                and self.version == other.version
                and self.num_rows == other.num_rows
                and self._shards == other._shards)

    def __hash__(self):
        return hash((self.version, self.num_rows, self._shards))

    def __repr__(self):
        return "ShardMap(v%d, %d shards over %d rows)" % (
            self.version, len(self._shards), self.num_rows,
        )


class PlacementTracker:
    """Driver-side record of worker↔shard affinity (thread-safe).

    A placed cluster routes shard i to slot ``i % workers`` every
    stage, so once a shard has landed somewhere, every later stage of
    the same job — and every coalesced job reusing the cluster — finds
    that worker's attachment caches hot.  The tracker observes exactly
    that: first touch of a shard is a *miss*, a repeat on the same slot
    is a *hit*, and rebinding the cluster to a different dataset
    version is a *rebalance* (the affinity table resets — old pins are
    meaningless against new data).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._slots = {}  # shard_id -> last slot
        self._bound_version = None
        self.shards = 0
        self.hits = 0
        self.misses = 0
        self.rebalances = 0
        self.worker_failures = 0
        self.placed_stages = 0
        self.unplaced_stages = 0

    def bind(self, shard_map):
        """Bind the tracker to ``shard_map``'s version; count rebalances."""
        with self._lock:
            version = shard_map.version
            if self._bound_version is not None \
                    and self._bound_version != version:
                self.rebalances += 1
                self._slots.clear()
            self._bound_version = version
            self.shards = len(shard_map)

    def record(self, shard_id, slot):
        """Record shard ``shard_id`` executing on worker ``slot``."""
        with self._lock:
            previous = self._slots.get(shard_id)
            if previous == slot:
                self.hits += 1
            else:
                self.misses += 1
            self._slots[shard_id] = slot

    def worker_failure(self, shard_ids=()):
        """A worker died mid-stage and ``shard_ids`` must re-place.

        Counted as one worker failure *and* one rebalance — the
        affinity these shards had is gone with the worker, and their
        next :meth:`record` on a survivor is a legitimate miss, not a
        broken pin.
        """
        with self._lock:
            self.worker_failures += 1
            self.rebalances += 1
            for shard_id in shard_ids:
                self._slots.pop(shard_id, None)

    def record_stage(self, placed):
        with self._lock:
            if placed:
                self.placed_stages += 1
            else:
                self.unplaced_stages += 1

    def stats(self):
        """One dict of placement counters, for ``stats()["placement"]``."""
        with self._lock:
            touched = self.hits + self.misses
            return {
                "shards": self.shards,
                "affinity_hits": self.hits,
                "affinity_misses": self.misses,
                "affinity_hit_rate": (
                    self.hits / touched if touched else 0.0
                ),
                "rebalances": self.rebalances,
                "worker_failures": self.worker_failures,
                "placed_stages": self.placed_stages,
                "unplaced_stages": self.unplaced_stages,
            }
