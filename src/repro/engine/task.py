"""Per-task accounting context handed to stage kernels.

A kernel receives a :class:`TaskContext` and reports the work it did:
elementary operations (comparisons, lookups, emitted pairs), records
touched and bytes read from disk.  The scheduler turns these into the
task's simulated duration via the cost model.

Each task owns its context exclusively, so kernels may charge it
without synchronization even when the stage executes on a thread pool.
The one piece of *shared* state a kernel can touch — the cluster's
partition cache — is deferred in parallel mode: the context records the
access requests and the driver replays them in partition order after
all tasks finish, so cache hits/misses (and the simulated seconds they
produce) are identical to a serial run.
"""


class TaskContext:
    """Mutable counters for a single simulated task."""

    def __init__(self, task_id, partition_id, defer_cache=False):
        self.task_id = task_id
        self.partition_id = partition_id
        self.ops = 0
        self.light_ops = 0
        self.records = 0
        self.disk_bytes = 0
        self.output_bytes = 0
        #: When true, cache accesses are queued instead of applied; the
        #: driver replays them deterministically (see module docstring).
        self.defer_cache = defer_cache
        self.cache_requests = []

    def add_ops(self, n):
        """Charge ``n`` dataset-proportional operations.

        These are the operations whose count scales with |D| (attribute
        comparisons over data tuples, per-pair LCA materialization,
        per-instance ancestor emissions) and therefore carry the
        row-scale factor in their rate.
        """
        self.ops += int(n)

    def add_light_ops(self, n):
        """Charge ``n`` candidate-scale operations.

        Work proportional to the number of *distinct* candidate rules
        or RCT rows — quantities that do not grow with |D| — charged at
        an unscaled per-operation rate.
        """
        self.light_ops += int(n)

    def add_records(self, n):
        """Charge ``n`` records touched (iteration/deserialization)."""
        self.records += int(n)

    def add_disk_bytes(self, n):
        """Charge ``n`` bytes read from disk (cache miss, HDFS scan)."""
        self.disk_bytes += int(n)

    def add_output_bytes(self, n):
        """Declare ``n`` bytes of task output (shuffled or collected)."""
        self.output_bytes += int(n)

    def request_cache_access(self, key, size_bytes):
        """Queue a partition-cache access for deterministic replay."""
        self.cache_requests.append((key, int(size_bytes)))

    # ------------------------------------------------------------------
    # Cross-process transport
    # ------------------------------------------------------------------

    def charges(self):
        """The task's counters as a picklable charge record.

        Process-mode workers run the kernel against their own context
        and send this record back; the driver applies it to a fresh
        driver-side context (:meth:`apply_charges`) so every downstream
        step — cache replay, duration computation, counter merges — is
        byte-for-byte the code path the serial and thread modes take.
        """
        return (self.ops, self.light_ops, self.records, self.disk_bytes,
                self.output_bytes, list(self.cache_requests))

    def apply_charges(self, charges):
        """Fold a worker's charge record into this context."""
        ops, light_ops, records, disk_bytes, output_bytes, requests = charges
        self.ops += int(ops)
        self.light_ops += int(light_ops)
        self.records += int(records)
        self.disk_bytes += int(disk_bytes)
        self.output_bytes += int(output_bytes)
        self.cache_requests.extend(
            (key, int(size)) for key, size in requests
        )
