"""sparklet — a partitioned dataflow engine with a simulated cost model.

The thesis runs SIRUM on a 16-node Spark/YARN/HDFS cluster.  This
package substitutes that substrate: computation is executed *exactly*
(partitioned, shuffled and broadcast like the Spark implementation), in
process, while a deterministic cost model meters what the same work
would cost a cluster — per-task CPU, task-launch overhead, shuffle and
broadcast bytes, disk I/O on cache misses, and per-node straggler
factors.  Benchmarks report this simulated cluster time, which is what
makes the thesis's scalability figures reproducible on one machine.

Main entry points:

- :class:`~repro.engine.cluster.ClusterContext` — executors, memory,
  stages, broadcast variables;
- :class:`~repro.engine.rdd.RDD` — eager map / filter / flatMap /
  mapPartitions / reduceByKey / join / collect, one metered stage per
  transformation;
- :class:`~repro.engine.lazy.LazyRDD` — lineage DAG with pipelined
  narrow stages, persistence and lineage-based fault recovery (how
  Spark actually executes, §2.6.3);
- :class:`~repro.engine.cost.CostModel` and
  :class:`~repro.engine.cost.ClusterSpec` — tunable rates and topology,
  including straggler factors and speculative execution (§5.7.2).
"""

from repro.engine.cost import CostModel, ClusterSpec
from repro.engine.cluster import ClusterContext
from repro.engine.lazy import DAGScheduler, LazyRDD
from repro.engine.placement import PlacementTracker, Shard, ShardMap
from repro.engine.rdd import RDD
from repro.engine.task import TaskContext
from repro.engine.metrics import MetricsRegistry

__all__ = [
    "CostModel",
    "ClusterSpec",
    "ClusterContext",
    "DAGScheduler",
    "LazyRDD",
    "PlacementTracker",
    "RDD",
    "Shard",
    "ShardMap",
    "TaskContext",
    "MetricsRegistry",
]
