"""Cluster storage-memory simulation: partition cache with LRU eviction.

Thesis §4.5 shows SIRUM's behaviour when the input does not fit in the
executors' storage memory: evicted RDD partitions must be re-read from
HDFS on the next pass, which dominates runtime.  :class:`CacheManager`
models the aggregate storage pool (executors x memory x storage
fraction): ``access`` either hits (free) or misses (the caller is
charged a disk read of the partition's bytes), and a timeline of cached
bytes is recorded for the Figure 4.3/4.4 memory plots.

:class:`EvictionIndex` is the eviction discipline itself — a
recency-ordered key -> size map with byte accounting — factored out so
the *real* block buffer pool (:mod:`repro.data.bufferpool`), which
holds decoded column blocks rather than simulated charges, runs the
same LRU bookkeeping instead of duplicating it.
"""

import threading

from collections import OrderedDict


class EvictionIndex:
    """Recency-ordered key -> size_bytes map with byte accounting.

    The shared LRU ledger behind the simulated partition cache and the
    data layer's block buffer pool: entries keep least-recently-used
    order, ``total_bytes`` is maintained incrementally, and eviction
    pops from the cold end — optionally skipping keys the caller has
    pinned.  Not thread-safe on its own; owners lock around it.
    """

    def __init__(self):
        self._entries = OrderedDict()
        self.total_bytes = 0

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)

    def touch(self, key):
        """Mark ``key`` most recently used; True when it was present."""
        if key not in self._entries:
            return False
        self._entries.move_to_end(key)
        return True

    def add(self, key, size_bytes):
        """Insert ``key`` (absent) as the most recently used entry."""
        self._entries[key] = size_bytes
        self._entries.move_to_end(key)
        self.total_bytes += size_bytes

    def pop(self, key):
        """Remove ``key``; returns its size, or None when absent."""
        size = self._entries.pop(key, None)
        if size is not None:
            self.total_bytes -= size
        return size

    def pop_coldest(self, pinned=()):
        """Evict the least-recently-used key not in ``pinned``.

        Returns ``(key, size_bytes)``, or None when every entry is
        pinned (or the index is empty).
        """
        for key in self._entries:
            if key not in pinned:
                size = self._entries.pop(key)
                self.total_bytes -= size
                return key, size
        return None


class CacheManager:
    """LRU cache over named partitions with byte-level accounting.

    Mutations take an internal lock so a cluster shared by concurrent
    jobs stays consistent.  Within one parallel stage the engine never
    touches the cache from worker threads — kernels *defer* their
    accesses and the driver replays them in partition order — so the
    hit/miss sequence (and the LRU state it leaves behind) is identical
    to a serial run.
    """

    def __init__(self, capacity_bytes, metrics):
        self.capacity_bytes = int(capacity_bytes)
        self._metrics = metrics
        self._index = EvictionIndex()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def cached_bytes(self):
        return self._index.total_bytes

    def access(self, key, size_bytes):
        """Access partition ``key``; return disk bytes to charge (0 on hit)."""
        size_bytes = int(size_bytes)
        with self._lock:
            if self._index.touch(key):
                self.hits += 1
                self._metrics.increment("cache_hits")
                return 0
            self.misses += 1
            self._metrics.increment("cache_misses")
            self._insert(key, size_bytes)
            return size_bytes

    def _insert(self, key, size_bytes):
        if size_bytes > self.capacity_bytes:
            # Partition larger than the whole pool: never cached.
            return
        while (self._index.total_bytes + size_bytes > self.capacity_bytes
                and len(self._index)):
            self._index.pop_coldest()
            self.evictions += 1
            self._metrics.increment("cache_evictions")
        self._index.add(key, size_bytes)

    def contains(self, key):
        return key in self._index

    def invalidate(self, key):
        with self._lock:
            self._index.pop(key)

    def record_timeline(self):
        """Append the current cached-bytes level to the metrics timeline."""
        self._metrics.record_memory(self.cached_bytes)
