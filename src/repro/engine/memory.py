"""Cluster storage-memory simulation: partition cache with LRU eviction.

Thesis §4.5 shows SIRUM's behaviour when the input does not fit in the
executors' storage memory: evicted RDD partitions must be re-read from
HDFS on the next pass, which dominates runtime.  :class:`CacheManager`
models the aggregate storage pool (executors x memory x storage
fraction): ``access`` either hits (free) or misses (the caller is
charged a disk read of the partition's bytes), and a timeline of cached
bytes is recorded for the Figure 4.3/4.4 memory plots.
"""

import threading

from collections import OrderedDict


class CacheManager:
    """LRU cache over named partitions with byte-level accounting.

    Mutations take an internal lock so a cluster shared by concurrent
    jobs stays consistent.  Within one parallel stage the engine never
    touches the cache from worker threads — kernels *defer* their
    accesses and the driver replays them in partition order — so the
    hit/miss sequence (and the LRU state it leaves behind) is identical
    to a serial run.
    """

    def __init__(self, capacity_bytes, metrics):
        self.capacity_bytes = int(capacity_bytes)
        self._metrics = metrics
        self._entries = OrderedDict()  # key -> size_bytes, LRU order
        self._lock = threading.RLock()
        self.cached_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, key, size_bytes):
        """Access partition ``key``; return disk bytes to charge (0 on hit)."""
        size_bytes = int(size_bytes)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                self._metrics.increment("cache_hits")
                return 0
            self.misses += 1
            self._metrics.increment("cache_misses")
            self._insert(key, size_bytes)
            return size_bytes

    def _insert(self, key, size_bytes):
        if size_bytes > self.capacity_bytes:
            # Partition larger than the whole pool: never cached.
            return
        while self.cached_bytes + size_bytes > self.capacity_bytes and self._entries:
            _, evicted_size = self._entries.popitem(last=False)
            self.cached_bytes -= evicted_size
            self.evictions += 1
            self._metrics.increment("cache_evictions")
        self._entries[key] = size_bytes
        self.cached_bytes += size_bytes

    def contains(self, key):
        return key in self._entries

    def invalidate(self, key):
        with self._lock:
            size = self._entries.pop(key, None)
            if size is not None:
                self.cached_bytes -= size

    def record_timeline(self):
        """Append the current cached-bytes level to the metrics timeline."""
        self._metrics.record_memory(self.cached_bytes)
