"""repro — a reproduction of SIRUM: Scalable Informative Rule Mining.

Quickstart::

    from repro import mine
    from repro.data.generators import flight_table

    result = mine(flight_table(), k=3, variant="optimized")
    print(result.rule_set.to_markdown(flight_table()))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure reproduction results.
"""

from repro.core import (
    Rule,
    WILDCARD,
    SirumConfig,
    Sirum,
    VARIANTS,
    mine,
    MiningResult,
    RuleSet,
    kl_divergence,
    information_gain,
)
from repro.core.config import variant_config
from repro.core.miner import make_default_cluster
from repro.data import Schema, Table

__version__ = "1.0.0"

__all__ = [
    "Rule",
    "WILDCARD",
    "SirumConfig",
    "Sirum",
    "VARIANTS",
    "mine",
    "variant_config",
    "make_default_cluster",
    "MiningResult",
    "RuleSet",
    "kl_divergence",
    "information_gain",
    "Schema",
    "Table",
    "__version__",
]
