"""Spark regime: parallel, in-memory caching (thesis §2.6.3)."""

from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel


def spark_cluster(
    num_executors=16,
    cores_per_executor=8,
    executor_memory_bytes=256 * 1024**2,
    storage_fraction=0.6,
    straggler_sigma=0.0,
    seed=7,
    parallelism=None,
    executor=None,
    budget_grant=None,
):
    """A Spark-like cluster: many cores, cached RDD partitions.

    Default memory is scaled down from the paper's 45 GB/executor in
    the same proportion as the datasets; benchmarks override it when a
    figure needs a memory-constrained run.
    """
    spec = ClusterSpec(
        num_executors=num_executors,
        cores_per_executor=cores_per_executor,
        executor_memory_bytes=executor_memory_bytes,
        storage_fraction=storage_fraction,
        straggler_sigma=straggler_sigma,
        seed=seed,
    )
    return ClusterContext(spec, CostModel(), parallelism=parallelism,
                          executor=executor, budget_grant=budget_grant)
