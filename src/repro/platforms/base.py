"""Platform registry and the shared SIRUM-on-a-platform runner."""

from repro.common.errors import ConfigError
from repro.core.config import variant_config
from repro.core.miner import Sirum
from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel

from repro.platforms.spark_platform import spark_cluster
from repro.platforms.postgres_sim import postgres_cluster
from repro.platforms.hive_sim import hive_cluster
from repro.platforms.sparksql_sim import sparksql_cluster

#: Registered platform builders: name -> cluster factory.
PLATFORMS = {
    "spark": spark_cluster,
    "postgres": postgres_cluster,
    "hive": hive_cluster,
    "sparksql": sparksql_cluster,
}


def make_platform_cluster(name, num_executors=16, **kwargs):
    """Build a :class:`ClusterContext` configured as platform ``name``."""
    try:
        factory = PLATFORMS[name]
    except KeyError:
        raise ConfigError(
            "unknown platform %r; choose from %s"
            % (name, ", ".join(sorted(PLATFORMS)))
        ) from None
    return factory(num_executors=num_executors, **kwargs)


def make_sql_engine(platform, num_executors=16, vectorized=True,
                    catalog=None, **cluster_kwargs):
    """A :class:`~repro.sql.engine.SqlEngine` metered as platform ``name``.

    Returns ``(engine, cluster)``: every SQL operator the engine runs
    charges the platform's cost regime per batch, so ad-hoc SQL
    workloads are directly comparable with the §5.2 SIRUM runs.

    Pass ``catalog`` to meter queries over relations registered
    elsewhere (e.g. a mining service's shared catalog) without
    re-registering them — the engine is cheap, the catalog is not.
    """
    from repro.sql.engine import SqlEngine

    cluster = make_platform_cluster(
        platform, num_executors=num_executors, **cluster_kwargs
    )
    engine = SqlEngine(
        catalog=catalog, cluster=cluster, vectorized=vectorized
    )
    return engine, cluster


def run_baseline_sirum(platform, table, k=10, sample_size=16,
                       num_executors=16, seed=0, **cluster_kwargs):
    """Run Baseline (BJ) SIRUM on a named platform (the §5.2 setup).

    Returns ``(mining_result, cluster)``; the platform's simulated
    seconds are ``mining_result.simulated_seconds``.
    """
    cluster = make_platform_cluster(
        platform, num_executors=num_executors, **cluster_kwargs
    )
    config = variant_config(
        "baseline", k=k, sample_size=sample_size, seed=seed
    )
    result = Sirum(config).mine(table, cluster=cluster)
    return result, cluster


def _base_spec(num_executors, cores_per_executor, executor_memory_bytes,
               storage_fraction=0.6, straggler_sigma=0.0, seed=7):
    return ClusterSpec(
        num_executors=num_executors,
        cores_per_executor=cores_per_executor,
        executor_memory_bytes=executor_memory_bytes,
        storage_fraction=storage_fraction,
        straggler_sigma=straggler_sigma,
        seed=seed,
    )


def _base_cost(**overrides):
    return CostModel(**overrides)


def build_cluster(spec, cost):
    return ClusterContext(spec, cost)
