"""PostgreSQL regime: single process, single core, disk-oriented.

Thesis §2.6.1: a single database session executes on one process that
cannot use more than one CPU, and the engine optimizes for disk-based
access — intermediate state is not pinned in RAM across the repeated
scans SIRUM performs.  Modeled as a 1-executor / 1-core cluster whose
storage pool is too small to cache the input (every pass re-reads from
disk), with no distributed-scheduling overheads.
"""

from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel


def postgres_cluster(num_executors=1, seed=7, parallelism=None,
                     executor=None, budget_grant=None, **_ignored):
    """PostgreSQL runs single-node regardless of ``num_executors``."""
    spec = ClusterSpec(
        num_executors=1,
        cores_per_executor=1,
        # A token buffer pool: large inputs will not fit, forcing the
        # repeated full-table scans §2.6.1 describes.
        executor_memory_bytes=8 * 1024**2,
        storage_fraction=0.5,
        straggler_sigma=0.0,
        seed=seed,
    )
    cost = CostModel(
        # No cluster machinery: queries start instantly...
        task_launch_seconds=0.0,
        stage_overhead_seconds=0.002,
        # ...but all I/O is disk I/O and there is no shuffle network
        # (everything is local disk), charged at the disk rate.
        shuffle_byte_seconds=0.0,
        broadcast_byte_seconds=0.0,
        disk_byte_seconds=8e-6,
    )
    return ClusterContext(spec, cost, parallelism=parallelism,
                          executor=executor, budget_grant=budget_grant)
