"""SparkSQL regime: Spark with a plan-translation inefficiency.

Thesis §5.2: SparkSQL translated the SIRUM queries into execution plans
the authors found less efficient than their hand-optimized Spark data
operators (extra exchanges, less selective pipelines).  Modeled as the
Spark regime with compute and shuffle rates scaled by an inefficiency
factor.
"""

from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel

#: Relative cost of the generated plan vs hand-written operators.
PLAN_INEFFICIENCY = 1.7


def sparksql_cluster(
    num_executors=16,
    cores_per_executor=8,
    executor_memory_bytes=256 * 1024**2,
    seed=7,
    parallelism=None,
    executor=None,
    budget_grant=None,
):
    spec = ClusterSpec(
        num_executors=num_executors,
        cores_per_executor=cores_per_executor,
        executor_memory_bytes=executor_memory_bytes,
        storage_fraction=0.6,
        straggler_sigma=0.0,
        seed=seed,
    )
    base = CostModel()
    cost = CostModel(
        op_seconds=base.op_seconds * PLAN_INEFFICIENCY,
        record_seconds=base.record_seconds * PLAN_INEFFICIENCY,
        shuffle_byte_seconds=base.shuffle_byte_seconds * PLAN_INEFFICIENCY,
        broadcast_byte_seconds=base.broadcast_byte_seconds,
        disk_byte_seconds=base.disk_byte_seconds,
        task_launch_seconds=base.task_launch_seconds,
        stage_overhead_seconds=base.stage_overhead_seconds * PLAN_INEFFICIENCY,
    )
    return ClusterContext(spec, cost, parallelism=parallelism,
                          executor=executor, budget_grant=budget_grant)
