"""Hive-on-MapReduce regime (thesis §2.6.2, §5.2).

Each HiveQL stage is a MapReduce job: YARN containers are launched per
job (seconds of latency) and every intermediate result is written to
replicated HDFS and read back by the next job.  §5.2 found these two
factors — disk/network I/O for intermediates plus slow task
launch/cleanup — make Hive an order of magnitude slower than Spark on
the same cluster.
"""

from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel

#: HDFS replication factor applied to materialized intermediates.
HDFS_REPLICATION = 3


def hive_cluster(
    num_executors=16,
    cores_per_executor=8,
    executor_memory_bytes=4 * 1024,
    seed=7,
    parallelism=None,
    executor=None,
    budget_grant=None,
):
    spec = ClusterSpec(
        num_executors=num_executors,
        cores_per_executor=cores_per_executor,
        # MapReduce has no long-lived in-memory partition cache: the
        # input is re-read from HDFS by every job.  A token per-executor
        # memory (scaled-data bytes) guarantees nothing ever caches.
        executor_memory_bytes=executor_memory_bytes,
        storage_fraction=0.01,
        straggler_sigma=0.0,
        seed=seed,
    )
    cost = CostModel(
        # Containers are provisioned per job: YARN allocation, JVM
        # startup and cleanup add serial seconds per MapReduce job (the
        # §5.2 "launching and cleaning up tasks are slower" finding).
        task_launch_seconds=0.05,
        stage_overhead_seconds=0.05,
        job_launch_seconds=4.0,
        # Shuffle output spills to disk and intermediates are written to
        # replicated HDFS and read back: charge write x replication +
        # read on top of the network transfer.
        shuffle_byte_seconds=2e-6 + 4e-6 * (HDFS_REPLICATION + 1),
        disk_byte_seconds=1.2e-5,
    )
    return ClusterContext(spec, cost, parallelism=parallelism,
                          executor=executor, budget_grant=budget_grant)
