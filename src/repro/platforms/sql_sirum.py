"""SIRUM expressed as SQL — the PostgreSQL implementation of §2.6.1.

The thesis's single-node comparator runs informative rule mining as SQL
statements inside one database session.  This module reproduces that
architecture against :mod:`repro.sql`:

- candidate rules and their aggregates come from one
  ``GROUP BY CUBE(A1, ..., Ad)`` query per iteration — every output row
  is an element of the cube lattice (§2.5) and the gain of Eq. 2.2 is
  computed in the select list as ``SUM(m) * LN(SUM(m) / SUM(mhat))``;
- rule coverage (the ``t  r`` tests iterative scaling needs) comes from
  ``SELECT rid FROM d WHERE A_j = value AND ...`` queries;
- the estimate column ``mhat`` is re-registered after each scaling run,
  standing in for the SQL UPDATE a real session would issue (the thesis
  notes this random write traffic as a PostgreSQL bottleneck).

Exhaustive exploration (no sampling) is used, matching how prior work
[16] ran on PostgreSQL, so results cross-validate against the
operator-based ``mine(table, variant="naive", exhaustive=True)``.
"""

import numpy as np

from repro.common.errors import ConfigError
from repro.core.divergence import kl_divergence
from repro.core.measure import MeasureTransform
from repro.core.result import MinedRule, RuleSet
from repro.core.rule import Rule, WILDCARD
from repro.core.scaling import iterative_scale
from repro.sql.catalog import decoded_dimension_column
from repro.sql.engine import SqlEngine

#: Name of the data relation inside the session's catalog.
DATA_TABLE = "d"


class SqlMiningResult:
    """Outcome of a SQL-driven mining run.

    Mirrors the fields of :class:`repro.core.result.MiningResult` that
    the comparisons use; ``queries_issued`` counts SQL statements.
    """

    def __init__(self, rule_set, kl_trace, estimates, queries_issued, metrics):
        self.rule_set = rule_set
        self.kl_trace = list(kl_trace)
        self.estimates = estimates
        self.queries_issued = queries_issued
        self.metrics = metrics

    @property
    def final_kl(self):
        return self.kl_trace[-1] if self.kl_trace else float("nan")

    @property
    def simulated_seconds(self):
        return 0.0 if self.metrics is None else self.metrics["simulated_seconds"]

    def __repr__(self):
        return "SqlMiningResult(rules=%d, kl=%.4g, queries=%d)" % (
            len(self.rule_set),
            self.final_kl,
            self.queries_issued,
        )


class SqlSirum:
    """Mines informative rules through SQL statements.

    Parameters
    ----------
    k:
        Number of rules to mine beyond the all-wildcards root.
    epsilon:
        Iterative-scaling convergence threshold (thesis default 0.01).
    cluster:
        Optional :class:`~repro.engine.cluster.ClusterContext`; when
        given, every SQL operator charges its cost regime per batch,
        making runs comparable with the platform benchmarks of §5.2.
    vectorized:
        Execute through the engine's columnar batch path (default).
        ``False`` selects the row-at-a-time reference interpreter —
        results are identical, only speed differs.
    """

    def __init__(self, k=10, epsilon=0.01, cluster=None, optimize_plans=True,
                 vectorized=True):
        if k < 1:
            raise ConfigError("k must be at least 1")
        if epsilon <= 0:
            raise ConfigError("epsilon must be positive")
        self.k = k
        self.epsilon = epsilon
        self._cluster = cluster
        self._optimize = optimize_plans
        self._vectorized = vectorized
        #: Number of SQL statements issued by the last mine() call.
        self.queries_issued = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def mine(self, table):
        """Mine ``self.k`` rules from ``table``; returns a MiningResult."""
        engine = SqlEngine(
            cluster=self._cluster,
            optimize_plans=self._optimize,
            vectorized=self._vectorized,
        )
        self.queries_issued = 0
        dims = list(table.schema.dimensions)
        transform = MeasureTransform.fit(table.measure)
        measure = transform.transformed
        raw_measure = np.asarray(table.measure, dtype=np.float64)

        root = Rule.all_wildcards(table.schema.arity)
        masks = [np.ones(len(table), dtype=bool)]
        scaled = iterative_scale(masks, measure, epsilon=self.epsilon)
        estimates = scaled.estimates
        lambdas = scaled.lambdas

        kl_trace = [kl_divergence(measure, estimates)]
        mined = [
            MinedRule(
                root,
                avg_measure=float(raw_measure.mean()),
                count=len(table),
                gain=0.0,
                iteration=0,
            )
        ]
        selected = {root}

        for iteration in range(1, self.k + 1):
            self._register_data(engine, table, measure, estimates)
            best = self._best_candidate(engine, table, dims, selected)
            if best is None:
                break
            rule, gain = best
            mask = self._coverage_mask(engine, table, dims, rule)
            masks.append(mask)
            scaled = iterative_scale(
                masks,
                measure,
                lambdas=lambdas,
                estimates=estimates,
                epsilon=self.epsilon,
            )
            estimates = scaled.estimates
            lambdas = scaled.lambdas
            kl_trace.append(kl_divergence(measure, estimates))
            mined.append(
                MinedRule(
                    rule,
                    avg_measure=float(raw_measure[mask].mean()),
                    count=int(mask.sum()),
                    gain=gain,
                    iteration=iteration,
                )
            )
            selected.add(rule)

        return SqlMiningResult(
            rule_set=RuleSet(mined),
            kl_trace=kl_trace,
            estimates=transform.inverse(estimates),
            queries_issued=self.queries_issued,
            metrics=(
                None if self._cluster is None else self._cluster.metrics.snapshot()
            ),
        )

    # ------------------------------------------------------------------
    # SQL building blocks
    # ------------------------------------------------------------------

    def _register_data(self, engine, table, measure, estimates):
        """(Re-)register relation ``d`` with the current mhat column.

        Stands in for the UPDATE statements a live session would issue
        after iterative scaling converges.  Registration is columnar:
        dimensions decode through one NumPy gather each and the measure
        and estimate vectors are handed over as-is, so no per-row
        Python loop runs between scaling iterations.
        """
        columns = ["rid"] + list(table.schema.dimensions) + ["m", "mhat"]
        data = [np.arange(len(table), dtype=np.int64)]
        for encoder, codes in zip(table.encoders(), table.dimension_columns()):
            data.append(decoded_dimension_column(encoder, codes))
        data.append(np.asarray(measure, dtype=np.float64))
        data.append(np.asarray(estimates, dtype=np.float64))
        engine.catalog.register_columns(DATA_TABLE, columns, data)

    def _best_candidate(self, engine, table, dims, selected):
        """Run the CUBE query and return the best unselected rule.

        Returns ``(rule, gain)`` or None when no candidate has positive
        gain (the estimate already reproduces every aggregate).
        """
        quoted = ", ".join('"%s"' % d for d in dims)
        grouping_cols = ", ".join(
            'GROUPING("%s") AS g%d' % (d, j) for j, d in enumerate(dims)
        )
        sql = (
            "SELECT %s, %s, SUM(m) AS sm, SUM(mhat) AS se, COUNT(*) AS c, "
            "SUM(m) * LN(SUM(m) / SUM(mhat)) AS gain "
            "FROM %s GROUP BY CUBE(%s) "
            "HAVING SUM(m) > 0 AND SUM(mhat) > 0 "
            "ORDER BY gain DESC"
            % (quoted, grouping_cols, DATA_TABLE, quoted)
        )
        result = engine.query(sql)
        self.queries_issued += 1
        arity = len(dims)
        for row in result.rows:
            gain = row[-1]
            if gain is None or gain <= 0:
                break  # ordered descending: nothing informative remains
            rule = self._rule_from_row(table, dims, row, arity)
            if rule not in selected:
                return rule, float(gain)
        return None

    def _rule_from_row(self, table, dims, row, arity):
        """Decode one CUBE output row into a Rule.

        GROUPING bits (columns ``arity .. 2*arity-1``) distinguish a
        wildcard from a genuine NULL group value.
        """
        values = []
        for j in range(arity):
            if row[arity + j] == 1:
                values.append(WILDCARD)
            else:
                values.append(table.encoder(dims[j]).encode_existing(row[j]))
        return Rule(values)

    def _coverage_mask(self, engine, table, dims, rule):
        """Fetch the support set of ``rule`` via a rid query."""
        predicate = self._rule_predicate(table, dims, rule)
        sql = "SELECT rid FROM %s%s" % (
            DATA_TABLE,
            " WHERE %s" % predicate if predicate else "",
        )
        result = engine.query(sql)
        self.queries_issued += 1
        mask = np.zeros(len(table), dtype=bool)
        mask[np.asarray(result.column_array("rid"), dtype=np.int64)] = True
        return mask

    def _rule_predicate(self, table, dims, rule):
        """Render a rule as a WHERE conjunction (empty for the root)."""
        parts = []
        for j, value in enumerate(rule.values):
            if value == WILDCARD:
                continue
            decoded = table.encoder(dims[j]).decode(value)
            parts.append('"%s" = %s' % (dims[j], _sql_literal(decoded)))
        return " AND ".join(parts)


def _sql_literal(value):
    if isinstance(value, str):
        return "'%s'" % value.replace("'", "''")
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return repr(value)
