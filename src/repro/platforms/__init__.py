"""Data-processing platform simulators (thesis §2.6, §5.2).

The thesis justifies Spark by running Baseline SIRUM on PostgreSQL,
Hive (MapReduce) and SparkSQL.  Each platform here is a cost *regime*
— a cluster spec plus cost model capturing the architecture:

- ``spark`` — parallel executors, in-memory partition caching;
- ``postgres`` — one process, one core, disk-oriented scans, no
  intra-query parallelism (§2.6.1);
- ``hive`` — parallel, but every stage is a MapReduce job: job-launch
  latency and intermediate results materialized to replicated HDFS
  (§5.2 attributes the slowdown to exactly this);
- ``sparksql`` — Spark with a plan-translation inefficiency factor
  (the thesis found generated plans slower than hand-written operators).

Computation is identical across platforms (results match exactly);
only the metered costs differ.
"""

from repro.platforms.base import (
    PLATFORMS,
    make_platform_cluster,
    make_sql_engine,
    run_baseline_sirum,
)

__all__ = [
    "PLATFORMS",
    "make_platform_cluster",
    "make_sql_engine",
    "run_baseline_sirum",
]
