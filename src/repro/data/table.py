"""Immutable columnar table with dictionary-encoded dimension columns.

A :class:`Table` stores each dimension attribute as a dense
``numpy.int64`` column of dictionary codes and the measure attribute as a
``numpy.float64`` column.  This is the in-memory representation all of
SIRUM operates on; the engine partitions row ranges of it.
"""

import itertools
import threading

import numpy as np

from repro.common.errors import DataError
from repro.data.encoding import DictionaryEncoder
from repro.data.schema import Schema

#: Process-wide dataset version counter.  Tables are immutable, so a
#: version identifies one table *instance*'s data for its whole life;
#: a new table (even over the same rows) gets a new version, which is
#: what lets shard maps — and the placement affinity built on them —
#: detect that they were computed against different data.
_dataset_versions = itertools.count(1)


class TableBlock:
    """One contiguous row range of a table, as zero-copy NumPy views.

    Blocks are what the engine hands to partition kernels: ``columns``
    and ``measure`` are slices of the parent table's arrays (views, not
    row lists), so partitioning costs nothing and kernels vectorize
    over their block directly.
    """

    __slots__ = ("index", "columns", "measure", "start", "stop",
                 "size_bytes")

    def __init__(self, index, columns, measure, start, stop, size_bytes):
        self.index = index
        self.columns = columns
        self.measure = measure
        self.start = start
        self.stop = stop
        self.size_bytes = size_bytes

    @property
    def num_rows(self):
        return self.stop - self.start


class Table:
    """Columnar relation matching a :class:`~repro.data.schema.Schema`.

    Construct via :meth:`from_rows`, :meth:`from_columns` or the dataset
    generators.  Tables are immutable: transformation methods return new
    tables sharing column arrays where possible.
    """

    def __init__(self, schema, dim_columns, measure_column, encoders):
        if len(dim_columns) != schema.arity:
            raise DataError(
                "expected %d dimension columns, got %d"
                % (schema.arity, len(dim_columns))
            )
        n = len(measure_column)
        for name, col in zip(schema.dimensions, dim_columns):
            if len(col) != n:
                raise DataError("column %r length mismatch" % name)
        if len(encoders) != schema.arity:
            raise DataError("one encoder per dimension attribute is required")
        self.schema = schema
        self._dims = [np.asarray(col, dtype=np.int64) for col in dim_columns]
        self._measure = np.asarray(measure_column, dtype=np.float64)
        self._encoders = list(encoders)
        for col in self._dims:
            col.setflags(write=False)
        self._measure.setflags(write=False)
        # Lazily-created shared-memory copy of the columns, for the
        # process-pool execution mode (see ``partition_blocks``).  The
        # lock is per table: concurrent jobs sharing one table get one
        # pack, while unrelated tables' O(bytes) copies never queue on
        # each other.
        self._shm_pack = None
        self._shm_lock = threading.Lock()
        self.dataset_version = next(_dataset_versions)
        self._shard_maps = {}
        self._shard_map_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(cls, schema, rows):
        """Build a table from an iterable of (dim values..., measure) rows.

        Each row must have ``schema.arity + 1`` entries with the measure
        value last.  Dimension values may be any hashable objects; they
        are dictionary-encoded in first-seen order.
        """
        encoders = [DictionaryEncoder() for _ in schema.dimensions]
        dim_lists = [[] for _ in schema.dimensions]
        measure = []
        width = schema.arity + 1
        for row in rows:
            if len(row) != width:
                raise DataError(
                    "row %r has %d fields, expected %d" % (row, len(row), width)
                )
            for j in range(schema.arity):
                dim_lists[j].append(encoders[j].encode(row[j]))
            measure.append(float(row[-1]))
        return cls(schema, dim_lists, measure, encoders)

    @classmethod
    def from_columns(cls, schema, dim_columns, measure_column, encoders):
        """Build a table directly from encoded columns (no copying)."""
        return cls(schema, dim_columns, measure_column, encoders)

    @classmethod
    def open_colfile(cls, path, pool=None, capacity_bytes=None):
        """Open a columnar file as a :class:`FileBackedTable`.

        The returned table is usable everywhere a plain table is, but
        its columns live in the file: scans stream blocks through a
        :class:`~repro.data.bufferpool.BufferPool` (``pool``, or a new
        one sized by ``capacity_bytes`` / ``REPRO_BUFFER_POOL_BYTES``),
        and process-mode partitioning hands workers mmap-backed
        descriptors instead of copying the table into shared memory.
        """
        from repro.data.bufferpool import BufferPool
        from repro.data.colfile import ColFileHandle
        from repro.engine.shm import register_served_handle

        handle = ColFileHandle(path)
        if pool is None:
            pool = BufferPool(capacity_bytes=capacity_bytes)
        # A driver holding this table can serve its blocks to remote
        # shard workers even after the file is deleted or renamed —
        # the live mmap, not the directory entry, is the data.
        register_served_handle(handle)
        return FileBackedTable(handle, pool)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self):
        return len(self._measure)

    @property
    def num_rows(self):
        return len(self._measure)

    @property
    def measure(self):
        """Measure column as a read-only float64 array."""
        return self._measure

    def dimension_column(self, name):
        """Encoded codes of dimension ``name`` as a read-only array."""
        return self._dims[self.schema.dimension_index(name)]

    def dimension_columns(self):
        """All encoded dimension columns, in schema order."""
        return list(self._dims)

    def encoder(self, name):
        """Dictionary encoder for dimension ``name``."""
        return self._encoders[self.schema.dimension_index(name)]

    def encoders(self):
        return list(self._encoders)

    def domain_size(self, name):
        """Active-domain cardinality of dimension ``name``."""
        return len(self.encoder(name))

    def encoded_row(self, i):
        """Row ``i``'s dimension codes as a tuple (no measure)."""
        return tuple(int(col[i]) for col in self._dims)

    def decoded_row(self, i):
        """Row ``i`` with original dimension values plus the measure."""
        values = tuple(
            enc.decode(int(col[i])) for enc, col in zip(self._encoders, self._dims)
        )
        return values + (float(self._measure[i]),)

    def iter_encoded(self):
        """Yield (dimension-code tuple, measure value) per row."""
        for i in range(len(self)):
            yield self.encoded_row(i), float(self._measure[i])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def take(self, indices):
        """Return a new table with the rows at ``indices`` (in order)."""
        indices = np.asarray(indices, dtype=np.int64)
        dims = [col[indices] for col in self._dims]
        return Table(self.schema, dims, self._measure[indices], self._encoders)

    def slice(self, start, stop):
        """Return the contiguous row range [start, stop)."""
        dims = [col[start:stop] for col in self._dims]
        return Table(self.schema, dims, self._measure[start:stop], self._encoders)

    def sample(self, size, rng):
        """Uniform random sample of ``size`` rows without replacement."""
        if size > len(self):
            raise DataError(
                "sample size %d exceeds table size %d" % (size, len(self))
            )
        indices = rng.choice(len(self), size=size, replace=False)
        return self.take(np.sort(indices))

    def sample_fraction(self, fraction, rng):
        """Uniform random sample keeping ``fraction`` of the rows."""
        if not 0.0 < fraction <= 1.0:
            raise DataError("sampling fraction must be in (0, 1], got %r" % fraction)
        size = max(1, int(round(fraction * len(self))))
        return self.sample(size, rng)

    def project(self, dimension_names):
        """Keep only the listed dimension attributes (measure retained)."""
        schema = self.schema.project(dimension_names)
        indices = [self.schema.dimension_index(n) for n in dimension_names]
        dims = [self._dims[i] for i in indices]
        encs = [self._encoders[i] for i in indices]
        return Table(schema, dims, self._measure, encs)

    def with_measure(self, measure_column):
        """Return a table with the same dimensions and a new measure."""
        if len(measure_column) != len(self):
            raise DataError("replacement measure column length mismatch")
        return Table(self.schema, self._dims, measure_column, self._encoders)

    def shard_map(self, num_shards):
        """This table's :class:`~repro.engine.placement.ShardMap` for
        ``num_shards`` (built once per degree and cached).

        The map is the one partition abstraction: every execution mode
        — serial views, shm descriptors, mmap descriptors, remote
        shards — derives its blocks from the same map, so ranges and
        metered sizes are identical everywhere.  Maps carry this
        table's ``dataset_version``; a different table (new data) gets
        a different version, which placement uses to detect rebinds.
        """
        from repro.engine.placement import ShardMap

        n = len(self)
        if n == 0:
            raise DataError("cannot partition an empty table")
        num_shards = max(1, min(int(num_shards), n))
        with self._shard_map_lock:
            cached = self._shard_maps.get(num_shards)
            if cached is None:
                cached = ShardMap.build(
                    n, num_shards,
                    version=self.dataset_version,
                    bytes_per_row=max(1, self.estimated_bytes() // n),
                )
                self._shard_maps[num_shards] = cached
            return cached

    def partition_blocks(self, num_blocks, shared=False):
        """Split the table into ``num_blocks`` contiguous row blocks.

        Returns a list of :class:`TableBlock` whose columns and measure
        are views of this table's arrays, one per shard of
        :meth:`shard_map` (``num_blocks`` clamped to ``[1, len(self)]``;
        row counts differ by at most one).  This is the partitioning
        every engine stage runs over.

        With ``shared=True`` the blocks are
        :class:`~repro.engine.shm.SharedTableBlock` descriptors over a
        shared-memory copy of the columns (created once per table and
        reused): they are picklable, so the process-pool execution mode
        ships a partition to a worker without copying its data.  Values
        seen by kernels are identical either way.  The segment is
        unlinked when the table is garbage collected.
        """
        shard_map = self.shard_map(num_blocks)
        if shared:
            from repro.engine.shm import SharedTableBlock

            pack = self._shared_columns()
            return [
                SharedTableBlock(
                    index=shard.shard_id,
                    pack=pack,
                    start=shard.start,
                    stop=shard.stop,
                    size_bytes=shard.size_bytes,
                )
                for shard in shard_map
            ]
        return [
            TableBlock(
                index=shard.shard_id,
                columns=[col[shard.start:shard.stop] for col in self._dims],
                measure=self._measure[shard.start:shard.stop],
                start=shard.start,
                stop=shard.stop,
                size_bytes=shard.size_bytes,
            )
            for shard in shard_map
        ]

    def _shared_columns(self):
        """This table's shared-memory column pack (created on demand)."""
        with self._shm_lock:
            if self._shm_pack is None:
                from repro.engine.shm import SharedArrayPack

                self._shm_pack = SharedArrayPack.create(
                    list(self._dims) + [self._measure]
                )
            return self._shm_pack

    # ------------------------------------------------------------------
    # Aggregates used across the library
    # ------------------------------------------------------------------

    def measure_sum(self):
        return float(self._measure.sum())

    def measure_mean(self):
        if len(self) == 0:
            raise DataError("mean of an empty table is undefined")
        return float(self._measure.mean())

    def estimated_bytes(self):
        """In-memory footprint estimate used by the memory simulator."""
        return sum(col.nbytes for col in self._dims) + self._measure.nbytes

    def __repr__(self):
        return "Table(%d rows, %d dims, measure=%r)" % (
            len(self),
            self.schema.arity,
            self.schema.measure,
        )


class FileBackedTable(Table):
    """A table whose columns live in a columnar file, not RAM.

    Open via :meth:`Table.open_colfile`.  Row count, schema, encoders
    and byte estimates come from the file's metadata; the column arrays
    themselves materialize lazily — the first operation that needs whole
    columns (measure transform fit, rule mask evaluation, in-process
    partitioning) streams every block through the buffer pool once and
    concatenates.  The pool bounds resident *decoded* bytes during any
    block-wise scan (:meth:`scan`), which is where the out-of-core
    behaviour lives; its hit/miss/eviction counters are the observable
    record of that streaming.

    Process-mode partitioning never touches shm: ``partition_blocks``
    with ``shared=True`` returns
    :class:`~repro.engine.shm.MmapTableBlock` descriptors that workers
    resolve against an mmap of the file itself, so no whole-table copy
    is made for a process job (``_shm_pack`` stays ``None``).

    Values are bit-identical to ``read_colfile(path)`` — codes are
    stored as int64 and the measure as float64, the engine's native
    dtypes — so mining results match the in-RAM path exactly.

    Derived tables (``take``, ``project``, ``with_measure``, ...) are
    plain in-RAM tables.
    """

    def __init__(self, handle, pool):
        self.schema = handle.schema
        self._handle = handle
        self._pool = pool
        self._encoders = list(handle.encoders)
        self._shm_pack = None
        self._shm_lock = threading.Lock()
        self._materialize_lock = threading.Lock()
        self.dataset_version = next(_dataset_versions)
        self._shard_maps = {}
        self._shard_map_lock = threading.Lock()

    def __getattr__(self, name):
        # Lazy hook: only fires while ``_dims`` / ``_measure`` are
        # still unset; materializing fills both, after which normal
        # attribute lookup takes over for good.
        if name in ("_dims", "_measure"):
            self._materialize()
            return self.__dict__[name]
        raise AttributeError(
            "%r object has no attribute %r" % (type(self).__name__, name)
        )

    def _materialize(self):
        with self._materialize_lock:
            if "_dims" in self.__dict__:
                return
            handle = self._handle
            dim_parts = [[] for _ in self.schema.dimensions]
            measure_parts = []
            for index in range(handle.num_blocks):
                with self._pool.pin(handle, index) as frame:
                    # Frames are heap copies: safe to keep past unpin.
                    for j, col in enumerate(frame.columns):
                        dim_parts[j].append(col)
                    measure_parts.append(frame.measure)
            if measure_parts:
                dims = [np.concatenate(parts) for parts in dim_parts]
                measure = np.concatenate(measure_parts)
            else:
                dims = [np.zeros(0, dtype=np.int64)
                        for _ in self.schema.dimensions]
                measure = np.zeros(0, dtype=np.float64)
            for col in dims:
                col.setflags(write=False)
            measure.setflags(write=False)
            self._dims = dims
            self._measure = measure

    # -- metadata answered from the file, without materializing --------

    def __len__(self):
        return self._handle.num_rows

    @property
    def num_rows(self):
        return self._handle.num_rows

    def estimated_bytes(self):
        # Same formula as the in-RAM layout (int64 codes + float64
        # measure), so the memory simulator's charges are identical.
        return self._handle.num_rows * self._handle.row_bytes

    @property
    def is_materialized(self):
        return "_dims" in self.__dict__

    @property
    def buffer_pool(self):
        return self._pool

    @property
    def colfile_path(self):
        return self._handle.path

    # -- out-of-core access --------------------------------------------

    def scan(self, dim_predicates=None, measure_range=None):
        """Filtered scan streamed through the buffer pool.

        Returns a plain in-RAM :class:`Table` of the matching rows;
        blocks whose statistics exclude the predicate cost no I/O.
        """
        table, _read, _skipped = self._handle.scan(
            dim_predicates, measure_range, pool=self._pool
        )
        return table

    def scan_stats(self, dim_predicates=None, measure_range=None):
        """(blocks_read, blocks_skipped) a scan would do (stats only)."""
        return self._handle.scan_stats(dim_predicates, measure_range)

    def partition_blocks(self, num_blocks, shared=False):
        """Partition for the engine; mmap descriptors in shared mode.

        With ``shared=True`` (process-pool execution) the blocks carry
        ``(path, file_key, row range)`` and workers map the file
        directly — the shm copy an in-RAM table would make is never
        created.  Partition bounds and ``size_bytes`` match the base
        implementation exactly, keeping metered costs bit-identical.
        """
        if not shared:
            return super().partition_blocks(num_blocks, shared=False)
        from repro.engine.shm import MmapTableBlock

        return [
            MmapTableBlock(
                index=shard.shard_id,
                path=self._handle.path,
                file_key=self._handle.file_key,
                start=shard.start,
                stop=shard.stop,
                size_bytes=shard.size_bytes,
            )
            for shard in self.shard_map(num_blocks)
        ]

    def close(self):
        """Close the underlying file handle (the table stays usable
        only if already materialized)."""
        self._handle.close()

    def __repr__(self):
        return "FileBackedTable(%r, %d rows, %d dims, measure=%r)" % (
            self._handle.path,
            len(self),
            self.schema.arity,
            self.schema.measure,
        )
