"""CSV reading and writing for SIRUM input tables.

The thesis stores all datasets as CSV files in HDFS (§5.1.2).  This
module gives the library the same external interchange format: a header
row naming the columns, dimension values kept as strings, and the
measure column parsed as a float.
"""

import csv

from repro.common.errors import DataError
from repro.data.schema import Schema
from repro.data.table import Table


def read_csv(path, measure, dimensions=None):
    """Load a CSV file into a :class:`~repro.data.table.Table`.

    Parameters
    ----------
    path:
        File path of a CSV with a header row.
    measure:
        Name of the measure column (parsed as float).
    dimensions:
        Names of the dimension columns, in order.  Defaults to every
        non-measure column in header order.
    """
    with open(path, newline="") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError("CSV file %s is empty" % path) from None
        if measure not in header:
            raise DataError("measure column %r not found in %s" % (measure, path))
        if dimensions is None:
            dimensions = [name for name in header if name != measure]
        for name in dimensions:
            if name not in header:
                raise DataError("dimension column %r not found in %s" % (name, path))
        dim_pos = [header.index(name) for name in dimensions]
        m_pos = header.index(measure)
        schema = Schema(dimensions, measure)

        def rows():
            for lineno, record in enumerate(reader, start=2):
                if len(record) != len(header):
                    raise DataError(
                        "%s line %d has %d fields, expected %d"
                        % (path, lineno, len(record), len(header))
                    )
                try:
                    m = float(record[m_pos])
                except ValueError:
                    raise DataError(
                        "%s line %d: measure %r is not numeric"
                        % (path, lineno, record[m_pos])
                    ) from None
                yield tuple(record[i] for i in dim_pos) + (m,)

        return Table.from_rows(schema, rows())


def write_csv(table, path):
    """Write ``table`` to ``path`` as CSV with a header row."""
    header = list(table.schema.dimensions) + [table.schema.measure]
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        for i in range(len(table)):
            writer.writerow(table.decoded_row(i))
