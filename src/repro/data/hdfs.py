"""Simulated HDFS block store.

The thesis stores inputs as CSV in HDFS with a replication factor of 3
(§5.1.2) and attributes much of Hive's slowdown to materializing
intermediate results back to HDFS between MapReduce jobs (§5.2).  The
platform simulators need a disk layer whose I/O can be metered; this
module provides exactly that — named files made of fixed-size blocks,
with counters for bytes read and written.

Payloads are held in memory (this is a simulator), but every access is
accounted so cost models can convert bytes to simulated seconds.
"""

from repro.common.errors import DataError

DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024
DEFAULT_REPLICATION = 3


class HdfsFile:
    """A file: an ordered list of blocks plus total logical size."""

    def __init__(self, name, size_bytes, block_size, replication, payload=None):
        self.name = name
        self.size_bytes = size_bytes
        self.block_size = block_size
        self.replication = replication
        self.payload = payload

    @property
    def num_blocks(self):
        if self.size_bytes == 0:
            return 0
        return -(-self.size_bytes // self.block_size)  # ceil division


class SimulatedHdfs:
    """In-memory stand-in for an HDFS namespace with I/O accounting."""

    def __init__(self, block_size=DEFAULT_BLOCK_SIZE, replication=DEFAULT_REPLICATION):
        if block_size <= 0:
            raise DataError("block size must be positive")
        if replication < 1:
            raise DataError("replication factor must be at least 1")
        self.block_size = block_size
        self.replication = replication
        self._files = {}
        self.bytes_written = 0
        self.bytes_read = 0

    def write(self, name, size_bytes, payload=None):
        """Create or replace a file; counts replicated write bytes."""
        if size_bytes < 0:
            raise DataError("file size must be non-negative")
        self._files[name] = HdfsFile(
            name, size_bytes, self.block_size, self.replication, payload
        )
        self.bytes_written += size_bytes * self.replication
        return self._files[name]

    def read(self, name):
        """Read a file back; counts one copy's worth of read bytes."""
        try:
            f = self._files[name]
        except KeyError:
            raise DataError("no such HDFS file: %r" % name) from None
        self.bytes_read += f.size_bytes
        return f

    def delete(self, name):
        self._files.pop(name, None)

    def exists(self, name):
        return name in self._files

    def file_size(self, name):
        return self.read_metadata(name).size_bytes

    def read_metadata(self, name):
        """Like :meth:`read` but without charging I/O (namenode lookup)."""
        try:
            return self._files[name]
        except KeyError:
            raise DataError("no such HDFS file: %r" % name) from None

    def listing(self):
        return sorted(self._files)

    def reset_counters(self):
        self.bytes_written = 0
        self.bytes_read = 0
