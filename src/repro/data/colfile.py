"""Binary columnar file format with block statistics.

The thesis reads CSV in-situ and notes (§4.5) that deserialized Java
objects occupy far more memory than the on-disk data.  A dictionary-
encoded columnar layout is the standard answer, and it also enables
predicate pushdown to storage: per-block min/max statistics let a scan
skip whole row blocks that cannot match.  This module implements such a
format end to end so the data layer is complete rather than CSV-only.

Layout (all integers little-endian)::

    magic "SRCF" | version u32 | header_len u32 | header JSON
    per dimension: dictionary (JSON list of values, in code order)
    per block:
        per dimension: codes as int32[rows_in_block]
        measure as float64[rows_in_block]
    footer JSON: row counts and per-block min/max statistics

The header carries the schema; blocks hold ``block_size`` rows each
(last block ragged).  Statistics record, per block, each dimension's
min/max *code* and the measure's min/max, mirroring Parquet/ORC
row-group stats.
"""

import json
import struct

import numpy as np

from repro.common.errors import DataError
from repro.data.encoding import DictionaryEncoder
from repro.data.schema import Schema
from repro.data.table import Table

MAGIC = b"SRCF"
VERSION = 1
DEFAULT_BLOCK_ROWS = 4096


def write_colfile(table, path, block_rows=DEFAULT_BLOCK_ROWS):
    """Serialize ``table`` to a columnar file; returns block statistics."""
    if block_rows < 1:
        raise DataError("block_rows must be at least 1")
    n = len(table)
    dims = table.dimension_columns()
    measure = np.asarray(table.measure, dtype=np.float64)
    header = {
        "dimensions": list(table.schema.dimensions),
        "measure": table.schema.measure,
        "num_rows": n,
        "block_rows": block_rows,
    }
    dictionaries = [encoder.values() for encoder in table.encoders()]

    blocks = []
    stats = []
    for start in range(0, max(n, 1), block_rows):
        stop = min(start + block_rows, n)
        if start >= stop:
            break
        block_stat = {"rows": stop - start, "dims": [], "measure": None}
        chunk_parts = []
        for column in dims:
            codes = np.asarray(column[start:stop], dtype=np.int32)
            chunk_parts.append(codes.tobytes())
            block_stat["dims"].append(
                [int(codes.min()), int(codes.max())]
            )
        values = measure[start:stop]
        chunk_parts.append(values.tobytes())
        block_stat["measure"] = [float(values.min()), float(values.max())]
        blocks.append(b"".join(chunk_parts))
        stats.append(block_stat)

    footer = {"blocks": stats}
    with open(path, "wb") as f:
        header_bytes = json.dumps(header).encode("utf-8")
        f.write(MAGIC)
        f.write(struct.pack("<II", VERSION, len(header_bytes)))
        f.write(header_bytes)
        dict_bytes = json.dumps(dictionaries).encode("utf-8")
        f.write(struct.pack("<I", len(dict_bytes)))
        f.write(dict_bytes)
        for block in blocks:
            f.write(block)
        footer_bytes = json.dumps(footer).encode("utf-8")
        f.write(footer_bytes)
        f.write(struct.pack("<I", len(footer_bytes)))
    return stats


def _read_preamble(f, path):
    magic = f.read(4)
    if magic != MAGIC:
        raise DataError("%s is not a columnar file (bad magic)" % path)
    version, header_len = struct.unpack("<II", f.read(8))
    if version != VERSION:
        raise DataError(
            "unsupported columnar file version %d in %s" % (version, path)
        )
    header = json.loads(f.read(header_len).decode("utf-8"))
    (dict_len,) = struct.unpack("<I", f.read(4))
    dictionaries = json.loads(f.read(dict_len).decode("utf-8"))
    return header, dictionaries


def _read_footer(path):
    try:
        with open(path, "rb") as f:
            f.seek(-4, 2)
            (footer_len,) = struct.unpack("<I", f.read(4))
            f.seek(-(4 + footer_len), 2)
            return json.loads(f.read(footer_len).decode("utf-8"))
    except (OSError, ValueError, struct.error) as exc:
        raise DataError("%s has a corrupt columnar footer" % path) from exc


def read_colfile(path):
    """Load a full columnar file back into a :class:`Table`."""
    return scan_colfile(path)


def scan_colfile(path, dim_predicates=None, measure_range=None):
    """Read a columnar file, skipping blocks via statistics.

    Parameters
    ----------
    dim_predicates:
        Optional mapping of dimension name -> required *value* (the
        original object, not the code).  Blocks whose code range cannot
        contain the value are skipped entirely; surviving blocks are
        filtered row-exactly.
    measure_range:
        Optional (low, high) inclusive bounds on the measure; same
        block-skip + exact-filter behaviour.

    Returns a :class:`Table` of exactly the matching rows.  The number
    of blocks read versus skipped is available via
    :func:`block_scan_stats` for the same arguments.
    """
    table, _read, _skipped = _scan(path, dim_predicates, measure_range)
    return table


def block_scan_stats(path, dim_predicates=None, measure_range=None):
    """Return (blocks_read, blocks_skipped) for a hypothetical scan."""
    _table, read, skipped = _scan(path, dim_predicates, measure_range)
    return read, skipped


def _scan(path, dim_predicates, measure_range):
    with open(path, "rb") as f:
        header, dictionaries = _read_preamble(f, path)
        footer = _read_footer(path)
        dims = header["dimensions"]
        schema = Schema(dims, header["measure"])
        encoders = []
        for values in dictionaries:
            encoder = DictionaryEncoder()
            for value in values:
                encoder.encode(value)
            encoders.append(encoder)

        required_codes = {}
        if dim_predicates:
            for name, value in dim_predicates.items():
                if name not in dims:
                    raise DataError("unknown dimension %r in predicate" % name)
                j = dims.index(name)
                if value not in encoders[j]:
                    # Value never occurs: nothing can match anywhere.
                    required_codes[j] = None
                else:
                    required_codes[j] = encoders[j].encode_existing(value)

        kept_dim_columns = [[] for _ in dims]
        kept_measure = []
        blocks_read = 0
        blocks_skipped = 0
        for stat in footer["blocks"]:
            rows = stat["rows"]
            block_bytes = rows * (4 * len(dims) + 8)
            if _block_can_match(stat, required_codes, measure_range):
                blocks_read += 1
                data = f.read(block_bytes)
                offset = 0
                columns = []
                for _ in dims:
                    codes = np.frombuffer(
                        data, dtype=np.int32, count=rows, offset=offset
                    ).astype(np.int64)
                    columns.append(codes)
                    offset += rows * 4
                measure = np.frombuffer(
                    data, dtype=np.float64, count=rows, offset=offset
                )
                mask = np.ones(rows, dtype=bool)
                for j, code in required_codes.items():
                    if code is None:
                        mask[:] = False
                        break
                    mask &= columns[j] == code
                if measure_range is not None:
                    low, high = measure_range
                    mask &= (measure >= low) & (measure <= high)
                for j in range(len(dims)):
                    kept_dim_columns[j].append(columns[j][mask])
                kept_measure.append(measure[mask])
            else:
                blocks_skipped += 1
                f.seek(block_bytes, 1)

    if kept_measure:
        dim_arrays = [np.concatenate(parts) for parts in kept_dim_columns]
        measure_array = np.concatenate(kept_measure)
    else:
        dim_arrays = [np.zeros(0, dtype=np.int64) for _ in dims]
        measure_array = np.zeros(0, dtype=np.float64)
    table = Table.from_columns(schema, dim_arrays, measure_array, encoders)
    return table, blocks_read, blocks_skipped


def _block_can_match(stat, required_codes, measure_range):
    for j, code in required_codes.items():
        if code is None:
            return False
        low, high = stat["dims"][j]
        if not low <= code <= high:
            return False
    if measure_range is not None:
        low, high = measure_range
        m_low, m_high = stat["measure"]
        if m_high < low or m_low > high:
            return False
    return True
