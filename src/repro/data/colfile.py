"""Binary columnar file format with block statistics.

The thesis reads CSV in-situ and notes (§4.5) that deserialized Java
objects occupy far more memory than the on-disk data.  A dictionary-
encoded columnar layout is the standard answer, and it also enables
predicate pushdown to storage: per-block min/max statistics let a scan
skip whole row blocks that cannot match.  This module implements such a
format end to end so the data layer is complete rather than CSV-only.

Layout (all integers little-endian)::

    magic "SRCF" | version u32 | header_len u32 | header JSON
    dict_len u32 | per-dimension dictionaries (JSON, in code order)
    pad_len u32 | pad_len zero bytes (aligns the block region to 64 B)
    per block:
        per dimension: codes as int64[rows_in_block]
        measure as float64[rows_in_block]
    footer JSON: row counts and per-block min/max statistics
    footer_len u32

The header carries the schema; blocks hold ``block_rows`` rows each
(last block ragged).  Statistics record, per block, each dimension's
min/max *code* and the measure's min/max, mirroring Parquet/ORC
row-group stats.

Codes are stored as int64 — the engine's native dtype — so an mmap of
the block region yields column views that are bit-for-bit the arrays an
in-RAM :class:`~repro.data.table.Table` holds, with no decode copy.
:class:`ColFileHandle` is the open-file object the rest of the data
layer builds on: it parses the preamble and footer once, builds the
dictionary encoders once, and serves zero-copy block views from a
read-only mmap (so repeated reads cost page-cache lookups, not I/O).
"""

import json
import mmap
import os
import struct

import numpy as np

from repro.common.errors import DataError, EngineError
from repro.data.encoding import DictionaryEncoder
from repro.data.schema import Schema
from repro.data.table import Table

MAGIC = b"SRCF"
VERSION = 2
DEFAULT_BLOCK_ROWS = 4096
BLOCK_ALIGN = 64


def write_colfile(table, path, block_rows=DEFAULT_BLOCK_ROWS):
    """Serialize ``table`` to a columnar file; returns block statistics."""
    if block_rows < 1:
        raise DataError("block_rows must be at least 1")
    n = len(table)
    dims = table.dimension_columns()
    measure = np.asarray(table.measure, dtype=np.float64)
    header = {
        "dimensions": list(table.schema.dimensions),
        "measure": table.schema.measure,
        "num_rows": n,
        "block_rows": block_rows,
    }
    dictionaries = [encoder.values() for encoder in table.encoders()]

    blocks = []
    stats = []
    for start in range(0, max(n, 1), block_rows):
        stop = min(start + block_rows, n)
        if start >= stop:
            break
        block_stat = {"rows": stop - start, "dims": [], "measure": None}
        chunk_parts = []
        for column in dims:
            codes = np.ascontiguousarray(column[start:stop], dtype=np.int64)
            chunk_parts.append(codes.tobytes())
            block_stat["dims"].append(
                [int(codes.min()), int(codes.max())]
            )
        values = measure[start:stop]
        chunk_parts.append(values.tobytes())
        block_stat["measure"] = [float(values.min()), float(values.max())]
        blocks.append(b"".join(chunk_parts))
        stats.append(block_stat)

    footer = {"blocks": stats}
    with open(path, "wb") as f:
        header_bytes = json.dumps(header).encode("utf-8")
        f.write(MAGIC)
        f.write(struct.pack("<II", VERSION, len(header_bytes)))
        f.write(header_bytes)
        dict_bytes = json.dumps(dictionaries).encode("utf-8")
        f.write(struct.pack("<I", len(dict_bytes)))
        f.write(dict_bytes)
        pos = f.tell()
        pad_len = (-(pos + 4)) % BLOCK_ALIGN
        f.write(struct.pack("<I", pad_len))
        f.write(b"\0" * pad_len)
        for block in blocks:
            f.write(block)
        footer_bytes = json.dumps(footer).encode("utf-8")
        f.write(footer_bytes)
        f.write(struct.pack("<I", len(footer_bytes)))
    return stats


class ColFileHandle:
    """An open columnar file: parsed metadata plus mmap'd block region.

    The handle is the unit the buffer pool and the mmap-backed process
    blocks key on.  Opening parses the preamble and footer exactly once
    and builds one :class:`DictionaryEncoder` per dimension, so scans
    never re-encode dictionaries per call.  ``file_key`` (size,
    mtime_ns) identifies this file *state*; attachment caches use it to
    refuse a file that was rewritten underneath them.

    Block data is served as read-only NumPy views over a private
    ``ACCESS_READ`` mmap — the OS page cache is the only copy, shared
    with every other process mapping the same file.
    """

    def __init__(self, path):
        self.path = str(path)
        try:
            with open(self.path, "rb") as f:
                info = os.fstat(f.fileno())
                self.file_key = (info.st_size, info.st_mtime_ns)
                self._mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise DataError(
                "cannot open columnar file %s: %s" % (self.path, exc)
            ) from exc
        try:
            self._parse()
        except DataError:
            self.close()
            raise
        except (ValueError, KeyError, TypeError, struct.error) as exc:
            self.close()
            raise DataError(
                "%s has a corrupt columnar layout" % self.path
            ) from exc

    def _parse(self):
        mm = self._mm
        size = len(mm)
        if size < 12 or mm[:4] != MAGIC:
            raise DataError(
                "%s is not a columnar file (bad magic)" % self.path
            )
        version, header_len = struct.unpack_from("<II", mm, 4)
        if version != VERSION:
            raise DataError(
                "unsupported columnar file version %d in %s"
                % (version, self.path)
            )
        pos = 12
        header = json.loads(bytes(mm[pos:pos + header_len]).decode("utf-8"))
        pos += header_len
        (dict_len,) = struct.unpack_from("<I", mm, pos)
        pos += 4
        dictionaries = json.loads(bytes(mm[pos:pos + dict_len]).decode("utf-8"))
        pos += dict_len
        (pad_len,) = struct.unpack_from("<I", mm, pos)
        pos += 4 + pad_len

        self.dimensions = list(header["dimensions"])
        self.schema = Schema(self.dimensions, header["measure"])
        self.num_rows = int(header["num_rows"])
        self.block_rows = int(header["block_rows"])
        self.data_offset = pos
        self.row_bytes = 8 * (len(self.dimensions) + 1)

        self.encoders = []
        for values in dictionaries:
            encoder = DictionaryEncoder()
            for value in values:
                encoder.encode(value)
            self.encoders.append(encoder)

        footer_start = size - 4
        if footer_start < pos:
            raise DataError(
                "%s has a corrupt columnar footer" % self.path
            )
        (footer_len,) = struct.unpack_from("<I", mm, footer_start)
        if footer_start - footer_len < pos:
            raise DataError(
                "%s has a corrupt columnar footer" % self.path
            )
        footer = json.loads(
            bytes(mm[footer_start - footer_len:footer_start]).decode("utf-8")
        )
        self.block_stats = list(footer["blocks"])
        self.num_blocks = len(self.block_stats)

        # The file's physical layout as a shard map: one shard per
        # block, block-aligned except the ragged last block, versioned
        # by the file state (a rewritten file is a different dataset).
        from repro.engine.placement import ShardMap

        try:
            self.block_map = ShardMap.from_block_rows(
                [int(stat["rows"]) for stat in self.block_stats],
                version=self.file_key[1],
                bytes_per_row=self.row_bytes,
                align=self.block_rows if self.num_blocks > 1 else 1,
            )
        except EngineError as exc:
            raise DataError(
                "%s has inconsistent block row counts: %s"
                % (self.path, exc)
            ) from None
        if self.block_map.num_rows != self.num_rows:
            raise DataError(
                "%s footer disagrees with header row count" % self.path
            )
        if pos + self.num_rows * self.row_bytes != footer_start - footer_len:
            raise DataError(
                "%s is truncated (block region size mismatch)" % self.path
            )

    # ------------------------------------------------------------------
    # Block access
    # ------------------------------------------------------------------

    def block_range(self, index):
        """Row range [start, stop) covered by block ``index``."""
        shard = self.block_map[index]
        return shard.start, shard.stop

    def block_nbytes(self, index):
        """Decoded byte size of block ``index`` (codes + measure)."""
        return self.block_map[index].size_bytes

    def block_views(self, index):
        """Zero-copy (columns, measure) views of block ``index``.

        The arrays alias the read-only mmap; they stay valid while the
        handle is open.  Callers that outlive the handle must copy.
        """
        start, stop = self.block_range(index)
        rows = stop - start
        base = self.data_offset + start * self.row_bytes
        columns = []
        for j in range(len(self.dimensions)):
            columns.append(np.frombuffer(
                self._mm, dtype=np.int64, count=rows, offset=base + 8 * j * rows
            ))
        measure = np.frombuffer(
            self._mm, dtype=np.float64, count=rows,
            offset=base + 8 * len(self.dimensions) * rows,
        )
        return columns, measure

    def block_raw_bytes(self, index):
        """The exact on-disk bytes of block ``index``'s payload region.

        This is what the remote block-shipping path serves: the raw
        little-endian ``[per-dim int64[rows] | measure float64[rows]]``
        region exactly as mmap'd, so a worker rebuilding column views
        from these bytes gets arrays bit-identical to a local mmap
        (see :class:`~repro.net.worker.RemoteColFile`).
        """
        start, stop = self.block_range(index)
        base = self.data_offset + start * self.row_bytes
        return bytes(self._mm[base:base + (stop - start) * self.row_bytes])

    def wire_meta(self):
        """Layout facts a remote reader needs to interpret raw blocks."""
        return {
            "num_rows": self.num_rows,
            "block_rows": self.block_rows,
            "num_dimensions": len(self.dimensions),
        }

    def read_block(self, index):
        """Materialized (columns, measure) copies of block ``index``.

        This is the buffer pool's fault path: the copies live on the
        heap (counted against the pool's capacity) independent of the
        mmap, unlike :meth:`block_views`.
        """
        columns, measure = self.block_views(index)
        out_columns = [col.copy() for col in columns]
        out_measure = measure.copy()
        for col in out_columns:
            col.setflags(write=False)
        out_measure.setflags(write=False)
        return out_columns, out_measure

    def read_rows(self, start, stop):
        """(columns, measure) for the row range [start, stop).

        A range inside one block returns zero-copy mmap views; a range
        spanning blocks concatenates the per-block views (one copy of
        just that range).  This is what mmap-backed partition blocks
        resolve through in process workers.
        """
        if not 0 <= start <= stop <= self.num_rows:
            raise DataError(
                "row range [%d, %d) out of bounds for %d rows"
                % (start, stop, self.num_rows)
            )
        if start == stop:
            empty_dims = [np.zeros(0, dtype=np.int64)
                          for _ in self.dimensions]
            return empty_dims, np.zeros(0, dtype=np.float64)
        first = start // self.block_rows
        last = (stop - 1) // self.block_rows
        if first == last:
            b_start, _ = self.block_range(first)
            columns, measure = self.block_views(first)
            lo, hi = start - b_start, stop - b_start
            return [col[lo:hi] for col in columns], measure[lo:hi]
        dim_parts = [[] for _ in self.dimensions]
        measure_parts = []
        for index in range(first, last + 1):
            b_start, b_stop = self.block_range(index)
            columns, measure = self.block_views(index)
            lo = max(start, b_start) - b_start
            hi = min(stop, b_stop) - b_start
            for j, col in enumerate(columns):
                dim_parts[j].append(col[lo:hi])
            measure_parts.append(measure[lo:hi])
        out_columns = [np.concatenate(parts) for parts in dim_parts]
        out_measure = np.concatenate(measure_parts)
        for col in out_columns:
            col.setflags(write=False)
        out_measure.setflags(write=False)
        return out_columns, out_measure

    # ------------------------------------------------------------------
    # Predicate pushdown
    # ------------------------------------------------------------------

    def required_codes(self, dim_predicates):
        """Map dimension index -> required code (None: value unknown)."""
        required = {}
        if dim_predicates:
            for name, value in dim_predicates.items():
                if name not in self.dimensions:
                    raise DataError("unknown dimension %r in predicate" % name)
                j = self.dimensions.index(name)
                if value not in self.encoders[j]:
                    # Value never occurs: nothing can match anywhere.
                    required[j] = None
                else:
                    required[j] = self.encoders[j].encode_existing(value)
        return required

    def scan_stats(self, dim_predicates=None, measure_range=None):
        """(blocks_read, blocks_skipped) from footer stats alone.

        No block payload is touched — this is the planning-time answer
        to "how much I/O would this scan do".
        """
        required = self.required_codes(dim_predicates)
        read = skipped = 0
        for stat in self.block_stats:
            if _block_can_match(stat, required, measure_range):
                read += 1
            else:
                skipped += 1
        return read, skipped

    def scan(self, dim_predicates=None, measure_range=None, pool=None):
        """Filtered scan; returns (table, blocks_read, blocks_skipped).

        Skipped blocks cost no I/O at all (the stats decision precedes
        any payload access).  Surviving blocks stream through ``pool``
        when given — bounding resident decoded bytes and recording
        hit/miss/eviction counters — or are read as direct mmap views.
        """
        required = self.required_codes(dim_predicates)
        kept_dim_columns = [[] for _ in self.dimensions]
        kept_measure = []
        blocks_read = 0
        blocks_skipped = 0
        for index, stat in enumerate(self.block_stats):
            if not _block_can_match(stat, required, measure_range):
                blocks_skipped += 1
                continue
            blocks_read += 1
            if pool is not None:
                with pool.pin(self, index) as frame:
                    columns, measure = frame.columns, frame.measure
                    self._filter_block(
                        columns, measure, required, measure_range,
                        kept_dim_columns, kept_measure,
                    )
            else:
                columns, measure = self.block_views(index)
                self._filter_block(
                    columns, measure, required, measure_range,
                    kept_dim_columns, kept_measure,
                )
        if kept_measure:
            dim_arrays = [np.concatenate(parts) for parts in kept_dim_columns]
            measure_array = np.concatenate(kept_measure)
        else:
            dim_arrays = [np.zeros(0, dtype=np.int64) for _ in self.dimensions]
            measure_array = np.zeros(0, dtype=np.float64)
        table = Table.from_columns(
            self.schema, dim_arrays, measure_array, self.encoders
        )
        return table, blocks_read, blocks_skipped

    @staticmethod
    def _filter_block(columns, measure, required, measure_range,
                      kept_dim_columns, kept_measure):
        rows = len(measure)
        mask = np.ones(rows, dtype=bool)
        for j, code in required.items():
            if code is None:
                mask[:] = False
                break
            mask = mask & (columns[j] == code)
        if measure_range is not None:
            low, high = measure_range
            mask = mask & (measure >= low) & (measure <= high)
        for j, col in enumerate(columns):
            # Boolean indexing copies, so kept rows are safe to use
            # after the source block is unpinned or evicted.
            kept_dim_columns[j].append(col[mask])
        kept_measure.append(measure[mask])

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------

    def close(self):
        mm, self._mm = getattr(self, "_mm", None), None
        if mm is not None:
            try:
                mm.close()
            except BufferError:
                # Live NumPy views still reference the map; the OS
                # reclaims it when they are garbage collected.
                pass

    @property
    def closed(self):
        return self._mm is None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self):
        return "ColFileHandle(%r, %d rows, %d blocks)" % (
            self.path, self.num_rows, self.num_blocks
        )


def read_colfile(path):
    """Load a full columnar file back into a :class:`Table`."""
    return scan_colfile(path)


def scan_colfile(path, dim_predicates=None, measure_range=None, pool=None):
    """Read a columnar file, skipping blocks via statistics.

    Parameters
    ----------
    dim_predicates:
        Optional mapping of dimension name -> required *value* (the
        original object, not the code).  Blocks whose code range cannot
        contain the value are skipped entirely; surviving blocks are
        filtered row-exactly.
    measure_range:
        Optional (low, high) inclusive bounds on the measure; same
        block-skip + exact-filter behaviour.
    pool:
        Optional :class:`~repro.data.bufferpool.BufferPool` to stream
        surviving blocks through.

    Returns a :class:`Table` of exactly the matching rows.  The number
    of blocks read versus skipped is available via
    :func:`block_scan_stats` for the same arguments.
    """
    with ColFileHandle(path) as handle:
        table, _read, _skipped = handle.scan(
            dim_predicates, measure_range, pool=pool
        )
    return table


def block_scan_stats(path, dim_predicates=None, measure_range=None):
    """Return (blocks_read, blocks_skipped) for a hypothetical scan.

    Computed from the footer statistics alone: no block payload is read
    or decoded.
    """
    with ColFileHandle(path) as handle:
        return handle.scan_stats(dim_predicates, measure_range)


def _block_can_match(stat, required_codes, measure_range):
    for j, code in required_codes.items():
        if code is None:
            return False
        low, high = stat["dims"][j]
        if not low <= code <= high:
            return False
    if measure_range is not None:
        low, high = measure_range
        m_low, m_high = stat["measure"]
        if m_high < low or m_low > high:
            return False
    return True
