"""Data layer: schemas, columnar tables, encoding, CSV I/O and generators.

SIRUM's input is a relational dataset with categorical *dimension*
attributes and one numeric *measure* attribute (thesis §2.1).  The data
layer provides:

- :class:`~repro.data.schema.Schema` — named dimension attributes plus a
  measure attribute;
- :class:`~repro.data.table.Table` — an immutable columnar table whose
  dimension columns are dictionary-encoded to dense integer codes;
- :mod:`repro.data.colfile` — the on-disk block format with per-block
  min/max statistics (predicate pushdown to storage);
- :class:`~repro.data.bufferpool.BufferPool` — the bounded pool of
  decoded blocks behind :meth:`Table.open_colfile`'s out-of-core mode;
- :mod:`repro.data.csvio` — CSV reading/writing compatible with the
  thesis's HDFS-resident CSV inputs;
- :mod:`repro.data.hdfs` — a simulated block store used by the platform
  simulators to account for disk I/O;
- :mod:`repro.data.generators` — the worked flight example and synthetic
  counterparts of the Income, GDELT, SUSY and TLC datasets.
"""

from repro.data.schema import Schema
from repro.data.encoding import DictionaryEncoder
from repro.data.table import FileBackedTable, Table
from repro.data.bufferpool import BufferPool

__all__ = [
    "Schema",
    "DictionaryEncoder",
    "Table",
    "FileBackedTable",
    "BufferPool",
]
