"""Synthetic multidimensional dataset generator with planted rules.

Informative-rule mining only behaves interestingly when the measure is
*correlated* with conjunctions of dimension values.  The generator
therefore plants a configurable number of hidden rules — random
conjunctions over the dimension attributes — each shifting the measure
of the tuples it covers.  A good miner should recover (supersets of)
the planted conjunctions as its most informative rules, which the
integration tests check.

Dimension values are drawn from per-attribute Zipf-like distributions so
that the skew-sensitive optimizations (fast candidate pruning, thesis
§4.2) see realistic value frequencies.
"""

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.data.schema import Schema
from repro.data.table import Table
from repro.data.encoding import DictionaryEncoder


class SyntheticSpec:
    """Parameters for :func:`generate`.

    Parameters
    ----------
    num_rows:
        Number of tuples.
    cardinalities:
        Active-domain size per dimension attribute; the list length is
        the number of dimensions ``d``.
    skew:
        Zipf exponent for value frequencies (0 = uniform).
    num_planted_rules:
        Hidden conjunctions that shift the measure.
    planted_arity:
        Number of non-wildcard attributes per planted rule.
    measure_kind:
        ``"numeric"`` — base + planted shifts + Gaussian noise;
        ``"binary"`` — Bernoulli with planted log-odds shifts (thesis
        Income/SUSY style, §2.4).
    base_measure / effect_scale / noise_scale:
        Location and magnitude parameters of the measure model.
    dimension_prefix:
        Dimension attributes are named ``<prefix>0 .. <prefix>d-1``.
    """

    def __init__(
        self,
        num_rows,
        cardinalities,
        skew=1.1,
        num_planted_rules=5,
        planted_arity=2,
        measure_kind="numeric",
        base_measure=10.0,
        effect_scale=8.0,
        noise_scale=1.0,
        measure_name="m",
        dimension_prefix="A",
    ):
        if num_rows <= 0:
            raise ConfigError("num_rows must be positive")
        cardinalities = list(cardinalities)
        if not cardinalities or any(c < 1 for c in cardinalities):
            raise ConfigError("cardinalities must be a non-empty list of >=1 ints")
        if measure_kind not in ("numeric", "binary"):
            raise ConfigError("measure_kind must be 'numeric' or 'binary'")
        if planted_arity < 1 or planted_arity > len(cardinalities):
            raise ConfigError("planted_arity must be in [1, d]")
        if skew < 0:
            raise ConfigError("skew must be non-negative")
        if measure_kind == "binary" and not 0.0 < base_measure < 1.0:
            raise ConfigError(
                "binary measure_kind needs base_measure in (0, 1): it is the "
                "baseline probability of a 1"
            )
        self.num_rows = num_rows
        self.cardinalities = cardinalities
        self.skew = skew
        self.num_planted_rules = num_planted_rules
        self.planted_arity = planted_arity
        self.measure_kind = measure_kind
        self.base_measure = base_measure
        self.effect_scale = effect_scale
        self.noise_scale = noise_scale
        self.measure_name = measure_name
        self.dimension_prefix = dimension_prefix

    @property
    def arity(self):
        return len(self.cardinalities)


def _zipf_probabilities(cardinality, skew):
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones_like(ranks)
    return weights / weights.sum()


def _frequent_code(spec, attribute, rng):
    """Draw a planted value from the attribute's own (skewed) law.

    Planting values by their actual frequency keeps rule supports large
    enough to be informative (a uniformly drawn value under Zipf skew
    is usually too rare to matter).
    """
    card = spec.cardinalities[attribute]
    probs = _zipf_probabilities(card, spec.skew)
    return int(rng.choice(card, p=probs))


def _plant_rules(spec, rng):
    """Choose hidden (attr index -> code) conjunctions and their effects.

    Half of the rules (after the first) *extend* an earlier planted
    conjunction by one attribute instead of being drawn fresh.  Nested
    conjunctions give the mined rule set the ancestor/descendant
    overlaps real data exhibits, which is what makes iterative scaling
    take multiple rounds (thesis §4.1 observed ~10 on real data).
    """
    planted = []
    for i in range(spec.num_planted_rules):
        extend = planted and rng.random() < 0.7
        if extend:
            base, _ = planted[rng.integers(0, len(planted))]
            free = [a for a in range(spec.arity) if a not in base]
            if free:
                conjunction = dict(base)
                attr = int(free[rng.integers(0, len(free))])
                conjunction[attr] = _frequent_code(spec, attr, rng)
            else:
                extend = False
        if not extend:
            attrs = rng.choice(
                spec.arity, size=spec.planted_arity, replace=False
            )
            conjunction = {
                int(a): _frequent_code(spec, int(a), rng) for a in attrs
            }
        effect = float(rng.normal(0.0, spec.effect_scale))
        planted.append((conjunction, effect))
    return planted


def generate(spec, seed=0):
    """Generate a :class:`~repro.data.table.Table` from ``spec``.

    Returns
    -------
    (table, planted):
        The table, and the list of ``(conjunction, effect)`` pairs that
        were planted (conjunctions map dimension index to encoded code).
    """
    rng = make_rng(seed)
    dims = []
    for card in spec.cardinalities:
        probs = _zipf_probabilities(card, spec.skew)
        dims.append(rng.choice(card, size=spec.num_rows, p=probs).astype(np.int64))

    planted = _plant_rules(spec, rng)
    shift = np.zeros(spec.num_rows, dtype=np.float64)
    for conjunction, effect in planted:
        mask = np.ones(spec.num_rows, dtype=bool)
        for attr, code in conjunction.items():
            mask &= dims[attr] == code
        shift[mask] += effect

    if spec.measure_kind == "numeric":
        noise = rng.normal(0.0, spec.noise_scale, size=spec.num_rows)
        measure = spec.base_measure + shift + noise
    else:
        base_logit = np.log(spec.base_measure / (1.0 - spec.base_measure))
        logits = base_logit + shift / max(spec.effect_scale, 1e-9) * 2.0
        probs = 1.0 / (1.0 + np.exp(-logits))
        measure = (rng.random(spec.num_rows) < probs).astype(np.float64)

    schema = Schema(
        ["%s%d" % (spec.dimension_prefix, j) for j in range(spec.arity)],
        spec.measure_name,
    )
    encoders = []
    for j, card in enumerate(spec.cardinalities):
        enc = DictionaryEncoder()
        # Materialize the full nominal domain as "<name>=v<code>" labels so
        # decoding is meaningful even for codes unseen in the sample.
        for code in range(card):
            enc.encode("%s=v%d" % (schema.dimensions[j], code))
        encoders.append(enc)
    table = Table.from_columns(schema, dims, measure, encoders)
    return table, planted
