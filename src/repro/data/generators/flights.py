"""The flight-delay worked example from thesis Table 1.1.

Fourteen flights with Day / Origin / Destination dimensions and the
delay (minutes late) as the measure.  Tests verify the maximum-entropy
estimates (the m-hat columns of Table 1.1), the informative rule set of
Table 1.2, the RCT of Table 4.1 and the KL-divergence values of §2.3
against this table.
"""

from repro.data.schema import Schema
from repro.data.table import Table

# (Day, Origin, Destination, Delay) for flight IDs 1..14, thesis Table 1.1.
FLIGHT_ROWS = [
    ("Fri", "SF", "London", 20.0),
    ("Fri", "London", "LA", 16.0),
    ("Sun", "Tokyo", "Frankfurt", 10.0),
    ("Sun", "Chicago", "London", 15.0),
    ("Sat", "Beijing", "Frankfurt", 13.0),
    ("Sat", "Frankfurt", "London", 19.0),
    ("Tue", "Chicago", "LA", 5.0),
    ("Wed", "London", "Chicago", 6.0),
    ("Thu", "SF", "Frankfurt", 15.0),
    ("Mon", "Beijing", "SF", 4.0),
    ("Mon", "SF", "London", 7.0),
    ("Mon", "SF", "Frankfurt", 5.0),
    ("Mon", "Tokyo", "Beijing", 6.0),
    ("Mon", "Frankfurt", "Tokyo", 4.0),
]

FLIGHT_SCHEMA = Schema(["Day", "Origin", "Destination"], "Delay")


def flight_table():
    """Return the 14-row flight-delay table of thesis Table 1.1."""
    return Table.from_rows(FLIGHT_SCHEMA, FLIGHT_ROWS)
