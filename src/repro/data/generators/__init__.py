"""Dataset generators.

``flights`` reproduces the worked example of thesis Tables 1.1–1.3
exactly.  The remaining generators synthesize datasets with the *shape*
of the thesis's evaluation datasets (§5.1.2) — same number of dimension
attributes, comparable domain cardinalities and skew, same measure
semantics — at row counts scaled to a single machine.  See DESIGN.md for
the substitution rationale.
"""

from repro.data.generators.flights import flight_table, FLIGHT_ROWS
from repro.data.generators.synthetic import SyntheticSpec, generate
from repro.data.generators.datasets import (
    income_table,
    gdelt_table,
    susy_table,
    tlc_table,
)

__all__ = [
    "flight_table",
    "FLIGHT_ROWS",
    "SyntheticSpec",
    "generate",
    "income_table",
    "gdelt_table",
    "susy_table",
    "tlc_table",
]
