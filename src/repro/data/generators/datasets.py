"""Synthetic counterparts of the thesis's evaluation datasets (§5.1.2).

Each builder fixes the dataset *shape* — dimension count, domain
cardinalities, skew and measure semantics — to match the real dataset,
and exposes ``num_rows`` so benchmarks can scale row counts to the
machine at hand.  Paper-scale row counts (1.5M–1.08B) are impractical in
pure Python; the default sizes keep the same *relative* sizes
(Income < GDELT < SUSY << TLC).

Cardinalities mirror the real attributes (GDELT country/event-code
domains in the hundreds, census demographics in the tens, SUSY bucketed
to 3 values), which controls the per-attribute agreement probability —
the quantity that drives LCA density, ancestor fan-out and the §4.2
pruning speedup.

| Dataset | Paper shape                          | Here                      |
|---------|--------------------------------------|---------------------------|
| Income  | 1.5M rows, 9 dims, binary measure    | 9 dims, binary            |
| GDELT   | 3.8M rows, 9 dims, numeric measure   | 9 dims, numeric (counts)  |
| SUSY    | 5M rows, 18 dims (3 buckets), binary | 18 dims x 3 codes, binary |
| TLC     | 160M-row sample, 9 dims, numeric     | 9 dims, numeric (fares)   |
"""

from repro.data.generators.synthetic import SyntheticSpec, generate

DEFAULT_ROWS = {
    "income": 6000,
    "gdelt": 8000,
    "susy": 10000,
    "tlc": 40000,
}


def income_table(num_rows=None, seed=101):
    """US-census-style table: 9 demographic dims, binary income flag."""
    spec = SyntheticSpec(
        num_rows=num_rows or DEFAULT_ROWS["income"],
        cardinalities=[30, 12, 25, 9, 16, 40, 8, 15, 50],
        skew=0.8,
        num_planted_rules=6,
        planted_arity=2,
        measure_kind="binary",
        base_measure=0.18,
        effect_scale=2.0,
        measure_name="HighIncome",
        dimension_prefix="Inc",
    )
    table, _ = generate(spec, seed=seed)
    return table


def gdelt_table(num_rows=None, seed=202):
    """GDELT-event-style table: 9 dims, numeric mention-count measure."""
    spec = SyntheticSpec(
        num_rows=num_rows or DEFAULT_ROWS["gdelt"],
        cardinalities=[200, 40, 4, 300, 6, 9, 9, 9, 60],
        skew=0.9,
        num_planted_rules=8,
        planted_arity=2,
        measure_kind="numeric",
        base_measure=25.0,
        effect_scale=18.0,
        noise_scale=4.0,
        measure_name="NumMentions",
        dimension_prefix="Ev",
    )
    table, _ = generate(spec, seed=seed)
    return table


def susy_table(num_rows=None, num_dimensions=18, seed=303):
    """SUSY-style table: up to 18 bucketed dims (3 codes each), binary.

    ``num_dimensions`` supports the thesis's projections onto the first
    10/14/18 attributes (Figures 3.2, 5.7, 5.8).  Three buckets per
    attribute give ~1/3 agreement probability per attribute, which is
    what makes ancestor generation the bottleneck at d = 18 (§3.3).
    """
    if not 1 <= num_dimensions <= 18:
        raise ValueError("SUSY projections use between 1 and 18 dimensions")
    spec = SyntheticSpec(
        num_rows=num_rows or DEFAULT_ROWS["susy"],
        cardinalities=[3] * num_dimensions,
        skew=0.3,
        num_planted_rules=6,
        planted_arity=min(3, num_dimensions),
        measure_kind="binary",
        base_measure=0.45,
        effect_scale=2.5,
        measure_name="IsSignal",
        dimension_prefix="Susy",
    )
    table, _ = generate(spec, seed=seed)
    return table


def tlc_table(num_rows=None, seed=404):
    """NYC-taxi-style table: 9 trip dims, numeric total-payment measure."""
    spec = SyntheticSpec(
        num_rows=num_rows or DEFAULT_ROWS["tlc"],
        cardinalities=[12, 8, 5, 120, 120, 120, 120, 7, 24],
        skew=0.8,
        num_planted_rules=10,
        planted_arity=2,
        measure_kind="numeric",
        base_measure=14.0,
        effect_scale=9.0,
        noise_scale=3.0,
        measure_name="TotalPayment",
        dimension_prefix="Trip",
    )
    table, _ = generate(spec, seed=seed)
    return table
