"""Block-granular buffer manager over columnar files.

The classic database buffer pool, applied to the colfile block format:
a bounded pool of decoded column blocks with pin/unpin discipline, LRU
eviction of unpinned frames, and hit/miss/eviction accounting.  This is
what lets a scan (and the file-backed :class:`~repro.data.table.Table`
built on it) stream a dataset larger than memory: resident decoded
bytes never exceed ``capacity_bytes``, and blocks that fall out are
simply re-faulted from the file on the next touch.

Eviction bookkeeping reuses :class:`~repro.engine.memory.EvictionIndex`
— the same LRU ledger behind the engine's simulated partition cache —
so there is one eviction policy in the codebase, not two.  Counters are
folded into a :class:`~repro.engine.metrics.MetricsRegistry` under
``buffer_pool_hits`` / ``buffer_pool_misses`` / ``buffer_pool_evictions``.

Pinned frames are never evicted; if every frame is pinned the pool
overcommits rather than failing the caller, and shrinks back to
capacity as pins are released.  Frames are keyed on the handle's
``(path, file_key, block)`` so a rewritten file can never serve stale
blocks.
"""

import os
import threading

from repro.common.errors import DataError
from repro.engine.memory import EvictionIndex
from repro.engine.metrics import MetricsRegistry

DEFAULT_CAPACITY_BYTES = 64 * 1024 * 1024
CAPACITY_ENV_VAR = "REPRO_BUFFER_POOL_BYTES"


def default_capacity_bytes():
    """Pool capacity from ``REPRO_BUFFER_POOL_BYTES`` (64 MiB default)."""
    raw = os.environ.get(CAPACITY_ENV_VAR)
    if raw is None:
        return DEFAULT_CAPACITY_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise DataError(
            "%s must be an integer byte count, got %r"
            % (CAPACITY_ENV_VAR, raw)
        ) from None
    if value < 1:
        raise DataError(
            "%s must be positive, got %d" % (CAPACITY_ENV_VAR, value)
        )
    return value


class BlockFrame:
    """One resident decoded block: column arrays plus pin bookkeeping."""

    __slots__ = ("key", "columns", "measure", "size_bytes", "pin_count")

    def __init__(self, key, columns, measure, size_bytes):
        self.key = key
        self.columns = columns
        self.measure = measure
        self.size_bytes = size_bytes
        self.pin_count = 0


class PinnedBlock:
    """Context manager handed out by :meth:`BufferPool.pin`.

    While the ``with`` body runs, the underlying frame cannot be
    evicted; leaving the body releases the pin.  The exposed arrays are
    read-only and remain valid after unpinning only until eviction —
    callers keeping rows copy them (boolean indexing already does).
    """

    __slots__ = ("_pool", "_frame")

    def __init__(self, pool, frame):
        self._pool = pool
        self._frame = frame

    @property
    def columns(self):
        return self._frame.columns

    @property
    def measure(self):
        return self._frame.measure

    @property
    def size_bytes(self):
        return self._frame.size_bytes

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._pool.unpin(self._frame)


class BufferPool:
    """Bounded LRU pool of decoded colfile blocks with pin/unpin.

    ``capacity_bytes`` defaults to ``REPRO_BUFFER_POOL_BYTES`` (64 MiB
    when unset).  All state mutates under one lock; a fault reads the
    block while holding it, so concurrent scans of the same block decode
    it exactly once.
    """

    def __init__(self, capacity_bytes=None, metrics=None):
        if capacity_bytes is None:
            capacity_bytes = default_capacity_bytes()
        self.capacity_bytes = int(capacity_bytes)
        if self.capacity_bytes < 1:
            raise DataError(
                "buffer pool capacity must be positive, got %d"
                % self.capacity_bytes
            )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._frames = {}
        self._index = EvictionIndex()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Pin / unpin
    # ------------------------------------------------------------------

    def pin(self, handle, block_index):
        """Pin block ``block_index`` of ``handle``; returns a context
        manager exposing ``columns`` and ``measure``."""
        key = (handle.path, handle.file_key, int(block_index))
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None:
                frame.pin_count += 1
                self._index.touch(key)
                self.hits += 1
                self.metrics.increment("buffer_pool_hits")
                return PinnedBlock(self, frame)
            self.misses += 1
            self.metrics.increment("buffer_pool_misses")
            columns, measure = handle.read_block(block_index)
            frame = BlockFrame(key, columns, measure,
                               handle.block_nbytes(block_index))
            frame.pin_count = 1
            self._frames[key] = frame
            self._index.add(key, frame.size_bytes)
            self._shrink_to_capacity()
            return PinnedBlock(self, frame)

    def unpin(self, frame):
        with self._lock:
            if frame.pin_count <= 0:
                raise DataError(
                    "unpin of block %r that is not pinned" % (frame.key,)
                )
            frame.pin_count -= 1
            if self._index.total_bytes > self.capacity_bytes:
                self._shrink_to_capacity()

    def _shrink_to_capacity(self):
        """Evict cold unpinned frames until within capacity (or stuck)."""
        while self._index.total_bytes > self.capacity_bytes:
            pinned = {key for key, frame in self._frames.items()
                      if frame.pin_count > 0}
            victim = self._index.pop_coldest(pinned)
            if victim is None:
                # Everything resident is pinned: overcommit until the
                # callers release their pins.
                return
            key, _size = victim
            del self._frames[key]
            self.evictions += 1
            self.metrics.increment("buffer_pool_evictions")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_bytes(self):
        return self._index.total_bytes

    def contains(self, handle, block_index):
        return (handle.path, handle.file_key, int(block_index)) in self._frames

    def invalidate_file(self, path):
        """Drop every unpinned resident block of ``path``."""
        with self._lock:
            victims = [key for key, frame in self._frames.items()
                       if key[0] == str(path) and frame.pin_count == 0]
            for key in victims:
                self._index.pop(key)
                del self._frames[key]

    def stats(self):
        """Counter snapshot for service ``stats()`` / debugging."""
        with self._lock:
            accesses = self.hits + self.misses
            return {
                "capacity_bytes": self.capacity_bytes,
                "resident_bytes": self._index.total_bytes,
                "resident_blocks": len(self._frames),
                "pinned_blocks": sum(
                    1 for frame in self._frames.values() if frame.pin_count
                ),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / accesses) if accesses else 0.0,
            }

    def __repr__(self):
        return "BufferPool(%d/%d bytes, %d blocks)" % (
            self.resident_bytes, self.capacity_bytes, len(self._frames)
        )
