"""Dataset schema: dimension attributes and a numeric measure attribute."""

from repro.common.errors import DataError


class Schema:
    """Describes a SIRUM input relation.

    Parameters
    ----------
    dimensions:
        Ordered names of the categorical dimension attributes
        ``A_1 .. A_d`` (thesis §2.1).
    measure:
        Name of the numeric measure attribute ``m``.
    """

    def __init__(self, dimensions, measure):
        dimensions = list(dimensions)
        if not dimensions:
            raise DataError("a schema needs at least one dimension attribute")
        if len(set(dimensions)) != len(dimensions):
            raise DataError("dimension attribute names must be unique")
        if measure in dimensions:
            raise DataError(
                "measure attribute %r clashes with a dimension attribute" % measure
            )
        if not isinstance(measure, str) or not measure:
            raise DataError("measure attribute name must be a non-empty string")
        for name in dimensions:
            if not isinstance(name, str) or not name:
                raise DataError("dimension names must be non-empty strings")
        self.dimensions = tuple(dimensions)
        self.measure = measure

    @property
    def arity(self):
        """Number of dimension attributes, ``d`` in the thesis."""
        return len(self.dimensions)

    def dimension_index(self, name):
        """Position of dimension ``name``; raises DataError if unknown."""
        try:
            return self.dimensions.index(name)
        except ValueError:
            raise DataError("unknown dimension attribute %r" % name) from None

    def project(self, names):
        """Return a new schema keeping only the listed dimensions."""
        names = list(names)
        for name in names:
            self.dimension_index(name)
        return Schema(names, self.measure)

    def __eq__(self, other):
        return (
            isinstance(other, Schema)
            and self.dimensions == other.dimensions
            and self.measure == other.measure
        )

    def __hash__(self):
        return hash((self.dimensions, self.measure))

    def __repr__(self):
        return "Schema(dimensions=%r, measure=%r)" % (
            list(self.dimensions),
            self.measure,
        )
