"""Dictionary encoding of categorical attribute values.

Rules and tuples are manipulated as tuples of small integers rather than
raw strings: comparisons during LCA computation and rule matching are the
hot path of SIRUM (thesis §3.3), and integer codes make them cheap and
make numpy vectorization possible.  Code 0..n-1 maps to the attribute's
active domain in first-seen order; wildcards are represented *outside*
the encoder by :data:`repro.core.rule.WILDCARD`.
"""

from repro.common.errors import DataError


class DictionaryEncoder:
    """Bidirectional value <-> code mapping for one attribute."""

    def __init__(self):
        self._code_of = {}
        self._value_of = []

    def __len__(self):
        return len(self._value_of)

    def encode(self, value):
        """Return the code for ``value``, assigning a new one if unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._value_of)
            self._code_of[value] = code
            self._value_of.append(value)
        return code

    def encode_existing(self, value):
        """Return the code for ``value``; raise DataError if unseen."""
        try:
            return self._code_of[value]
        except KeyError:
            raise DataError("value %r not present in encoder" % (value,)) from None

    def decode(self, code):
        """Return the original value for ``code``."""
        try:
            return self._value_of[code]
        except IndexError:
            raise DataError("code %r out of range" % (code,)) from None

    def values(self):
        """Active domain in code order."""
        return list(self._value_of)

    def __contains__(self, value):
        return value in self._code_of
