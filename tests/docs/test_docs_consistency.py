"""Docs-consistency checks: the reference tables in ``docs/`` must
match the code.

These tests scrape the *code* for its tuning surface — environment
variables, wire error codes, protocol ops, config fields, CLI flags —
and assert each item appears in the corresponding docs file.  They are
deliberately one-directional: docs may say *more* than the code
(prose, examples), but the code may not grow a knob the docs miss.
"""

import inspect
import re
from pathlib import Path

import pytest

from repro.common.errors import WIRE_ERROR_CODES
from repro.net import protocol as net_protocol
from repro.net import worker as net_worker

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS = REPO_ROOT / "docs"
SRC = REPO_ROOT / "src" / "repro"


def _doc(name):
    path = DOCS / name
    assert path.is_file(), "missing docs file: %s" % path
    return path.read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def architecture_md():
    return _doc("ARCHITECTURE.md")


@pytest.fixture(scope="module")
def protocol_md():
    return _doc("protocol.md")


@pytest.fixture(scope="module")
def operations_md():
    return _doc("operations.md")


class TestEnvVars:
    def _env_vars_in_source(self):
        names = set()
        for path in SRC.rglob("*.py"):
            names.update(re.findall(r"REPRO_[A-Z_]+", path.read_text()))
        return names

    def test_every_env_var_documented(self, operations_md):
        missing = sorted(
            name for name in self._env_vars_in_source()
            if name not in operations_md
        )
        assert not missing, (
            "env vars used in src/ but absent from docs/operations.md: %s"
            % ", ".join(missing)
        )

    def test_no_phantom_env_vars(self, operations_md):
        in_source = self._env_vars_in_source()
        phantoms = sorted(
            name for name in set(re.findall(r"REPRO_[A-Z_]+", operations_md))
            if name not in in_source
        )
        assert not phantoms, (
            "docs/operations.md documents env vars no code reads: %s"
            % ", ".join(phantoms)
        )


class TestWireErrorCodes:
    def test_every_code_documented(self, protocol_md):
        # Each registry entry must appear as a table row carrying both
        # the class name and its exact code on one line.
        for cls, code in WIRE_ERROR_CODES.items():
            pattern = r"`%s`\s*\|\s*%d\b" % (re.escape(cls.__name__), code)
            assert re.search(pattern, protocol_md), (
                "docs/protocol.md is missing the error-code row for "
                "%s = %d" % (cls.__name__, code)
            )

    def test_no_stale_code_rows(self, protocol_md):
        documented = {
            (name, int(code))
            for name, code in re.findall(r"`(\w+Error)`\s*\|\s*(\d+)", protocol_md)
        }
        actual = {
            (cls.__name__, code) for cls, code in WIRE_ERROR_CODES.items()
        }
        stale = documented - actual
        assert not stale, (
            "docs/protocol.md documents error codes not in "
            "WIRE_ERROR_CODES: %s" % sorted(stale)
        )


class TestProtocolOps:
    def test_front_door_ops_documented(self, protocol_md):
        from repro.net.server import ServiceServer

        ops = ServiceServer._OPS
        assert isinstance(ops, dict) and ops, "could not locate front-door _OPS"
        for op in ops:
            assert "`%s`" % op in protocol_md, (
                "front-door op %r missing from docs/protocol.md" % op
            )

    def test_worker_ops_documented(self, protocol_md):
        # The ops dict is built in __init__, so scrape the op names
        # statically instead of standing up a listening worker.
        source = inspect.getsource(net_worker)
        ops = set(re.findall(r'"(\w+)":\s*self\._op_\w+', source))
        assert ops >= {"worker_hello", "heartbeat", "worker_attach", "run_stage"}, (
            "worker op table in source looks wrong: %s" % sorted(ops)
        )
        for op in sorted(ops):
            assert "`%s`" % op in protocol_md, (
                "worker op %r missing from docs/protocol.md" % op
            )

    def test_driver_ops_documented(self, protocol_md):
        assert net_worker.DRIVER_OPS, "DRIVER_OPS is empty"
        for op in net_worker.DRIVER_OPS:
            assert "`%s`" % op in protocol_md, (
                "driver op %r missing from docs/protocol.md" % op
            )

    def test_frame_constants_documented(self, protocol_md):
        assert "PROTOCOL_VERSION = %d" % net_protocol.PROTOCOL_VERSION in protocol_md
        kinds = {
            "KIND_REQUEST": net_protocol.KIND_REQUEST,
            "KIND_RESPONSE": net_protocol.KIND_RESPONSE,
            "KIND_ERROR": net_protocol.KIND_ERROR,
            "KIND_EVENT": net_protocol.KIND_EVENT,
            "KIND_GOAWAY": net_protocol.KIND_GOAWAY,
        }
        for name, value in kinds.items():
            pattern = r"`%s`\s*\|\s*%d\b" % (name, value)
            assert re.search(pattern, protocol_md), (
                "docs/protocol.md is missing the frame-kind row for "
                "%s = %d" % (name, value)
            )
        mib = net_protocol.DEFAULT_MAX_FRAME_BYTES // (1024 * 1024)
        assert "%d MiB" % mib in protocol_md
        worker_mib = net_worker.WORKER_MAX_FRAME_BYTES // (1024 * 1024)
        assert "%d MiB" % worker_mib in protocol_md


class TestServiceConfig:
    def test_every_field_documented(self, operations_md):
        from repro.service.service import ServiceConfig

        for name in inspect.signature(ServiceConfig.__init__).parameters:
            if name == "self":
                continue
            assert "`%s`" % name in operations_md, (
                "ServiceConfig field %r missing from docs/operations.md"
                % name
            )


class TestCliFlags:
    def test_every_long_option_documented(self, operations_md):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        missing = []
        for command, sub in subparsers.choices.items():
            assert "`%s`" % command in operations_md or command in operations_md, (
                "CLI command %r missing from docs/operations.md" % command
            )
            for action in sub._actions:
                for opt in action.option_strings:
                    if opt.startswith("--") and opt != "--help":
                        if "`%s`" % opt not in operations_md:
                            missing.append("%s %s" % (command, opt))
        assert not missing, (
            "CLI flags missing from docs/operations.md: %s"
            % ", ".join(sorted(set(missing)))
        )


class TestArchitecture:
    def test_layer_modules_exist(self, architecture_md):
        # Every `repro.x.y` module the architecture doc names must be
        # importable from src/ — docs must not outlive refactors.
        def resolves(parts):
            # A reference may name a module, a package, or an
            # attribute of one (`repro.engine.cluster.make_default_cluster`)
            # — some prefix must be a real module file.
            while parts:
                path = SRC.joinpath(*parts)
                if path.with_suffix(".py").is_file() or (
                    path.is_dir() and (path / "__init__.py").is_file()
                ):
                    return True
                parts = parts[:-1]
            return False

        for dotted in set(re.findall(r"`(repro(?:\.\w+)+)`", architecture_md)):
            assert resolves(dotted.split(".")[1:]), (
                "docs/ARCHITECTURE.md names missing module %s" % dotted
            )

    def test_stats_sections_exist(self, architecture_md):
        # The walkthrough's stats() pointers must be real sections.
        from repro.service import RuleMiningService, ServiceConfig

        service = RuleMiningService(ServiceConfig(num_workers=1))
        try:
            stats = service.stats()
        finally:
            service.close()
        for section in re.findall(r'stats\(\)\["(\w+)"\]', architecture_md):
            assert section in stats, (
                "docs/ARCHITECTURE.md references stats()[%r], which "
                "service.stats() does not return" % section
            )

    def test_readme_links_docs(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for name in ("docs/ARCHITECTURE.md", "docs/protocol.md",
                     "docs/operations.md"):
            assert name in readme, "README.md does not link %s" % name
