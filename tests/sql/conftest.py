"""Fixtures for the SQL engine tests."""

import pytest

from repro.sql import SqlEngine

#: (Day, Origin, Destination, Delay) — thesis Table 1.1.
FLIGHT_ROWS = [
    ("Fri", "SF", "London", 20.0),
    ("Fri", "London", "LA", 16.0),
    ("Sun", "Tokyo", "Frankfurt", 10.0),
    ("Sun", "Chicago", "London", 15.0),
    ("Sat", "Beijing", "Frankfurt", 13.0),
    ("Sat", "Frankfurt", "London", 19.0),
    ("Tue", "Chicago", "LA", 5.0),
    ("Wed", "London", "Chicago", 6.0),
    ("Thu", "SF", "Frankfurt", 15.0),
    ("Mon", "Beijing", "SF", 4.0),
    ("Mon", "SF", "London", 7.0),
    ("Mon", "SF", "Frankfurt", 5.0),
    ("Mon", "Tokyo", "Beijing", 6.0),
    ("Mon", "Frankfurt", "Tokyo", 4.0),
]


@pytest.fixture(params=["vectorized", "rows"])
def engine(request):
    """An engine with the flight table plus a small lookup relation.

    Parametrized over both execution paths, so every engine-level test
    doubles as a vectorized/row-interpreter parity check.
    """
    eng = SqlEngine(vectorized=request.param == "vectorized")
    eng.catalog.register_rows(
        "flights", ["day", "origin", "dest", "delay"], FLIGHT_ROWS
    )
    eng.catalog.register_rows(
        "regions",
        ["city", "region"],
        [("SF", "US"), ("London", "EU"), ("Frankfurt", "EU"), ("Tokyo", "ASIA")],
    )
    return eng


@pytest.fixture
def empty_engine():
    return SqlEngine()
