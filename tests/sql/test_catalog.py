"""Catalog and relation registration."""

import pytest

from repro.data.generators import flight_table
from repro.sql.catalog import Catalog, Relation
from repro.sql.errors import SqlAnalysisError


class TestRelation:
    def test_rows_are_tuples(self):
        relation = Relation(["a"], [["x"], ["y"]])
        assert relation.rows == [("x",), ("y",)]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SqlAnalysisError):
            Relation(["a", "A"], [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SqlAnalysisError):
            Relation(["a", "b"], [("only-one",)])

    def test_column_index_is_case_insensitive(self):
        relation = Relation(["Day", "Origin"], [])
        assert relation.column_index("day") == 0
        assert relation.column_index("ORIGIN") == 1

    def test_unknown_column_raises(self):
        with pytest.raises(SqlAnalysisError):
            Relation(["a"], []).column_index("b")


class TestCatalog:
    def test_lookup_is_case_insensitive(self):
        catalog = Catalog()
        catalog.register_rows("Flights", ["a"], [("x",)])
        assert len(catalog.lookup("flights")) == 1
        assert "FLIGHTS" in catalog

    def test_register_replaces(self):
        catalog = Catalog()
        catalog.register_rows("t", ["a"], [("x",)])
        catalog.register_rows("t", ["a"], [("x",), ("y",)])
        assert len(catalog.lookup("t")) == 2

    def test_unknown_table_raises(self):
        with pytest.raises(SqlAnalysisError):
            Catalog().lookup("missing")

    def test_drop_is_idempotent(self):
        catalog = Catalog()
        catalog.register_rows("t", ["a"], [])
        catalog.drop("t")
        catalog.drop("t")
        assert "t" not in catalog

    def test_invalid_name_rejected(self):
        with pytest.raises(SqlAnalysisError):
            Catalog().register("", Relation(["a"], []))

    def test_names_sorted(self):
        catalog = Catalog()
        catalog.register_rows("zeta", ["a"], [])
        catalog.register_rows("alpha", ["a"], [])
        assert catalog.names() == ["alpha", "zeta"]


class TestTableRegistration:
    def test_columns_are_dims_then_measure(self):
        catalog = Catalog()
        catalog.register_table("f", flight_table())
        relation = catalog.lookup("f")
        assert relation.columns == ["Day", "Origin", "Destination", "Delay"]
        assert len(relation) == 14

    def test_values_are_decoded(self):
        catalog = Catalog()
        catalog.register_table("f", flight_table())
        first = catalog.lookup("f").rows[0]
        assert first == ("Fri", "SF", "London", 20.0)

    def test_row_id_column(self):
        catalog = Catalog()
        catalog.register_table("f", flight_table(), row_id_column="flight_id")
        relation = catalog.lookup("f")
        assert relation.columns[0] == "flight_id"
        assert [row[0] for row in relation.rows] == list(range(1, 15))


class TestVersionedLookup:
    def test_lookup_with_version_pairs_relation_and_version(self):
        catalog = Catalog()
        catalog.register_rows("t", ["a"], [("x",)])
        relation, version = catalog.lookup_with_version("t")
        assert relation is catalog.lookup("t")
        assert version == catalog.version == 1

    def test_unknown_table_raises(self):
        with pytest.raises(SqlAnalysisError):
            Catalog().lookup_with_version("nope")

    def test_relation_never_pairs_with_stale_version(self):
        """Hammer register against versioned lookups.

        The pair returned by lookup_with_version must always be
        consistent: the relation registered at (or after) the returned
        version — never a new relation with an old version or vice
        versa.  Relations record their own registration version in a
        single-column name so readers can check the pairing.
        """
        import threading

        catalog = Catalog()
        catalog.register_rows("t", ["v0"], [])
        stop = threading.Event()
        errors = []

        def writer():
            for i in range(1, 300):
                # The registered version of this relation will be
                # catalog.version + 1 at the moment register() commits.
                catalog.register("t", Relation(["v%d" % i], []))
            stop.set()

        def reader():
            while not stop.is_set():
                relation, version = catalog.lookup_with_version("t")
                born = int(relation.columns[0][1:])
                # 'born' is the writer's iteration; the relation was
                # registered at version born + 1 (one initial
                # registration precedes the loop).  A consistent pair
                # must satisfy version >= born + 1, and the version
                # cannot have advanced past the *next* registration
                # without the relation changing too -- re-read and
                # check monotonicity instead of exact equality.
                if version < born + 1:
                    errors.append((born, version))
                    return

        writer_thread = threading.Thread(target=writer, daemon=True)
        readers = [
            threading.Thread(target=reader, daemon=True) for _ in range(4)
        ]
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join(30.0)
        for thread in readers:
            thread.join(30.0)
        assert errors == []
        assert catalog.version == 300
