"""Optimizer tests: rewrites preserve results and improve plan shape."""

import pytest

from repro.sql import SqlEngine
from repro.sql import plan as p
from repro.sql.optimizer import fold_expr, optimize

from tests.sql.conftest import FLIGHT_ROWS


def both_engines():
    """An optimizing and a non-optimizing engine over the same data."""
    engines = []
    for flag in (True, False):
        eng = SqlEngine(optimize_plans=flag)
        eng.catalog.register_rows(
            "flights", ["day", "origin", "dest", "delay"], FLIGHT_ROWS
        )
        engines.append(eng)
    return engines


EQUIVALENCE_QUERIES = [
    "SELECT * FROM flights WHERE delay > 10",
    "SELECT dest FROM flights WHERE origin = 'SF' ORDER BY dest",
    "SELECT day, COUNT(*) c FROM flights GROUP BY day ORDER BY c DESC, day",
    "SELECT dest, SUM(delay) FROM flights WHERE delay > 5 "
    "GROUP BY CUBE(dest) ORDER BY 2 DESC",
    "SELECT 1 + 2 * 3 x FROM flights LIMIT 1",
    "SELECT upper(origin) u FROM flights WHERE delay BETWEEN 5 AND 15 "
    "ORDER BY u LIMIT 4",
    "SELECT DISTINCT day FROM flights WHERE NOT (delay < 6) ORDER BY day",
]


class TestEquivalence:
    @pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
    def test_optimized_matches_unoptimized(self, sql):
        optimized, plain = both_engines()
        assert optimized.query(sql).rows == plain.query(sql).rows


class TestPredicatePushdown:
    def test_filter_folds_into_scan(self, engine):
        root = engine.plan("SELECT dest FROM flights WHERE delay > 10")
        assert isinstance(root, p.Project)
        scan = root.child
        assert isinstance(scan, p.Scan)
        assert scan.predicate is not None

    def test_two_filters_conjoin(self, engine):
        # WHERE a AND b arrives as one predicate; pushing twice through
        # optimize() must not duplicate it (idempotency).
        root = engine.plan(
            "SELECT dest FROM flights WHERE delay > 10 AND origin = 'SF'"
        )
        again = optimize(root)
        assert again.explain() == root.explain()


class TestProjectionPruning:
    def test_scan_narrows_to_used_columns(self, engine):
        root = engine.plan("SELECT dest FROM flights")
        scan = root.child
        assert scan.column_slots == [2]

    def test_predicate_columns_not_materialized(self, engine):
        root = engine.plan("SELECT dest FROM flights WHERE delay > 10")
        scan = root.child
        assert scan.column_slots == [2]  # delay read but not emitted

    def test_star_keeps_all_columns(self, engine):
        root = engine.plan("SELECT * FROM flights")
        assert root.child.column_slots == [0, 1, 2, 3]


class TestConstantFolding:
    def test_arithmetic_folds(self):
        assert fold_expr(("arith", "+", ("const", 1), ("const", 2))) == (
            "const",
            3,
        )

    def test_nested_folding(self):
        expr = (
            "arith",
            "*",
            ("arith", "+", ("const", 1), ("const", 2)),
            ("const", 3),
        )
        assert fold_expr(expr) == ("const", 9)

    def test_column_blocks_folding(self):
        expr = ("arith", "+", ("col", 0), ("const", 2))
        assert fold_expr(expr) == expr

    def test_comparison_folds(self):
        assert fold_expr(("cmp", "<", ("const", 1), ("const", 2))) == (
            "const",
            True,
        )

    def test_division_by_zero_not_folded(self):
        # Folding must not turn a runtime error into a planner crash.
        expr = ("arith", "/", ("const", 1), ("const", 0))
        assert fold_expr(expr) == expr

    def test_case_branches_fold(self):
        expr = (
            "case",
            ((("cmp", "=", ("col", 0), ("const", 1)),
              ("arith", "+", ("const", 1), ("const", 1))),),
            ("const", 0),
        )
        folded = fold_expr(expr)
        assert folded[1][0][1] == ("const", 2)

    def test_folding_inside_plan(self, engine):
        root = engine.plan("SELECT delay + (1 + 1) FROM flights")
        assert root.exprs[0] == ("arith", "+", ("col", 0), ("const", 2))


class TestIdempotency:
    @pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
    def test_optimize_twice_is_stable(self, engine, sql):
        once = engine.plan(sql)
        twice = optimize(once)
        assert twice.explain() == once.explain()


class TestExplain:
    def test_explain_shows_tree(self, engine):
        text = engine.explain(
            "SELECT dest, COUNT(*) FROM flights WHERE delay > 10 "
            "GROUP BY dest ORDER BY 2 DESC LIMIT 3"
        )
        assert "Limit" in text
        assert "Aggregate" in text
        assert "Scan" in text
        # Indentation encodes tree depth.
        assert "  Sort" in text or "Sort" in text
