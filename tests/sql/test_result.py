"""ResultSet container behaviour."""

import pytest

from repro.sql.errors import SqlError
from repro.sql.result import ResultSet


@pytest.fixture
def result():
    return ResultSet(
        ["day", "total"],
        [("Mon", 26.0), ("Fri", 36.0), ("Sat", None)],
    )


class TestAccess:
    def test_len_and_iter(self, result):
        assert len(result) == 3
        assert list(result)[0] == ("Mon", 26.0)

    def test_indexing(self, result):
        assert result[1] == ("Fri", 36.0)

    def test_column_extraction(self, result):
        assert result.column("total") == [26.0, 36.0, None]

    def test_column_is_case_insensitive(self, result):
        assert result.column("DAY") == ["Mon", "Fri", "Sat"]

    def test_unknown_column_raises(self, result):
        with pytest.raises(SqlError):
            result.column("nope")

    def test_to_dicts(self, result):
        assert result.to_dicts()[0] == {"day": "Mon", "total": 26.0}


class TestScalar:
    def test_scalar_on_1x1(self):
        assert ResultSet(["n"], [(14,)]).scalar() == 14

    def test_scalar_rejects_multiple_rows(self, result):
        with pytest.raises(SqlError):
            result.scalar()

    def test_scalar_rejects_multiple_columns(self):
        with pytest.raises(SqlError):
            ResultSet(["a", "b"], [(1, 2)]).scalar()


class TestPretty:
    def test_renders_header_and_rows(self, result):
        text = result.pretty()
        lines = text.splitlines()
        assert "day" in lines[0] and "total" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert "NULL" in text  # None rendering

    def test_max_rows_truncation(self, result):
        text = result.pretty(max_rows=1)
        assert "2 more rows" in text

    def test_float_formatting(self):
        text = ResultSet(["x"], [(0.000123,)]).pretty()
        assert "0.000123" in text

    def test_empty_result(self):
        text = ResultSet(["a"], []).pretty()
        assert "a" in text
