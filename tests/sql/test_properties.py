"""Property-based tests of the SQL engine against Python references."""

from collections import Counter, defaultdict

from hypothesis import given, settings, strategies as st

from repro.sql import SqlEngine

#: Small categorical domains keep group counts interesting.
DAY = st.sampled_from(["Mon", "Tue", "Wed", "Thu", "Fri"])
CITY = st.sampled_from(["SF", "LA", "NY", "London"])
MEASURE = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)

ROWS = st.lists(st.tuples(DAY, CITY, MEASURE), min_size=1, max_size=60)


def engine_for(rows):
    engine = SqlEngine()
    engine.catalog.register_rows("t", ["a", "b", "m"], rows)
    return engine


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_group_by_matches_reference(rows):
    result = engine_for(rows).query(
        "SELECT a, COUNT(*) c, SUM(m) s FROM t GROUP BY a"
    )
    counts = Counter(r[0] for r in rows)
    sums = defaultdict(float)
    for a, _b, m in rows:
        sums[a] += m
    assert len(result) == len(counts)
    for a, count, total in result.rows:
        assert count == counts[a]
        assert abs(total - sums[a]) < 1e-6


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_where_matches_reference(rows):
    result = engine_for(rows).query("SELECT m FROM t WHERE m > 0")
    expected = [m for _a, _b, m in rows if m > 0]
    assert sorted(result.column("m")) == sorted(expected)


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_cube_level_sums_are_consistent(rows):
    """Every grouping set of a CUBE partitions the data: each level's
    SUM(m) totals must agree with the grand total (thesis §2.5 — each
    lattice level covers all tuples)."""
    result = engine_for(rows).query(
        "SELECT a, b, SUM(m) s, GROUPING(a) ga, GROUPING(b) gb "
        "FROM t GROUP BY CUBE(a, b)"
    )
    grand_total = sum(m for _a, _b, m in rows)
    level_totals = defaultdict(float)
    for _a, _b, s, ga, gb in result.rows:
        level_totals[(ga, gb)] += s
    assert len(level_totals) == 4
    for total in level_totals.values():
        assert abs(total - grand_total) < 1e-6


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_cube_finest_level_row_count(rows):
    result = engine_for(rows).query(
        "SELECT a, b, COUNT(*) c, GROUPING(a) ga, GROUPING(b) gb "
        "FROM t GROUP BY CUBE(a, b)"
    )
    finest = [r for r in result.rows if r[3] == 0 and r[4] == 0]
    assert len(finest) == len({(a, b) for a, b, _m in rows})


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_order_by_sorts(rows):
    values = engine_for(rows).query("SELECT m FROM t ORDER BY m").column("m")
    assert values == sorted(values)


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_distinct_removes_duplicates_only(rows):
    values = engine_for(rows).query("SELECT DISTINCT a FROM t").column("a")
    assert sorted(values) == sorted({a for a, _b, _m in rows})


@given(ROWS, st.integers(min_value=0, max_value=10),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=60, deadline=None)
def test_limit_offset_slices(rows, limit, offset):
    engine = engine_for(rows)
    everything = engine.query("SELECT a, b, m FROM t ORDER BY m, a, b").rows
    window = engine.query(
        "SELECT a, b, m FROM t ORDER BY m, a, b LIMIT %d OFFSET %d"
        % (limit, offset)
    ).rows
    assert window == everything[offset:offset + limit]


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_avg_equals_sum_over_count(rows):
    engine = engine_for(rows)
    result = engine.query(
        "SELECT b, AVG(m) a, SUM(m) s, COUNT(*) c FROM t GROUP BY b"
    )
    for _b, avg, total, count in result.rows:
        assert abs(avg - total / count) < 1e-9


@given(ROWS)
@settings(max_examples=40, deadline=None)
def test_optimizer_preserves_results(rows):
    sql = (
        "SELECT a, SUM(m) s FROM t WHERE m > -50 "
        "GROUP BY a HAVING COUNT(*) >= 1 ORDER BY s DESC, a"
    )
    plain = SqlEngine(optimize_plans=False)
    plain.catalog.register_rows("t", ["a", "b", "m"], rows)
    assert engine_for(rows).query(sql).rows == plain.query(sql).rows


@given(ROWS)
@settings(max_examples=40, deadline=None)
def test_join_matches_reference(rows):
    engine = engine_for(rows)
    engine.catalog.register_rows(
        "names", ["city", "tag"], [("SF", 1), ("LA", 2), ("NY", 3)]
    )
    result = engine.query(
        "SELECT t.b, names.tag FROM t JOIN names ON t.b = names.city"
    )
    lookup = {"SF": 1, "LA": 2, "NY": 3}
    expected = sorted(
        (b, lookup[b]) for _a, b, _m in rows if b in lookup
    )
    assert sorted(result.rows) == expected
