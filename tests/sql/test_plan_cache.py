"""Statement-level plan cache and the prepare()/execute_prepared() API."""

import pytest

from repro.sql import SqlEngine
from repro.sql.errors import SqlAnalysisError


@pytest.fixture
def engine():
    eng = SqlEngine()
    eng.catalog.register_rows(
        "t", ["a", "m"], [("x", 1.0), ("y", 2.0), ("x", 3.0)]
    )
    return eng


class TestPlanCache:
    def test_repeated_query_hits_cache(self, engine):
        sql = "SELECT a, SUM(m) FROM t GROUP BY a ORDER BY a"
        first = engine.query(sql)
        assert engine.plan_cache_info["misses"] == 1
        second = engine.query(sql)
        assert engine.plan_cache_info["hits"] == 1
        assert second.rows == first.rows

    def test_distinct_statements_cached_separately(self, engine):
        engine.query("SELECT COUNT(*) FROM t")
        engine.query("SELECT SUM(m) FROM t")
        assert engine.plan_cache_info["size"] == 2
        assert engine.plan_cache_info["misses"] == 2

    def test_register_table_invalidates(self, engine):
        sql = "SELECT COUNT(*) FROM t"
        assert engine.query(sql).scalar() == 3
        engine.catalog.register_rows("t", ["a", "m"], [("z", 9.0)])
        # The cached plan holds the old relation; the version bump must
        # force a replan so the new data is visible.
        assert engine.query(sql).scalar() == 1
        assert engine.plan_cache_info["misses"] == 2

    def test_unrelated_registration_also_invalidates(self, engine):
        sql = "SELECT COUNT(*) FROM t"
        engine.query(sql)
        engine.catalog.register_rows("other", ["x"], [(1,)])
        engine.query(sql)
        # Coarse-grained (catalog-wide) invalidation: correct, if
        # conservative — a replan, never a stale result.
        assert engine.plan_cache_info["hits"] == 0

    def test_drop_invalidates(self, engine):
        engine.query("SELECT COUNT(*) FROM t")
        engine.catalog.drop("t")
        with pytest.raises(SqlAnalysisError):
            engine.query("SELECT COUNT(*) FROM t")

    def test_lru_eviction(self):
        eng = SqlEngine(plan_cache_size=2)
        eng.catalog.register_rows("t", ["a"], [(1,)])
        eng.query("SELECT a FROM t")
        eng.query("SELECT a + 1 FROM t")
        eng.query("SELECT a + 2 FROM t")
        assert eng.plan_cache_info["size"] == 2
        eng.query("SELECT a FROM t")  # evicted: misses again
        assert eng.plan_cache_info["misses"] == 4

    def test_cache_disabled(self):
        eng = SqlEngine(plan_cache_size=0)
        eng.catalog.register_rows("t", ["a"], [(1,)])
        eng.query("SELECT a FROM t")
        eng.query("SELECT a FROM t")
        assert eng.plan_cache_info["size"] == 0
        assert eng.plan_cache_info["misses"] == 2

    def test_clear_plan_cache(self, engine):
        engine.query("SELECT COUNT(*) FROM t")
        engine.clear_plan_cache()
        assert engine.plan_cache_info["size"] == 0
        engine.query("SELECT COUNT(*) FROM t")
        assert engine.plan_cache_info["misses"] == 2


class TestPreparedStatements:
    def test_execute_repeatedly(self, engine):
        statement = engine.prepare("SELECT SUM(m) FROM t")
        assert statement.execute().scalar() == 6.0
        assert statement.execute().scalar() == 6.0
        # Planned once at prepare(); executions replan nothing.
        assert engine.plan_cache_info["misses"] == 1

    def test_invalid_sql_raises_at_prepare(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.prepare("SELECT nope FROM t")

    def test_replans_after_reregistration(self, engine):
        statement = engine.prepare("SELECT COUNT(*) FROM t")
        assert statement.execute().scalar() == 3
        engine.catalog.register_rows("t", ["a", "m"], [("z", 9.0)])
        assert statement.execute().scalar() == 1

    def test_execute_prepared_entry_point(self, engine):
        statement = engine.prepare("SELECT COUNT(*) FROM t")
        assert engine.execute_prepared(statement).scalar() == 3

    def test_explain_matches_engine_explain(self, engine):
        sql = "SELECT a FROM t WHERE m > 1"
        assert engine.prepare(sql).explain() == engine.explain(sql)

    def test_repr_mentions_sql(self, engine):
        assert "SELECT" in repr(engine.prepare("SELECT COUNT(*) FROM t"))


class TestThreadSafety:
    def test_shared_engine_serves_concurrent_queries(self):
        """One engine, many threads: results correct, cache uncorrupted."""
        import threading

        engine = SqlEngine(plan_cache_size=4)
        engine.catalog.register_rows(
            "t", ["a", "m"],
            [("x", 1.0), ("y", 2.0), ("x", 3.0), ("z", 4.0)],
        )
        queries = [
            ("SELECT SUM(m) FROM t", 10.0),
            ("SELECT COUNT(*) FROM t", 4),
            ("SELECT SUM(m) FROM t WHERE a = 'x'", 4.0),
            ("SELECT MAX(m) FROM t", 4.0),
            ("SELECT MIN(m) FROM t", 1.0),  # 5 queries > capacity 4
        ]
        errors = []

        def worker(offset):
            try:
                for i in range(40):
                    sql, expected = queries[(offset + i) % len(queries)]
                    assert engine.query(sql).scalar() == expected
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(j,), daemon=True)
            for j in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert errors == []
        info = engine.plan_cache_info
        assert info["size"] <= 4
        assert info["hits"] + info["misses"] == 8 * 40

    def test_shared_prepared_statement_across_threads(self):
        import threading

        engine = SqlEngine()
        engine.catalog.register_rows("t", ["m"], [(1.0,), (2.0,)])
        statement = engine.prepare("SELECT SUM(m) FROM t")
        errors = []

        def worker():
            try:
                for _ in range(50):
                    assert statement.execute().scalar() == 3.0
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, daemon=True) for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert errors == []
