"""End-to-end query execution tests against the flight example."""

import math

import pytest

from repro.sql import SqlEngine
from repro.sql.errors import SqlAnalysisError, SqlExecutionError


class TestProjection:
    def test_select_star(self, engine):
        result = engine.query("SELECT * FROM flights")
        assert result.columns == ["day", "origin", "dest", "delay"]
        assert len(result) == 14

    def test_select_columns_in_order(self, engine):
        result = engine.query("SELECT dest, day FROM flights LIMIT 1")
        assert result.rows == [("London", "Fri")]

    def test_arithmetic_in_select(self, engine):
        result = engine.query("SELECT delay * 2 d2 FROM flights LIMIT 1")
        assert result.rows == [(40.0,)]

    def test_alias_names_output(self, engine):
        result = engine.query("SELECT delay AS minutes FROM flights LIMIT 1")
        assert result.columns == ["minutes"]

    def test_default_function_column_name(self, engine):
        result = engine.query("SELECT abs(delay) FROM flights LIMIT 1")
        assert result.columns == ["abs"]

    def test_constant_expression(self, engine):
        assert engine.query("SELECT 1 + 1 x FROM flights LIMIT 1").scalar() == 2


class TestWhere:
    def test_equality_filter(self, engine):
        result = engine.query("SELECT * FROM flights WHERE origin = 'SF'")
        assert len(result) == 4

    def test_and_or(self, engine):
        result = engine.query(
            "SELECT * FROM flights WHERE origin = 'SF' OR origin = 'Tokyo'"
        )
        assert len(result) == 6

    def test_between(self, engine):
        result = engine.query(
            "SELECT * FROM flights WHERE delay BETWEEN 15 AND 20"
        )
        assert len(result) == 5

    def test_in_list(self, engine):
        result = engine.query(
            "SELECT * FROM flights WHERE day IN ('Sat', 'Sun')"
        )
        assert len(result) == 4

    def test_not_in(self, engine):
        result = engine.query("SELECT * FROM flights WHERE day NOT IN ('Mon')")
        assert len(result) == 9

    def test_like(self, engine):
        result = engine.query("SELECT * FROM flights WHERE dest LIKE 'L%'")
        assert len(result) == 6  # London x4 + LA x2

    def test_comparison_chain_with_not(self, engine):
        result = engine.query("SELECT * FROM flights WHERE NOT delay > 10")
        assert len(result) == 8


class TestAggregates:
    def test_global_count(self, engine):
        assert engine.query("SELECT COUNT(*) FROM flights").scalar() == 14

    def test_global_avg_matches_thesis(self, engine):
        avg = engine.query("SELECT AVG(delay) FROM flights").scalar()
        assert avg == pytest.approx(10.357, abs=1e-3)

    def test_group_by_destination(self, engine):
        result = engine.query(
            "SELECT dest, AVG(delay) a, COUNT(*) c FROM flights "
            "GROUP BY dest ORDER BY c DESC, dest LIMIT 2"
        )
        # London-bound flights: the thesis's rule 2 aggregate.
        assert result.rows[0] == ("Frankfurt", 10.75, 4)
        assert result.rows[1] == ("London", 15.25, 4)

    def test_having(self, engine):
        result = engine.query(
            "SELECT dest FROM flights GROUP BY dest HAVING COUNT(*) >= 4 "
            "ORDER BY dest"
        )
        assert result.column("dest") == ["Frankfurt", "London"]

    def test_min_max_sum(self, engine):
        row = engine.query(
            "SELECT MIN(delay), MAX(delay), SUM(delay) FROM flights"
        ).rows[0]
        assert row == (4.0, 20.0, 145.0)

    def test_count_distinct(self, engine):
        assert (
            engine.query("SELECT COUNT(DISTINCT day) FROM flights").scalar() == 7
        )

    def test_stddev_variance(self, engine):
        variance = engine.query("SELECT VARIANCE(delay) FROM flights").scalar()
        stddev = engine.query("SELECT STDDEV(delay) FROM flights").scalar()
        assert stddev == pytest.approx(math.sqrt(variance))

    def test_aggregate_over_empty_input_yields_one_row(self, engine):
        result = engine.query(
            "SELECT COUNT(*), SUM(delay) FROM flights WHERE delay > 1000"
        )
        assert result.rows == [(0, None)]

    def test_group_by_empty_input_yields_no_rows(self, engine):
        result = engine.query(
            "SELECT day, COUNT(*) FROM flights WHERE delay > 1000 GROUP BY day"
        )
        assert result.rows == []

    def test_ungrouped_column_rejected(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.query("SELECT day, COUNT(*) FROM flights")

    def test_nested_aggregate_rejected(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.query("SELECT SUM(COUNT(*)) FROM flights GROUP BY day")


class TestCube:
    def test_cube_row_count(self, engine):
        # CUBE(day, dest): sum over all 4 grouping sets of their group
        # counts: 14 distinct (day,dest) pairs + 7 days + 7 dests + 1 total.
        result = engine.query(
            "SELECT day, dest, COUNT(*) FROM flights GROUP BY CUBE(day, dest)"
        )
        assert len(result) == 14 + 7 + 7 + 1

    def test_cube_total_row(self, engine):
        result = engine.query(
            "SELECT day, dest, SUM(delay) s FROM flights "
            "GROUP BY CUBE(day, dest)"
        )
        totals = [r for r in result.rows if r[0] is None and r[1] is None]
        assert totals == [(None, None, 145.0)]

    def test_each_grouping_set_sums_to_total(self, engine):
        result = engine.query(
            "SELECT day, dest, SUM(delay) s, GROUPING(day) gd, "
            "GROUPING(dest) ge FROM flights GROUP BY CUBE(day, dest)"
        )
        by_bits = {}
        for day, dest, total, gd, ge in result.rows:
            by_bits.setdefault((gd, ge), 0.0)
            by_bits[(gd, ge)] += total
        assert all(
            total == pytest.approx(145.0) for total in by_bits.values()
        )

    def test_grouping_bit_distinguishes_wildcard(self, engine):
        result = engine.query(
            "SELECT day, GROUPING(day) g, COUNT(*) FROM flights "
            "GROUP BY ROLLUP(day)"
        )
        bits = {row[0]: row[1] for row in result.rows}
        assert bits[None] == 1
        assert bits["Mon"] == 0

    def test_rollup_levels(self, engine):
        result = engine.query(
            "SELECT day, dest, COUNT(*) FROM flights GROUP BY ROLLUP(day, dest)"
        )
        assert len(result) == 14 + 7 + 1

    def test_grouping_sets_explicit(self, engine):
        result = engine.query(
            "SELECT day, dest, COUNT(*) FROM flights "
            "GROUP BY GROUPING SETS ((day), (dest))"
        )
        assert len(result) == 7 + 7

    def test_grouping_nested_in_case(self, engine):
        # The standard trick for labelling the total row.
        result = engine.query(
            "SELECT CASE WHEN GROUPING(day) = 1 THEN 'ALL' ELSE day END "
            "label, COUNT(*) c FROM flights GROUP BY ROLLUP(day) "
            "ORDER BY c DESC LIMIT 1"
        )
        assert result.rows == [("ALL", 14)]

    def test_grouping_in_having(self, engine):
        result = engine.query(
            "SELECT day, COUNT(*) FROM flights GROUP BY ROLLUP(day) "
            "HAVING GROUPING(day) = 0"
        )
        assert len(result) == 7  # the total row is filtered out

    def test_grouping_in_order_by(self, engine):
        result = engine.query(
            "SELECT day, COUNT(*) c FROM flights GROUP BY ROLLUP(day) "
            "ORDER BY GROUPING(day) DESC, day LIMIT 1"
        )
        assert result.rows == [(None, 14)]


class TestJoins:
    def test_hash_join(self, engine):
        result = engine.query(
            "SELECT f.dest, r.region FROM flights f "
            "JOIN regions r ON f.dest = r.city ORDER BY f.dest LIMIT 1"
        )
        assert result.rows[0] == ("Frankfurt", "EU")

    def test_join_group_by(self, engine):
        result = engine.query(
            "SELECT r.region, COUNT(*) c FROM flights f "
            "JOIN regions r ON f.dest = r.city GROUP BY r.region "
            "ORDER BY c DESC"
        )
        assert result.rows[0] == ("EU", 8)

    def test_unmatched_rows_are_dropped(self, engine):
        # LA, Chicago and Beijing destinations have no region entry;
        # 10 of the 14 rows survive the inner join.
        count = engine.query(
            "SELECT COUNT(*) FROM flights f JOIN regions r ON f.dest = r.city"
        ).scalar()
        assert count == 10

    def test_cross_join_cardinality(self, engine):
        count = engine.query(
            "SELECT COUNT(*) FROM flights CROSS JOIN regions"
        ).scalar()
        assert count == 14 * 4

    def test_self_join_lca_style(self, engine):
        # The LCA join of §3.1.1: pair every tuple with every sample
        # tuple; here the 'sample' is flights itself filtered to Monday.
        count = engine.query(
            "SELECT COUNT(*) FROM flights a CROSS JOIN flights b"
        ).scalar()
        assert count == 196

    def test_join_with_residual_condition(self, engine):
        result = engine.query(
            "SELECT COUNT(*) FROM flights f JOIN regions r "
            "ON f.dest = r.city AND f.delay > 10"
        )
        assert result.scalar() == 5


class TestOrderLimitDistinct:
    def test_order_by_desc(self, engine):
        delays = engine.query(
            "SELECT delay FROM flights ORDER BY delay DESC LIMIT 3"
        ).column("delay")
        assert delays == [20.0, 19.0, 16.0]

    def test_order_by_ordinal(self, engine):
        rows = engine.query(
            "SELECT day, delay FROM flights ORDER BY 2 DESC LIMIT 1"
        ).rows
        assert rows == [("Fri", 20.0)]

    def test_order_by_hidden_key(self, engine):
        # ORDER BY a column not in the select list.
        days = engine.query(
            "SELECT day FROM flights ORDER BY delay DESC LIMIT 2"
        ).column("day")
        assert days == ["Fri", "Sat"]

    def test_order_is_stable_for_ties(self, engine):
        rows = engine.query(
            "SELECT day, origin FROM flights WHERE day = 'Mon' ORDER BY day"
        ).rows
        origins = [r[1] for r in rows]
        assert origins == ["Beijing", "SF", "SF", "Tokyo", "Frankfurt"]

    def test_limit_offset(self, engine):
        rows = engine.query(
            "SELECT delay FROM flights ORDER BY delay LIMIT 2 OFFSET 3"
        ).column("delay")
        assert rows == [5.0, 6.0]

    def test_distinct(self, engine):
        days = engine.query(
            "SELECT DISTINCT day FROM flights ORDER BY day"
        ).column("day")
        assert days == sorted(set(days))
        assert len(days) == 7

    def test_distinct_after_order_preserves_order(self, engine):
        days = engine.query(
            "SELECT DISTINCT day FROM flights ORDER BY day DESC"
        ).column("day")
        assert days == sorted(days, reverse=True)


class TestNullSemantics:
    @pytest.fixture
    def nullable(self):
        eng = SqlEngine()
        eng.catalog.register_rows(
            "t", ["a", "x"], [("p", 1.0), ("q", None), (None, 3.0)]
        )
        return eng

    def test_comparison_with_null_filters_row(self, nullable):
        assert len(nullable.query("SELECT * FROM t WHERE x > 0")) == 2

    def test_is_null(self, nullable):
        assert len(nullable.query("SELECT * FROM t WHERE x IS NULL")) == 1

    def test_is_not_null(self, nullable):
        assert len(nullable.query("SELECT * FROM t WHERE a IS NOT NULL")) == 2

    def test_aggregates_skip_nulls(self, nullable):
        row = nullable.query("SELECT COUNT(x), SUM(x), AVG(x) FROM t").rows[0]
        assert row == (2, 4.0, 2.0)

    def test_count_star_counts_null_rows(self, nullable):
        assert nullable.query("SELECT COUNT(*) FROM t").scalar() == 3

    def test_null_group_key(self, nullable):
        result = nullable.query(
            "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a"
        )
        assert (None, 1) in result.rows

    def test_nulls_sort_last_ascending(self, nullable):
        values = nullable.query("SELECT a FROM t ORDER BY a").column("a")
        assert values[-1] is None

    def test_coalesce(self, nullable):
        values = nullable.query(
            "SELECT COALESCE(x, 0.0) v FROM t ORDER BY v"
        ).column("v")
        assert values == [0.0, 1.0, 3.0]

    def test_null_never_joins(self, nullable):
        count = nullable.query(
            "SELECT COUNT(*) FROM t l JOIN t r ON l.a = r.a"
        ).scalar()
        assert count == 2  # only p and q match themselves


class TestRuntimeErrors:
    def test_division_by_zero(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.query("SELECT delay / 0 FROM flights")

    def test_ln_of_nonpositive(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.query("SELECT LN(delay - 100) FROM flights")

    def test_unknown_table(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.query("SELECT * FROM missing")

    def test_unknown_column(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.query("SELECT nope FROM flights")

    def test_ambiguous_column(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.query(
                "SELECT day FROM flights a CROSS JOIN flights b"
            )

    def test_unknown_function(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.query("SELECT FROBNICATE(delay) FROM flights")


class TestScalarFunctions:
    def test_case_expression(self, engine):
        result = engine.query(
            "SELECT CASE WHEN delay >= 15 THEN 'late' ELSE 'ok' END s, "
            "COUNT(*) c FROM flights "
            "GROUP BY CASE WHEN delay >= 15 THEN 'late' ELSE 'ok' END "
            "ORDER BY s"
        )
        assert result.rows == [("late", 5), ("ok", 9)]

    def test_string_functions(self, engine):
        row = engine.query(
            "SELECT UPPER(dest), LOWER(dest), LENGTH(dest) "
            "FROM flights LIMIT 1"
        ).rows[0]
        assert row == ("LONDON", "london", 6)

    def test_math_functions(self, engine):
        row = engine.query(
            "SELECT ABS(-2), SQRT(16.0), POWER(2, 10), FLOOR(2.7), CEIL(2.1) "
            "FROM flights LIMIT 1"
        ).rows[0]
        assert row == (2, 4.0, 1024.0, 2.0, 3.0)

    def test_cast(self, engine):
        row = engine.query(
            "SELECT CAST(delay AS INTEGER) i, CAST(delay AS TEXT) s "
            "FROM flights LIMIT 1"
        ).rows[0]
        assert row == (20, "20.0")

    def test_concat_operator(self, engine):
        value = engine.query(
            "SELECT origin || '->' || dest r FROM flights LIMIT 1"
        ).scalar()
        assert value == "SF->London"

    def test_in_with_column_expressions(self, engine):
        # Non-literal IN items are evaluated per row.
        count = engine.query(
            "SELECT COUNT(*) FROM flights WHERE dest IN (origin, 'London')"
        ).scalar()
        assert count == 4  # the London-bound flights; no self-loops exist

    def test_like_underscore_wildcard(self, engine):
        days = engine.query(
            "SELECT DISTINCT day FROM flights WHERE day LIKE '_on' ORDER BY day"
        ).column("day")
        assert days == ["Mon"]

    def test_not_like(self, engine):
        count = engine.query(
            "SELECT COUNT(*) FROM flights WHERE day NOT LIKE 'M%'"
        ).scalar()
        assert count == 9

    def test_nullif_and_greatest(self, engine):
        row = engine.query(
            "SELECT NULLIF(day, 'Fri') n, GREATEST(delay, 18.0) g, "
            "LEAST(delay, 18.0) l FROM flights LIMIT 1"
        ).rows[0]
        assert row == (None, 20.0, 18.0)

    def test_modulo(self, engine):
        value = engine.query(
            "SELECT CAST(delay AS INTEGER) % 7 FROM flights LIMIT 1"
        ).scalar()
        assert value == 6
