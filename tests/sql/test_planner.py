"""Planner: plan shapes, name resolution and analysis errors."""

import pytest

from repro.sql import SqlEngine
from repro.sql import plan as p
from repro.sql.errors import SqlAnalysisError

from tests.sql.conftest import FLIGHT_ROWS


@pytest.fixture
def engine():
    eng = SqlEngine(optimize_plans=False)  # raw planner output
    eng.catalog.register_rows(
        "flights", ["day", "origin", "dest", "delay"], FLIGHT_ROWS
    )
    eng.catalog.register_rows("regions", ["city", "region"], [("SF", "US")])
    return eng


class TestPlanShapes:
    def test_simple_select_is_project_over_scan(self, engine):
        root = engine.plan("SELECT day FROM flights")
        assert isinstance(root, p.Project)
        assert isinstance(root.child, p.Scan)

    def test_where_adds_filter(self, engine):
        root = engine.plan("SELECT day FROM flights WHERE delay > 1")
        assert isinstance(root.child, p.Filter)

    def test_group_by_adds_aggregate(self, engine):
        root = engine.plan("SELECT day, COUNT(*) FROM flights GROUP BY day")
        assert isinstance(root, p.Project)
        assert isinstance(root.child, p.Aggregate)
        assert root.child.grouping_sets == [(0,)]

    def test_cube_grouping_sets_count(self, engine):
        root = engine.plan(
            "SELECT day, dest, COUNT(*) FROM flights GROUP BY CUBE(day, dest)"
        )
        assert len(root.child.grouping_sets) == 4

    def test_having_filters_above_aggregate(self, engine):
        root = engine.plan(
            "SELECT day FROM flights GROUP BY day HAVING COUNT(*) > 1"
        )
        assert isinstance(root, p.Project)
        assert isinstance(root.child, p.Filter)
        assert isinstance(root.child.child, p.Aggregate)

    def test_equi_join_becomes_hash_join(self, engine):
        root = engine.plan(
            "SELECT * FROM flights f JOIN regions r ON f.dest = r.city"
        )
        join = root.child
        assert isinstance(join, p.HashJoin)
        assert join.left_keys == [("col", 2)]
        assert join.right_keys == [("col", 0)]

    def test_reversed_equi_condition_still_hash_join(self, engine):
        root = engine.plan(
            "SELECT * FROM flights f JOIN regions r ON r.city = f.dest"
        )
        assert isinstance(root.child, p.HashJoin)

    def test_non_equi_join_becomes_cross_with_condition(self, engine):
        root = engine.plan(
            "SELECT * FROM flights f JOIN regions r ON f.delay > 10"
        )
        join = root.child
        assert isinstance(join, p.CrossJoin)
        assert join.condition is not None

    def test_mixed_condition_keeps_residual(self, engine):
        root = engine.plan(
            "SELECT * FROM flights f JOIN regions r "
            "ON f.dest = r.city AND f.delay > 10"
        )
        join = root.child
        assert isinstance(join, p.HashJoin)
        assert join.residual is not None

    def test_limit_at_root(self, engine):
        root = engine.plan("SELECT day FROM flights LIMIT 3")
        assert isinstance(root, p.Limit)
        assert root.limit == 3

    def test_distinct_node(self, engine):
        root = engine.plan("SELECT DISTINCT day FROM flights")
        assert isinstance(root, p.Distinct)

    def test_order_by_select_alias_reuses_slot(self, engine):
        root = engine.plan("SELECT delay * 2 AS d2 FROM flights ORDER BY d2")
        assert isinstance(root, p.Sort)
        assert root.keys == [("col", 0)]

    def test_hidden_sort_key_widens_then_trims(self, engine):
        root = engine.plan("SELECT day FROM flights ORDER BY delay")
        # Outermost Project trims back to the one visible column.
        assert isinstance(root, p.Project)
        assert root.names == ["day"]
        assert isinstance(root.child, p.Sort)

    def test_aggregate_dedupes_identical_calls(self, engine):
        root = engine.plan(
            "SELECT SUM(delay), SUM(delay) + 1 FROM flights"
        )
        assert len(root.child.agg_specs) == 1


class TestAnalysisErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT nope FROM flights",
            "SELECT flights.nope FROM flights",
            "SELECT day FROM flights a CROSS JOIN flights b",  # ambiguous
            "SELECT day, COUNT(*) FROM flights",  # ungrouped column
            "SELECT SUM(MAX(delay)) FROM flights",  # nested aggregate
            "SELECT GROUPING(day) FROM flights",  # GROUPING without GROUP BY
            "SELECT day FROM flights WHERE SUM(delay) > 1",  # agg in WHERE
            "SELECT MAX(*) FROM flights",  # star only valid for COUNT
            "SELECT COUNT() FROM flights",
            "SELECT SUM(delay, delay) FROM flights",
            "SELECT * FROM missing_table",
            "SELECT GROUPING(delay) FROM flights GROUP BY day",
        ],
    )
    def test_rejected(self, engine, sql):
        with pytest.raises(SqlAnalysisError):
            engine.plan(sql)

    def test_qualified_reference_disambiguates(self, engine):
        root = engine.plan(
            "SELECT a.day FROM flights a CROSS JOIN flights b"
        )
        assert isinstance(root, p.Project)

    def test_star_expansion_uses_scope_order(self, engine):
        root = engine.plan(
            "SELECT * FROM flights f JOIN regions r ON f.dest = r.city"
        )
        assert root.names == [
            "day", "origin", "dest", "delay", "city", "region",
        ]
