"""Tokenizer tests."""

import pytest

from repro.sql.errors import SqlSyntaxError
from repro.sql.tokens import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_are_case_insensitive(self):
        assert values("select SELECT SeLeCt") == ["SELECT"] * 3

    def test_identifiers_keep_their_spelling(self):
        assert values("Origin dest_2") == ["Origin", "dest_2"]

    def test_identifier_with_underscore_prefix(self):
        assert values("_hidden") == ["_hidden"]

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].kind == "EOF"
        assert tokenize("SELECT")[-1].kind == "EOF"

    def test_whitespace_and_newlines_are_skipped(self):
        assert values("a\n\t b") == ["a", "b"]

    def test_line_comments_are_skipped(self):
        assert values("a -- comment here\n b") == ["a", "b"]

    def test_comment_at_end_without_newline(self):
        assert values("a -- trailing") == ["a"]


class TestLiterals:
    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind == "NUMBER"
        assert token.value == 42
        assert isinstance(token.value, int)

    def test_float_literal(self):
        assert tokenize("3.25")[0].value == 3.25

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].value == 0.5

    def test_scientific_notation(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025
        assert tokenize("1E+2")[0].value == 100.0

    def test_number_followed_by_identifier(self):
        assert values("1e") == [1, "e"]

    def test_string_literal(self):
        token = tokenize("'hello'")[0]
        assert token.kind == "STRING"
        assert token.value == "hello"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")


class TestOperators:
    def test_multi_char_operators(self):
        assert values("<= >= <> != ||") == ["<=", ">=", "<>", "!=", "||"]

    def test_single_char_operators(self):
        assert values("( ) , + - * / % . ; < > =") == list("(),+-*/%.;<>=")

    def test_operator_adjacent_to_identifier(self):
        assert values("a<=b") == ["a", "<=", "b"]


class TestQuotedIdentifiers:
    def test_double_quoted_identifier(self):
        token = tokenize('"Event Base Code"')[0]
        assert token.kind == "IDENT"
        assert token.value == "Event Base Code"

    def test_quoted_keyword_becomes_identifier(self):
        assert tokenize('"select"')[0].kind == "IDENT"

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')

    def test_empty_quoted_identifier_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('""')


class TestErrors:
    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.position == 2

    def test_full_statement_tokenizes(self):
        text = (
            "SELECT day, SUM(delay) FROM flights "
            "WHERE origin = 'SF' GROUP BY CUBE(day) LIMIT 3"
        )
        assert kinds(text)[-1] == "EOF"
