"""Parser tests: AST structure and syntax errors."""

import pytest

from repro.sql import ast
from repro.sql.errors import SqlSyntaxError
from repro.sql.parser import parse


class TestSelectList:
    def test_star(self):
        select = parse("SELECT * FROM t")
        assert select.items == (ast.SelectItem(ast.Star()),)

    def test_qualified_star(self):
        select = parse("SELECT t.* FROM t")
        assert select.items[0].expr == ast.Star(table="t")

    def test_column_with_as_alias(self):
        select = parse("SELECT a AS x FROM t")
        assert select.items[0] == ast.SelectItem(ast.ColumnRef("a"), "x")

    def test_column_with_bare_alias(self):
        select = parse("SELECT a x FROM t")
        assert select.items[0].alias == "x"

    def test_multiple_items(self):
        select = parse("SELECT a, b, c FROM t")
        assert len(select.items) == 3

    def test_qualified_column(self):
        select = parse("SELECT t.a FROM t")
        assert select.items[0].expr == ast.ColumnRef("a", table="t")

    def test_distinct_flag(self):
        assert parse("SELECT DISTINCT a FROM t").distinct
        assert not parse("SELECT ALL a FROM t").distinct


class TestExpressions:
    def expr(self, text):
        return parse("SELECT %s FROM t" % text).items[0].expr

    def test_precedence_mul_before_add(self):
        assert self.expr("1 + 2 * 3") == ast.BinaryOp(
            "+", ast.Literal(1), ast.BinaryOp("*", ast.Literal(2), ast.Literal(3))
        )

    def test_parentheses_override_precedence(self):
        assert self.expr("(1 + 2) * 3") == ast.BinaryOp(
            "*", ast.BinaryOp("+", ast.Literal(1), ast.Literal(2)), ast.Literal(3)
        )

    def test_and_binds_tighter_than_or(self):
        tree = self.expr("a OR b AND c")
        assert isinstance(tree, ast.BinaryOp) and tree.op == "OR"
        assert tree.right.op == "AND"

    def test_not_precedence(self):
        tree = self.expr("NOT a AND b")
        assert tree.op == "AND"
        assert isinstance(tree.left, ast.UnaryOp)

    def test_unary_minus(self):
        assert self.expr("-a") == ast.UnaryOp("-", ast.ColumnRef("a"))

    def test_unary_plus_is_dropped(self):
        assert self.expr("+5") == ast.Literal(5)

    def test_comparison_normalizes_bang_equals(self):
        assert self.expr("a != 1").op == "<>"

    def test_is_null(self):
        assert self.expr("a IS NULL") == ast.IsNull(ast.ColumnRef("a"))

    def test_is_not_null(self):
        assert self.expr("a IS NOT NULL").negated

    def test_in_list(self):
        tree = self.expr("a IN (1, 2)")
        assert tree == ast.InList(
            ast.ColumnRef("a"), (ast.Literal(1), ast.Literal(2))
        )

    def test_not_in(self):
        assert self.expr("a NOT IN (1)").negated

    def test_between(self):
        tree = self.expr("a BETWEEN 1 AND 5")
        assert tree == ast.Between(
            ast.ColumnRef("a"), ast.Literal(1), ast.Literal(5)
        )

    def test_not_between(self):
        assert self.expr("a NOT BETWEEN 1 AND 5").negated

    def test_like_is_a_function_call(self):
        tree = self.expr("a LIKE 'x%'")
        assert tree == ast.FunctionCall(
            "LIKE", [ast.ColumnRef("a"), ast.Literal("x%")]
        )

    def test_case_when(self):
        tree = self.expr("CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END")
        assert isinstance(tree, ast.Case)
        assert len(tree.whens) == 1
        assert tree.default == ast.Literal("lo")

    def test_case_without_else(self):
        assert self.expr("CASE WHEN a THEN 1 END").default is None

    def test_cast(self):
        assert self.expr("CAST(a AS INTEGER)") == ast.Cast(
            ast.ColumnRef("a"), "INTEGER"
        )

    def test_function_call(self):
        assert self.expr("LN(a)") == ast.FunctionCall("LN", [ast.ColumnRef("a")])

    def test_count_star(self):
        assert self.expr("COUNT(*)") == ast.FunctionCall("COUNT", [ast.Star()])

    def test_count_distinct(self):
        tree = self.expr("COUNT(DISTINCT a)")
        assert tree.distinct

    def test_string_concat(self):
        assert self.expr("a || b").op == "||"

    def test_null_true_false_literals(self):
        assert self.expr("NULL") == ast.Literal(None)
        assert self.expr("TRUE") == ast.Literal(True)
        assert self.expr("FALSE") == ast.Literal(False)


class TestClauses:
    def test_where(self):
        select = parse("SELECT a FROM t WHERE a > 1")
        assert isinstance(select.where, ast.BinaryOp)

    def test_group_by_plain(self):
        group = parse("SELECT a FROM t GROUP BY a, b").group
        assert group.mode == "plain"
        assert len(group.exprs) == 2

    def test_group_by_cube(self):
        group = parse("SELECT a FROM t GROUP BY CUBE(a, b)").group
        assert group.mode == "cube"

    def test_group_by_rollup(self):
        group = parse("SELECT a FROM t GROUP BY ROLLUP(a, b)").group
        assert group.mode == "rollup"

    def test_grouping_sets(self):
        group = parse(
            "SELECT a FROM t GROUP BY GROUPING SETS ((a), (b), ())"
        ).group
        assert group.mode == "sets"
        assert len(group.sets) == 3
        assert group.sets[2] == ()

    def test_cube_grouping_sets_expansion(self):
        group = parse("SELECT a FROM t GROUP BY CUBE(a, b)").group
        sets = group.grouping_sets()
        assert len(sets) == 4
        assert (0, 1) in sets and () in sets

    def test_rollup_expansion_order(self):
        group = parse("SELECT a FROM t GROUP BY ROLLUP(a, b)").group
        assert group.grouping_sets() == [(0, 1), (0,), ()]

    def test_having(self):
        select = parse("SELECT a FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert select.having is not None

    def test_order_by_directions(self):
        order = parse("SELECT a, b FROM t ORDER BY a DESC, b ASC, a").order
        assert [o.ascending for o in order] == [False, True, True]

    def test_limit_and_offset(self):
        select = parse("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert select.limit == 5
        assert select.offset == 2

    def test_negative_limit_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t LIMIT -1")


class TestJoins:
    def test_inner_join_with_on(self):
        source = parse("SELECT * FROM a JOIN b ON a.x = b.y").source
        assert isinstance(source, ast.Join)
        assert source.condition is not None

    def test_inner_keyword_is_optional(self):
        source = parse("SELECT * FROM a INNER JOIN b ON a.x = b.y").source
        assert isinstance(source, ast.Join)

    def test_cross_join(self):
        source = parse("SELECT * FROM a CROSS JOIN b").source
        assert source.condition is None

    def test_chained_joins_are_left_deep(self):
        source = parse(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        ).source
        assert isinstance(source.left, ast.Join)
        assert source.right == ast.TableRef("c")

    def test_table_alias(self):
        source = parse("SELECT * FROM flights f").source
        assert source.alias == "f"


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP a",
            "SELECT a FROM t trailing garbage",
            "SELECT a FROM t ORDER a",
            "SELECT CASE END FROM t",
            "SELECT CAST(a AS BLOB) FROM t",
            "SELECT a FROM t LIMIT 1.5",
            "SELECT a NOT 5 FROM t",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(SqlSyntaxError):
            parse(text)

    def test_semicolon_terminator_accepted(self):
        assert parse("SELECT a FROM t;") is not None

    def test_error_reports_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse("SELECT a FROM t WHERE ???")
        assert excinfo.value.position is not None
