"""AST -> SQL rendering: round trips through the parser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.render import render, render_expr

ROUND_TRIP_QUERIES = [
    "SELECT * FROM t",
    "SELECT a, b AS x FROM t",
    "SELECT DISTINCT a FROM t",
    "SELECT a FROM t WHERE b > 1 AND c = 'x' OR NOT d < 2",
    "SELECT a FROM t WHERE b IN (1, 2, 3)",
    "SELECT a FROM t WHERE b NOT BETWEEN 1 AND 5",
    "SELECT a FROM t WHERE b IS NOT NULL",
    "SELECT a FROM t WHERE name LIKE 'x%'",
    "SELECT a, COUNT(*), SUM(m) FROM t GROUP BY a HAVING COUNT(*) > 2",
    "SELECT a, b FROM t GROUP BY CUBE (a, b)",
    "SELECT a, b FROM t GROUP BY ROLLUP (a, b)",
    "SELECT a FROM t GROUP BY GROUPING SETS ((a), (b), ())",
    "SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2",
    "SELECT t.a, u.b FROM t JOIN u ON t.k = u.k",
    "SELECT * FROM t CROSS JOIN u",
    "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END FROM t",
    "SELECT CAST(a AS FLOAT) FROM t",
    "SELECT COUNT(DISTINCT a) FROM t",
    "SELECT -a + 2 * (b - 1) FROM t",
    "SELECT a || '-' || b FROM t",
]


class TestRoundTrip:
    @pytest.mark.parametrize("query", ROUND_TRIP_QUERIES)
    def test_parse_render_parse_is_stable(self, query):
        tree = parse(query)
        rendered = render(tree)
        assert parse(rendered) == tree

    def test_rendered_text_is_reasonable(self):
        tree = parse("SELECT a FROM t WHERE b > 1")
        assert render(tree) == "SELECT a FROM t WHERE b > 1"

    def test_keyword_identifiers_are_quoted(self):
        tree = parse('SELECT "select" FROM t')
        rendered = render(tree)
        assert '"select"' in rendered
        assert parse(rendered) == tree

    def test_quoted_identifier_with_space(self):
        tree = parse('SELECT "Event Base Code" FROM t')
        assert parse(render(tree)) == tree


class TestPrecedence:
    def test_left_associative_subtraction(self):
        # (1 - 2) - 3 must not re-render as 1 - (2 - 3).
        tree = parse("SELECT 1 - 2 - 3 FROM t")
        assert parse(render(tree)) == tree

    def test_explicit_right_grouping_preserved(self):
        tree = parse("SELECT 1 - (2 - 3) FROM t")
        rendered = render(tree)
        assert parse(rendered) == tree
        assert "(" in rendered

    def test_or_inside_and_parenthesized(self):
        tree = parse("SELECT a FROM t WHERE (x OR y) AND z")
        assert parse(render(tree)) == tree

    def test_not_binds_tighter_than_and(self):
        tree = parse("SELECT a FROM t WHERE NOT (x AND y)")
        assert parse(render(tree)) == tree


# ----------------------------------------------------------------------
# Property-based: random expression trees round-trip
# ----------------------------------------------------------------------

NAMES = st.sampled_from(["a", "b", "c", "delay"])

LEAVES = st.one_of(
    st.integers(0, 99).map(ast.Literal),
    st.sampled_from(["x", "it's"]).map(ast.Literal),
    st.booleans().map(ast.Literal),
    st.just(ast.Literal(None)),
    NAMES.map(ast.ColumnRef),
)


def _exprs(children):
    binary = st.tuples(
        st.sampled_from(["+", "-", "*", "=", "<", "AND", "OR", "||"]),
        children,
        children,
    ).map(lambda t: ast.BinaryOp(*t))
    unary = st.tuples(st.sampled_from(["NOT", "-"]), children).map(
        lambda t: ast.UnaryOp(*t)
    )
    isnull = st.tuples(children, st.booleans()).map(
        lambda t: ast.IsNull(t[0], negated=t[1])
    )
    between = st.tuples(children, children, children, st.booleans()).map(
        lambda t: ast.Between(*t)
    )
    call = st.tuples(st.sampled_from(["ABS", "LN", "UPPER"]), children).map(
        lambda t: ast.FunctionCall(t[0], [t[1]])
    )
    return st.one_of(binary, unary, isnull, between, call)


EXPRESSIONS = st.recursive(LEAVES, _exprs, max_leaves=12)


@given(EXPRESSIONS)
@settings(max_examples=150, deadline=None)
def test_random_expressions_round_trip(expr):
    select = ast.Select(
        items=[ast.SelectItem(expr)], source=ast.TableRef("t")
    )
    rendered = render(select)
    assert parse(rendered) == select


@given(EXPRESSIONS, EXPRESSIONS)
@settings(max_examples=80, deadline=None)
def test_random_where_clauses_round_trip(select_expr, where_expr):
    select = ast.Select(
        items=[ast.SelectItem(select_expr)],
        source=ast.TableRef("t"),
        where=where_expr,
    )
    assert parse(render(select)) == select
