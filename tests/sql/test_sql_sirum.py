"""SQL-expressed SIRUM: parity with the operator-based miner."""

import pytest

from repro.common.errors import ConfigError
from repro.core.miner import mine
from repro.data.generators import flight_table, susy_table
from repro.platforms.sql_sirum import SqlSirum


@pytest.fixture(scope="module")
def flights():
    return flight_table()


@pytest.fixture(scope="module")
def sql_result(flights):
    return SqlSirum(k=3).mine(flights)


class TestFlightExample:
    def test_reproduces_thesis_table_1_2(self, flights, sql_result):
        decoded = [mr.decode(flights) for mr in sql_result.rule_set]
        assert decoded[0] == ("*", "*", "*")
        assert decoded[1] == ("*", "*", "London")
        assert decoded[2] == ("Fri", "*", "*")
        assert decoded[3] == ("Sat", "*", "*")

    def test_rule_aggregates_match_thesis(self, sql_result):
        root, london, friday, saturday = list(sql_result.rule_set)
        assert root.count == 14
        assert root.avg_measure == pytest.approx(10.357, abs=1e-3)
        assert london.count == 4
        assert london.avg_measure == pytest.approx(15.25)
        assert friday.count == 2
        assert friday.avg_measure == pytest.approx(18.0)
        assert saturday.avg_measure == pytest.approx(16.0)

    def test_kl_trace_decreases(self, sql_result):
        trace = sql_result.kl_trace
        assert all(b <= a + 1e-12 for a, b in zip(trace, trace[1:]))

    def test_gains_are_positive_and_decreasing_in_spirit(self, sql_result):
        gains = [mr.gain for mr in sql_result.rule_set][1:]
        assert all(g > 0 for g in gains)

    def test_queries_were_issued(self, sql_result):
        # One CUBE query plus one coverage query per mined rule.
        assert sql_result.queries_issued == 2 * 3


class TestParityWithOperatorMiner:
    def test_same_rules_as_exhaustive_naive(self, flights, sql_result):
        core = mine(flights, k=3, variant="naive", exhaustive=True)
        assert [mr.rule for mr in sql_result.rule_set] == [
            mr.rule for mr in core.rule_set
        ]

    def test_same_kl_trace(self, flights, sql_result):
        core = mine(flights, k=3, variant="naive", exhaustive=True)
        for sql_kl, core_kl in zip(sql_result.kl_trace, core.kl_trace):
            assert sql_kl == pytest.approx(core_kl, rel=1e-9)

    def test_parity_on_binary_measure(self):
        table = susy_table(num_rows=120, num_dimensions=4, seed=3)
        sql_result = SqlSirum(k=2).mine(table)
        core = mine(table, k=2, variant="naive", exhaustive=True)
        assert sql_result.final_kl == pytest.approx(core.final_kl, rel=1e-6)


class TestConfig:
    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigError):
            SqlSirum(k=0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ConfigError):
            SqlSirum(epsilon=0)

    def test_k_larger_than_informative_rules_stops_early(self, flights):
        # With a huge k the miner stops once no candidate has positive
        # gain; it must not loop forever or crash.
        result = SqlSirum(k=40, epsilon=1e-6).mine(flights)
        assert len(result.rule_set) <= 41

    def test_metered_run_charges_cluster(self, flights):
        from repro.core.miner import make_default_cluster

        cluster = make_default_cluster()
        result = SqlSirum(k=2, cluster=cluster).mine(flights)
        assert cluster.metrics.simulated_seconds > 0
        assert result.simulated_seconds > 0
