"""Property-based parity: vectorized executor vs row interpreter.

The row interpreter (``SqlEngine(vectorized=False)``) defines the
engine's semantics; these tests generate tables with NULLs and queries
spanning filters, expressions, aggregation, grouping sets, sorting and
limits, and assert the vectorized path returns *identical* output —
same rows, same order, same column names, same NULL placement, same
aggregate values (accumulation order is preserved, so floats match
exactly).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import SqlEngine
from repro.sql.errors import SqlError

DAY = st.one_of(st.none(), st.sampled_from(["Mon", "Tue", "Wed", "Thu"]))
CITY = st.one_of(st.none(), st.sampled_from(["SF", "LA", "NY"]))
SMALL_INT = st.one_of(st.none(), st.integers(min_value=-50, max_value=50))
MEASURE = st.one_of(
    st.none(),
    st.floats(min_value=-100, max_value=100,
              allow_nan=False, allow_infinity=False),
)

ROWS = st.lists(
    st.tuples(DAY, CITY, SMALL_INT, MEASURE), min_size=0, max_size=50
)

QUERIES = [
    "SELECT * FROM t",
    "SELECT a, b FROM t WHERE a = 'Mon'",
    "SELECT a, k, m FROM t WHERE k > 0 AND m > 0",
    "SELECT a FROM t WHERE k > 10 OR m < -10",
    "SELECT a FROM t WHERE NOT k > 0",
    "SELECT a FROM t WHERE a IS NULL",
    "SELECT a, m FROM t WHERE m IS NOT NULL AND a IN ('Mon', 'Tue')",
    "SELECT a FROM t WHERE k BETWEEN -5 AND 5",
    "SELECT a FROM t WHERE k NOT BETWEEN 0 AND 20",
    "SELECT a FROM t WHERE b IN (a, 'SF')",
    "SELECT k + 1, k - 1, k * 2, m / 2.0, k % 7 FROM t WHERE k <> 0",
    "SELECT a || '-' || b FROM t",
    "SELECT CASE WHEN m > 0 THEN 'pos' WHEN m < 0 THEN 'neg' ELSE 'zero' END FROM t",
    "SELECT CASE WHEN k <> 0 THEN m / k ELSE 0 END FROM t",
    "SELECT CAST(m AS INTEGER), CAST(k AS FLOAT), CAST(k AS TEXT) FROM t",
    "SELECT COALESCE(m, 0.0), NULLIF(a, 'Mon'), ABS(k) FROM t",
    "SELECT DISTINCT a FROM t",
    "SELECT DISTINCT a, b FROM t",
    "SELECT a, m FROM t ORDER BY m",
    "SELECT a, m FROM t ORDER BY m DESC, a",
    "SELECT a, k FROM t ORDER BY a, k DESC LIMIT 7",
    "SELECT a FROM t ORDER BY m LIMIT 5 OFFSET 3",
    "SELECT COUNT(*), COUNT(m), COUNT(a) FROM t",
    "SELECT SUM(m), AVG(m), MIN(m), MAX(m) FROM t",
    "SELECT SUM(k), MIN(k), MAX(k) FROM t",
    "SELECT COUNT(DISTINCT a), COUNT(DISTINCT k) FROM t",
    "SELECT VARIANCE(m), STDDEV(m) FROM t",
    "SELECT a, COUNT(*), SUM(m) FROM t GROUP BY a",
    "SELECT a, b, COUNT(*), AVG(m) FROM t GROUP BY a, b",
    "SELECT a, SUM(m) s FROM t GROUP BY a HAVING COUNT(*) > 2",
    "SELECT a, SUM(m) s FROM t GROUP BY a ORDER BY s DESC, a",
    "SELECT a, b, SUM(m), GROUPING(a), GROUPING(b) FROM t GROUP BY CUBE(a, b)",
    "SELECT a, b, COUNT(*) FROM t GROUP BY ROLLUP(a, b)",
    "SELECT a, b, COUNT(*) FROM t GROUP BY GROUPING SETS ((a), (b))",
    "SELECT a, MIN(k), MAX(k), SUM(k) FROM t GROUP BY a ORDER BY a",
    "SELECT l.a, r.b FROM t l JOIN t r ON l.a = r.a ORDER BY l.a, r.b LIMIT 10",
    "SELECT COUNT(*) FROM t l JOIN t r ON l.k = r.k AND l.m > r.m",
]


def _engines(rows):
    columns = ["a", "b", "k", "m"]
    row_engine = SqlEngine(vectorized=False)
    vec_engine = SqlEngine(vectorized=True)
    row_engine.catalog.register_rows("t", columns, rows)
    vec_engine.catalog.register_rows("t", columns, rows)
    return row_engine, vec_engine


def _outcome(engine, sql):
    try:
        result = engine.query(sql)
        return ("ok", result.columns, result.rows)
    except SqlError as exc:
        return ("error", type(exc).__name__, None)


@pytest.mark.parametrize("sql", QUERIES)
@given(rows=ROWS)
@settings(max_examples=25, deadline=None)
def test_vectorized_matches_row_interpreter(sql, rows):
    row_engine, vec_engine = _engines(rows)
    expected = _outcome(row_engine, sql)
    actual = _outcome(vec_engine, sql)
    assert actual == expected


@given(rows=ROWS, data=st.data())
@settings(max_examples=50, deadline=None)
def test_random_filter_projection_parity(rows, data):
    """Random filter/projection combinations beyond the fixed list."""
    comparisons = ["=", "<>", "<", "<=", ">", ">="]
    column = data.draw(st.sampled_from(["k", "m"]))
    op = data.draw(st.sampled_from(comparisons))
    threshold = data.draw(st.integers(min_value=-20, max_value=20))
    connective = data.draw(st.sampled_from(["AND", "OR"]))
    sql = (
        "SELECT a, k, m FROM t WHERE %s %s %d %s a IS NOT NULL "
        "ORDER BY k, m LIMIT 20" % (column, op, threshold, connective)
    )
    row_engine, vec_engine = _engines(rows)
    assert _outcome(vec_engine, sql) == _outcome(row_engine, sql)


class TestEdgeCaseParity:
    """Regressions for divergences found by review: each case once
    produced different results (or errors) on the two paths."""

    def _pair(self, columns, rows):
        row_engine = SqlEngine(vectorized=False)
        vec_engine = SqlEngine(vectorized=True)
        for engine in (row_engine, vec_engine):
            engine.catalog.register_rows("t", columns, rows)
        return row_engine, vec_engine

    def test_nan_min_max_skipped_like_reference(self):
        row_e, vec_e = self._pair(["m"], [(1.0,), (float("nan"),), (0.5,)])
        sql = "SELECT MIN(m), MAX(m) FROM t"
        assert vec_e.query(sql).rows == row_e.query(sql).rows == [(0.5, 1.0)]

    def test_between_short_circuits_upper_bound(self):
        # 10 <= 5 is False, so the incomparable upper bound is never
        # evaluated — both paths must return empty, not raise.
        row_e, vec_e = self._pair(["a", "b", "c"], [(5, 10, "x")])
        sql = "SELECT a FROM t WHERE a BETWEEN b AND c"
        assert vec_e.query(sql).rows == row_e.query(sql).rows == []

    def test_in_list_items_evaluated_lazily(self):
        # The first item matches, so 1/c (division by zero) must never
        # be evaluated for that row on either path.
        row_e, vec_e = self._pair(["a", "b", "c"], [(1, 1, 0)])
        sql = "SELECT a FROM t WHERE a IN (b, 1 / c)"
        assert vec_e.query(sql).rows == row_e.query(sql).rows == [(1,)]

    def test_big_int_arithmetic_is_exact(self):
        row_e, vec_e = self._pair(["a"], [(2**62,), (2**62,), (2**62,)])
        for sql in (
            "SELECT SUM(a) FROM t",
            "SELECT a + a FROM t",
            "SELECT a * 3 FROM t",
            "SELECT -a FROM t",
        ):
            assert vec_e.query(sql).rows == row_e.query(sql).rows

    def test_cast_huge_float_to_integer_is_exact(self):
        row_e, vec_e = self._pair(["m"], [(1e300,)])
        sql = "SELECT CAST(m AS INTEGER) FROM t"
        assert vec_e.query(sql).scalar() == row_e.query(sql).scalar() == int(1e300)

    def test_column_array_is_read_only(self):
        _, vec_e = self._pair(["m"], [(1.0,), (2.0,)])
        array = vec_e.query("SELECT m FROM t").column_array("m")
        with pytest.raises(ValueError):
            array[0] = 99.0
        assert vec_e.query("SELECT SUM(m) FROM t").scalar() == 3.0


@given(rows=ROWS)
@settings(max_examples=25, deadline=None)
def test_prepared_statement_matches_query(rows):
    _, engine = _engines(rows)
    sql = "SELECT a, COUNT(*) c, SUM(m) s FROM t GROUP BY a ORDER BY a"
    statement = engine.prepare(sql)
    direct = engine.query(sql)
    for _ in range(3):
        via_prepared = statement.execute()
        assert via_prepared.rows == direct.rows
        assert via_prepared.columns == direct.columns
