"""Tests for iterative scaling — thesis Algorithm 1 and §2.2 examples."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConvergenceError, DataError
from repro.core.rule import Rule, WILDCARD
from repro.core.scaling import iterative_scale


def _flight_masks(flights, *rule_specs):
    masks = []
    for spec in rule_specs:
        masks.append(Rule(spec).match_mask(flights))
    return masks


class TestWorkedExample:
    """Pins the m-hat columns of thesis Table 1.1 and the §2.2 lambdas."""

    def test_mhat1_root_rule_only(self, flights):
        masks = [np.ones(14, dtype=bool)]
        result = iterative_scale(masks, flights.measure, epsilon=1e-8)
        # mhat1 column: every tuple gets the global mean 10.357 (10.4).
        np.testing.assert_allclose(result.estimates, 145.0 / 14.0)
        assert result.lambdas[0] == pytest.approx(145.0 / 14.0)

    def test_mhat2_after_london_rule(self, flights):
        london = flights.encoder("Destination").encode_existing("London")
        masks = _flight_masks(
            flights,
            (WILDCARD, WILDCARD, WILDCARD),
            (WILDCARD, WILDCARD, london),
        )
        result = iterative_scale(masks, flights.measure, epsilon=1e-8)
        # mhat2 column: 15.25 (printed 15.3) for London-bound flights,
        # 8.4 elsewhere; lambdas converge to 8.4 and ~1.8 (§2.2).
        london_rows = [0, 3, 5, 10]
        np.testing.assert_allclose(result.estimates[london_rows], 15.25)
        others = [i for i in range(14) if i not in london_rows]
        np.testing.assert_allclose(result.estimates[others], 8.4)
        assert result.lambdas[0] == pytest.approx(8.4, abs=1e-6)
        assert result.lambdas[1] == pytest.approx(1.815, abs=1e-3)

    def test_mhat3_after_friday_rule(self, flights):
        london = flights.encoder("Destination").encode_existing("London")
        friday = flights.encoder("Day").encode_existing("Fri")
        masks = _flight_masks(
            flights,
            (WILDCARD, WILDCARD, WILDCARD),
            (WILDCARD, WILDCARD, london),
            (friday, WILDCARD, WILDCARD),
        )
        result = iterative_scale(masks, flights.measure, epsilon=1e-8)
        # mhat3 column of Table 1.1 (printed to one decimal).
        expected = [22.4, 13.6, 7.8, 12.9, 7.8, 12.9, 7.8, 7.8, 7.8, 7.8,
                    12.9, 7.8, 7.8, 7.8]
        np.testing.assert_allclose(result.estimates, expected, atol=0.06)


class TestConvergence:
    def test_constraints_hold_at_fixpoint(self, flights, rng):
        # After convergence every rule's average estimate matches its
        # average measure within epsilon (relative).
        london = flights.encoder("Destination").encode_existing("London")
        masks = _flight_masks(
            flights,
            (WILDCARD, WILDCARD, WILDCARD),
            (WILDCARD, WILDCARD, london),
        )
        epsilon = 1e-4
        result = iterative_scale(masks, flights.measure, epsilon=epsilon)
        for mask in masks:
            target = flights.measure[mask].mean()
            estimate = result.estimates[mask].mean()
            assert abs(target - estimate) / abs(target) <= epsilon

    @given(seed=st.integers(0, 5000), num_rules=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_random_overlapping_rules_converge(self, seed, num_rules):
        rng = np.random.default_rng(seed)
        n = 60
        measure = rng.uniform(0.5, 10.0, size=n)
        masks = [np.ones(n, dtype=bool)]
        for _ in range(num_rules):
            mask = rng.random(n) < rng.uniform(0.2, 0.9)
            if not mask.any():
                mask[rng.integers(0, n)] = True
            masks.append(mask)
        result = iterative_scale(masks, measure, epsilon=1e-3)
        for mask in masks:
            target = measure[mask].mean()
            estimate = result.estimates[mask].mean()
            assert abs(target - estimate) / abs(target) <= 1e-3 + 1e-9

    def test_carrying_lambdas_over_reaches_same_fixpoint(self, flights):
        london = flights.encoder("Destination").encode_existing("London")
        friday = flights.encoder("Day").encode_existing("Fri")
        specs = [
            (WILDCARD, WILDCARD, WILDCARD),
            (WILDCARD, WILDCARD, london),
            (friday, WILDCARD, WILDCARD),
        ]
        masks = _flight_masks(flights, *specs)
        # Incremental: scale two rules, then add the third carrying
        # multipliers over (what SIRUM does, §5.6.2).
        partial = iterative_scale(masks[:2], flights.measure, epsilon=1e-10)
        incremental = iterative_scale(
            masks,
            flights.measure,
            lambdas=partial.lambdas,
            estimates=partial.estimates,
            epsilon=1e-10,
        )
        fresh = iterative_scale(masks, flights.measure, epsilon=1e-10)
        np.testing.assert_allclose(
            incremental.estimates, fresh.estimates, rtol=1e-6
        )

    def test_iteration_budget_enforced(self, flights):
        london = flights.encoder("Destination").encode_existing("London")
        masks = _flight_masks(
            flights,
            (WILDCARD, WILDCARD, WILDCARD),
            (WILDCARD, WILDCARD, london),
        )
        with pytest.raises(ConvergenceError):
            iterative_scale(
                masks, flights.measure, epsilon=1e-12, max_iterations=1
            )

    def test_data_passes_are_two_per_iteration(self, flights):
        masks = [np.ones(14, dtype=bool)]
        result = iterative_scale(masks, flights.measure)
        assert result.data_passes == 2 * result.iterations


class TestValidation:
    def test_empty_dataset_rejected(self):
        with pytest.raises(DataError):
            iterative_scale([np.array([], dtype=bool)], np.array([]))

    def test_empty_rule_list_rejected(self):
        with pytest.raises(DataError):
            iterative_scale([], np.ones(3))

    def test_mask_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            iterative_scale([np.ones(2, dtype=bool)], np.ones(3))

    def test_zero_support_rule_rejected(self):
        with pytest.raises(DataError):
            iterative_scale(
                [np.ones(3, dtype=bool), np.zeros(3, dtype=bool)], np.ones(3)
            )

    def test_non_positive_epsilon_rejected(self):
        with pytest.raises(DataError):
            iterative_scale([np.ones(3, dtype=bool)], np.ones(3), epsilon=0)
