"""Tests for SirumConfig and the Table 4.2 variant presets."""

import pytest

from repro.common.errors import ConfigError
from repro.core.config import SirumConfig, VARIANT_FLAGS, variant_config


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"sample_size": 0},
            {"epsilon": 0},
            {"rules_per_iteration": 0},
            {"top_fraction": 0},
            {"top_fraction": 1.5},
            {"min_gain_ratio": -0.1},
            {"num_column_groups": 1},
            {"sample_data_fraction": 0},
            {"sample_data_fraction": 1.5},
            {"target_kl": -1},
            {"max_rules": 2, "k": 5},
            {"num_partitions": 0},
            {"max_scaling_iterations": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SirumConfig(**kwargs)

    def test_defaults_match_thesis(self):
        config = SirumConfig()
        assert config.k == 10
        assert config.sample_size == 64
        assert config.epsilon == 0.01

    def test_max_rules_defaults_to_4k(self):
        assert SirumConfig(k=7).max_rules == 28


class TestReplace:
    def test_replace_overrides_field(self):
        config = SirumConfig(k=5).replace(use_rct=True)
        assert config.use_rct
        assert config.k == 5

    def test_replace_tracks_default_max_rules(self):
        config = SirumConfig(k=5).replace(k=10)
        assert config.max_rules == 40

    def test_replace_keeps_explicit_max_rules(self):
        config = SirumConfig(k=5, max_rules=99).replace(k=10)
        assert config.max_rules == 99


class TestVariants:
    def test_all_table_4_2_variants_present(self):
        assert set(VARIANT_FLAGS) == {
            "naive",
            "baseline",
            "rct",
            "fastpruning",
            "fastancestor",
            "multirule",
            "optimized",
        }

    def test_naive_disables_broadcast_join(self):
        assert not variant_config("naive").use_broadcast_join

    def test_baseline_is_bj_sirum(self):
        config = variant_config("baseline")
        assert config.use_broadcast_join
        assert not config.use_rct
        assert not config.use_fast_pruning

    def test_optimized_enables_everything(self):
        config = variant_config("optimized")
        assert config.use_rct
        assert config.use_fast_pruning
        assert config.num_column_groups == 2
        assert config.rules_per_iteration == 2

    def test_overrides_apply(self):
        config = variant_config("rct", k=3, sample_size=8)
        assert config.use_rct
        assert config.k == 3
        assert config.sample_size == 8

    def test_unknown_variant(self):
        with pytest.raises(ConfigError):
            variant_config("turbo")
