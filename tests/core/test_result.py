"""Tests for result types (MinedRule, RuleSet, MiningResult views)."""

import pytest

from repro.core.miner import mine
from repro.core.rule import Rule, WILDCARD


@pytest.fixture
def result(flights):
    return mine(flights, k=2, variant="baseline", sample_size=14, seed=1)


class TestRuleSet:
    def test_iteration_and_indexing(self, result):
        assert len(result.rule_set) == 3
        assert result.rule_set[0].rule.is_root()
        assert [m.rule for m in result.rule_set] == result.rule_set.rules()

    def test_to_rows_decodes(self, result, flights):
        rows = result.rule_set.to_rows(flights)
        assert rows[0][:3] == ("*", "*", "*")
        assert rows[0][-1] == 14

    def test_markdown_has_header_and_rows(self, result, flights):
        text = result.rule_set.to_markdown(flights)
        lines = text.splitlines()
        assert "AVG(Delay)" in lines[0]
        assert len(lines) == 2 + len(result.rule_set)


class TestMiningResult:
    def test_find_rule(self, result, flights):
        london = flights.encoder("Destination").encode_existing("London")
        found = result.find_rule((WILDCARD, WILDCARD, london))
        assert found is not None
        assert found.count == 4
        assert result.find_rule((5, 5, 5)) is None

    def test_summary_mentions_rules_and_kl(self, result):
        text = result.summary()
        assert "rules=3" in text
        assert "kl=" in text

    def test_phase_accessors(self, result):
        assert result.rule_generation_seconds >= 0
        assert result.iterative_scaling_seconds >= 0
        assert result.simulated_seconds > 0
        assert result.phase_seconds("no_such_phase") == 0.0

    def test_final_kl_is_last_trace_entry(self, result):
        assert result.final_kl == result.kl_trace[-1]

    def test_estimates_in_original_units(self, result, flights):
        # Root-rule-only constraints force the mean to match.
        assert result.estimates.mean() == pytest.approx(
            flights.measure.mean(), rel=0.05
        )
