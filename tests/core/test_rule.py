"""Unit tests for the rule algebra (thesis §2.1, §2.5)."""

import pytest

from repro.common.errors import DataError
from repro.core.rule import Rule, WILDCARD


class TestConstruction:
    def test_values_are_stored_as_tuple(self):
        rule = Rule([1, WILDCARD, 2])
        assert rule.values == (1, -1, 2)

    def test_rejects_values_below_wildcard(self):
        with pytest.raises(DataError):
            Rule((0, -2))

    def test_is_immutable(self):
        rule = Rule((1, 2))
        with pytest.raises(AttributeError):
            rule.values = (3, 4)

    def test_all_wildcards(self):
        rule = Rule.all_wildcards(4)
        assert rule.values == (-1, -1, -1, -1)
        assert rule.is_root()

    def test_from_tuple_is_fully_bound(self):
        rule = Rule.from_tuple((0, 1, 2))
        assert rule.num_bound == 3

    def test_equality_and_hash(self):
        assert Rule((1, WILDCARD)) == Rule((1, WILDCARD))
        assert hash(Rule((1, WILDCARD))) == hash(Rule((1, WILDCARD)))
        assert Rule((1, WILDCARD)) != Rule((WILDCARD, 1))

    def test_repr_renders_wildcards(self):
        assert repr(Rule((1, WILDCARD))) == "Rule(1, *)"


class TestMatching:
    def test_wildcards_match_anything(self):
        assert Rule.all_wildcards(3).matches((5, 6, 7))

    def test_bound_value_must_equal(self):
        rule = Rule((5, WILDCARD, 7))
        assert rule.matches((5, 0, 7))
        assert not rule.matches((5, 0, 8))

    def test_match_mask_vectorized(self, flights):
        london = flights.encoder("Destination").encode_existing("London")
        rule = Rule((WILDCARD, WILDCARD, london))
        mask = rule.match_mask(flights)
        # Tuples 1, 4, 6, 11 (1-based) arrive in London — thesis §2.1.
        assert list(mask.nonzero()[0]) == [0, 3, 5, 10]

    def test_thesis_tuple_t6_matches_r1_r2_r4_not_r3(self, flights):
        # t6 = (Sat, Frankfurt, London); thesis §2.1 example.
        t6 = flights.encoded_row(5)
        enc_day = flights.encoder("Day")
        enc_dst = flights.encoder("Destination")
        r1 = Rule.all_wildcards(3)
        r2 = Rule((WILDCARD, WILDCARD, enc_dst.encode_existing("London")))
        r3 = Rule((enc_day.encode_existing("Fri"), WILDCARD, WILDCARD))
        r4 = Rule((enc_day.encode_existing("Sat"), WILDCARD, WILDCARD))
        assert r1.matches(t6)
        assert r2.matches(t6)
        assert not r3.matches(t6)
        assert r4.matches(t6)


class TestLca:
    def test_thesis_example_t1_t6(self, flights):
        # lca(t1, t6) = (*, *, London) — thesis §2.1.
        t1 = flights.encoded_row(0)
        t6 = flights.encoded_row(5)
        lca = Rule.lca(t1, t6)
        london = flights.encoder("Destination").encode_existing("London")
        assert lca == Rule((WILDCARD, WILDCARD, london))

    def test_lca_of_identical_tuples_is_the_tuple(self):
        assert Rule.lca((1, 2), (1, 2)) == Rule((1, 2))

    def test_lca_of_disjoint_tuples_is_root(self):
        assert Rule.lca((1, 2), (3, 4)).is_root()

    def test_lca_with_rules_treats_wildcards_as_disagreement(self):
        left = Rule((1, WILDCARD))
        right = Rule((1, 2))
        assert Rule.lca(left, right) == Rule((1, WILDCARD))

    def test_lca_arity_mismatch_raises(self):
        with pytest.raises(DataError):
            Rule.lca((1,), (1, 2))

    def test_lca_is_ancestor_of_both(self, rng):
        for _ in range(50):
            a = tuple(rng.integers(0, 3, size=5))
            b = tuple(rng.integers(0, 3, size=5))
            lca = Rule.lca(a, b)
            assert lca.matches(a)
            assert lca.matches(b)


class TestDisjointness:
    def test_thesis_disjoint_example(self):
        # (Fri, London, LA) vs (*, SF, LA): different Origin -> disjoint.
        left = Rule((0, 1, 2))
        right = Rule((WILDCARD, 3, 2))
        assert left.is_disjoint(right)
        assert not left.overlaps(right)

    def test_thesis_overlapping_example_with_disjoint_supports(self):
        # (Wed, *, *) vs (*, *, London) overlap by definition even when
        # supports are disjoint (thesis §2.1).
        left = Rule((7, WILDCARD, WILDCARD))
        right = Rule((WILDCARD, WILDCARD, 0))
        assert not left.is_disjoint(right)
        assert left.overlaps(right)

    def test_disjointness_is_symmetric(self):
        a = Rule((1, WILDCARD))
        b = Rule((2, WILDCARD))
        assert a.is_disjoint(b) == b.is_disjoint(a)

    def test_root_overlaps_everything(self):
        root = Rule.all_wildcards(2)
        assert not root.is_disjoint(Rule((0, 1)))


class TestAncestors:
    def test_count_is_two_to_the_bound(self):
        rule = Rule((1, 2, WILDCARD))
        assert len(list(rule.ancestors())) == 4

    def test_thesis_figure_2_1_lattice(self, flights):
        # CL((Fri, SF, London)) has 8 elements — thesis Figure 2.1.
        t1 = flights.encoded_row(0)
        lattice = set(Rule.from_tuple(t1).ancestors())
        assert len(lattice) == 8
        assert Rule.all_wildcards(3) in lattice
        assert Rule.from_tuple(t1) in lattice

    def test_exclude_self(self):
        rule = Rule((1, 2))
        ancestors = set(rule.ancestors(include_self=False))
        assert rule not in ancestors
        assert len(ancestors) == 3

    def test_every_ancestor_is_an_ancestor(self):
        rule = Rule((3, 1, 4, WILDCARD))
        for ancestor in rule.ancestors():
            assert ancestor.is_ancestor_of(rule)
            assert rule.is_descendant_of(ancestor)

    def test_parents_have_one_more_wildcard(self):
        rule = Rule((1, 2, WILDCARD))
        parents = list(rule.parents())
        assert len(parents) == 2
        for parent in parents:
            assert parent.num_bound == rule.num_bound - 1

    def test_generalize(self):
        rule = Rule((1, 2, 3))
        assert rule.generalize([0, 2]) == Rule((WILDCARD, 2, WILDCARD))

    def test_root_is_only_its_own_ancestor(self):
        root = Rule.all_wildcards(3)
        assert list(root.ancestors()) == [root]


class TestDecode:
    def test_decode_uses_table_encoders(self, flights):
        london = flights.encoder("Destination").encode_existing("London")
        rule = Rule((WILDCARD, WILDCARD, london))
        assert rule.decode(flights) == ("*", "*", "London")
