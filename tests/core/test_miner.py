"""Tests for the SIRUM mining driver and its variants."""

import numpy as np
import pytest

from repro.core.config import SirumConfig, variant_config
from repro.core.divergence import kl_divergence
from repro.core.miner import Sirum, make_default_cluster, mine
from repro.core.rule import Rule, WILDCARD


class TestWorkedExample:
    """The miner reproduces thesis Tables 1.1/1.2 end to end."""

    def test_flight_rules_match_table_1_2(self, flights):
        # With the full table as the pruning sample the search is
        # effectively exhaustive; rules 2-4 of Table 1.2 come out in
        # the thesis's order.
        result = mine(
            flights, k=3, variant="baseline", sample_size=14, seed=1
        )
        decoded = [mr.decode(flights) for mr in result.rule_set]
        assert decoded[0] == ("*", "*", "*")
        assert decoded[1] == ("*", "*", "London")
        assert set(decoded[2:]) == {("Fri", "*", "*"), ("Sat", "*", "*")}

    def test_rule_aggregates_match_table_1_2(self, flights):
        result = mine(
            flights, k=3, variant="baseline", sample_size=14, seed=1
        )
        root = result.rule_set[0]
        assert root.count == 14
        assert root.avg_measure == pytest.approx(145 / 14)
        london = result.find_rule((WILDCARD, WILDCARD,
                                   flights.encoder("Destination")
                                   .encode_existing("London")))
        assert london is not None
        assert london.count == 4
        assert london.avg_measure == pytest.approx(15.25)

    def test_kl_trace_is_monotone_decreasing(self, flights):
        result = mine(
            flights, k=3, variant="baseline", sample_size=14, seed=1
        )
        diffs = np.diff(result.kl_trace)
        assert np.all(diffs <= 1e-9)

    def test_information_gain_positive(self, flights):
        result = mine(flights, k=2, variant="baseline", sample_size=14)
        assert result.information_gain > 0


class TestVariantEquivalence:
    """All variants mine the same-quality rule sets (§4 optimizations
    are performance-only, except multi-rule which may differ)."""

    @pytest.mark.parametrize("variant", ["naive", "rct", "fastpruning",
                                         "fastancestor"])
    def test_single_rule_variants_match_baseline(self, small_gdelt, variant):
        base = mine(small_gdelt, k=4, variant="baseline",
                    sample_size=32, seed=5)
        other = mine(small_gdelt, k=4, variant=variant,
                     sample_size=32, seed=5)
        assert [m.rule for m in base.rule_set] == \
            [m.rule for m in other.rule_set]
        assert other.final_kl == pytest.approx(base.final_kl, rel=1e-6)

    def test_rct_estimates_match_baseline(self, small_gdelt):
        base = mine(small_gdelt, k=3, variant="baseline",
                    sample_size=16, seed=5)
        rct = mine(small_gdelt, k=3, variant="rct",
                   sample_size=16, seed=5)
        np.testing.assert_allclose(
            rct.estimates, base.estimates, rtol=0.02
        )

    def test_multirule_reaches_comparable_kl(self, small_gdelt):
        base = mine(small_gdelt, k=6, variant="baseline",
                    sample_size=32, seed=5)
        multi = mine(small_gdelt, k=6, variant="multirule",
                     sample_size=32, seed=5)
        # Multi-rule may pick slightly different rules; quality stays
        # in the same ballpark (thesis §4.4/§5.5 discussion).
        assert multi.final_kl <= base.kl_trace[0]
        assert multi.final_kl <= base.final_kl * 1.8 + 1e-9


class TestMultiRule:
    def test_selects_disjoint_rules_within_iteration(self, small_gdelt):
        result = mine(small_gdelt, k=6, variant="multirule",
                      sample_size=32, seed=5, top_fraction=0.05)
        by_iteration = {}
        for mined in result.rule_set:
            by_iteration.setdefault(mined.iteration, []).append(mined.rule)
        for iteration, rules in by_iteration.items():
            if iteration == 0 or len(rules) < 2:
                continue
            for i, a in enumerate(rules):
                for b in rules[i + 1:]:
                    assert a.is_disjoint(b)

    def test_multirule_uses_fewer_iterations(self, small_gdelt):
        single = mine(small_gdelt, k=6, variant="baseline",
                      sample_size=32, seed=5)
        multi = mine(small_gdelt, k=6, variant="multirule",
                     sample_size=32, seed=5)
        single_iters = max(m.iteration for m in single.rule_set)
        multi_iters = max(m.iteration for m in multi.rule_set)
        assert multi_iters < single_iters


class TestTargetKl:
    def test_star_variant_keeps_adding_until_target(self, small_gdelt):
        base = mine(small_gdelt, k=6, variant="baseline",
                    sample_size=32, seed=5)
        star = mine(
            small_gdelt, k=6, variant="multirule", sample_size=32, seed=5,
            target_kl=base.final_kl, max_rules=30,
        )
        assert star.final_kl <= base.final_kl * 1.001

    def test_max_rules_caps_star_variant(self, small_gdelt):
        result = mine(
            small_gdelt, k=2, variant="baseline", sample_size=16, seed=5,
            target_kl=0.0, max_rules=4,
        )
        assert len(result.rule_set) - 1 <= 4


class TestSampleDataMode:
    def test_sirum_on_sample_data_evaluates_on_full(self, small_gdelt):
        full = mine(small_gdelt, k=3, variant="baseline",
                    sample_size=16, seed=5)
        sampled = mine(small_gdelt, k=3, variant="baseline",
                       sample_size=16, seed=5, sample_data_fraction=0.5)
        # Estimates are reported for the full table either way.
        assert sampled.estimates.shape == full.estimates.shape
        assert sampled.information_gain > 0
        # Mining a sample costs less simulated time.
        assert sampled.simulated_seconds < full.simulated_seconds

    def test_sampled_info_gain_close_to_full(self, small_gdelt):
        full = mine(small_gdelt, k=3, variant="baseline",
                    sample_size=16, seed=5)
        sampled = mine(small_gdelt, k=3, variant="baseline",
                       sample_size=16, seed=5, sample_data_fraction=0.6)
        assert sampled.information_gain >= 0.4 * full.information_gain


class TestPriorRules:
    def test_prior_rules_join_the_rule_set(self, flights):
        london = flights.encoder("Destination").encode_existing("London")
        prior = [Rule((WILDCARD, WILDCARD, london))]
        result = mine(flights, k=2, variant="baseline", sample_size=14,
                      seed=1, prior_rules=prior)
        assert result.rule_set[1].rule == prior[0]
        assert result.rule_set[1].iteration == 0

    def test_prior_rules_not_reselected(self, flights):
        london = flights.encoder("Destination").encode_existing("London")
        prior = [Rule((WILDCARD, WILDCARD, london))]
        result = mine(flights, k=2, variant="baseline", sample_size=14,
                      seed=1, prior_rules=prior)
        rules = [m.rule for m in result.rule_set]
        assert len(set(rules)) == len(rules)


class TestExhaustiveMode:
    def test_exhaustive_picks_global_best(self, flights):
        result = mine(flights, k=1, variant="baseline", exhaustive=True)
        london = flights.encoder("Destination").encode_existing("London")
        assert result.rule_set[1].rule == Rule((WILDCARD, WILDCARD, london))


class TestMetrics:
    def test_phases_are_populated(self, small_gdelt, cluster):
        result = mine(small_gdelt, k=2, variant="baseline",
                      sample_size=16, seed=5, cluster=cluster)
        for phase in ("load", "candidate_pruning", "ancestor_generation",
                      "gain", "iterative_scaling"):
            assert result.phase_seconds(phase) > 0, phase

    def test_deterministic_given_seed(self, small_gdelt):
        a = mine(small_gdelt, k=3, variant="optimized", sample_size=16, seed=9)
        b = mine(small_gdelt, k=3, variant="optimized", sample_size=16, seed=9)
        assert [m.rule for m in a.rule_set] == [m.rule for m in b.rule_set]
        assert a.simulated_seconds == pytest.approx(b.simulated_seconds)

    def test_reset_lambdas_is_slower_but_equivalent(self, small_gdelt):
        base = mine(small_gdelt, k=3, variant="baseline",
                    sample_size=16, seed=5)
        reset = mine(small_gdelt, k=3, variant="baseline",
                     sample_size=16, seed=5, reset_lambdas=True)
        assert reset.scaling_iterations > base.scaling_iterations
        assert reset.final_kl == pytest.approx(base.final_kl, rel=0.05)


class TestScalingBehaviour:
    def test_estimates_satisfy_rule_constraints(self, small_income):
        result = mine(small_income, k=4, variant="rct",
                      sample_size=32, seed=2)
        epsilon = result.config.epsilon
        for mined in result.rule_set:
            mask = mined.rule.match_mask(small_income)
            target = small_income.measure[mask].mean()
            estimate = result.estimates[mask].mean()
            if target != 0:
                assert abs(target - estimate) / abs(target) <= epsilon * 3
