"""Tests for candidate generation, correction and selection."""

import numpy as np
import pytest

from repro.common.errors import DataError
from repro.common.rng import make_rng
from repro.core.candidates import (
    CandidateSet,
    candidate_set_from_cube,
    generate_exhaustive,
    generate_from_lcas,
    merge_exhaustive,
    select_rules,
)
from repro.core.divergence import information_gain
from repro.core.rule import Rule, WILDCARD
from repro.core.sampling import draw_sample_rows, lca_aggregates_baseline


@pytest.fixture
def flight_candidates(flights, rng):
    sample = draw_sample_rows(flights, 6, rng)
    estimates = np.full(14, flights.measure.mean())
    lcas = lca_aggregates_baseline(
        flights.dimension_columns(), flights.measure, estimates, sample
    )
    return generate_from_lcas(lcas, sample), sample, estimates


class TestGenerateFromLcas:
    def test_candidate_set_closed_under_ancestors(self, flights, rng):
        sample = draw_sample_rows(flights, 4, rng)
        estimates = np.ones(14)
        lcas = lca_aggregates_baseline(
            flights.dimension_columns(), flights.measure, estimates, sample
        )
        candidates = generate_from_lcas(lcas, sample)
        rule_set = set(candidates.rules)
        for rule in candidates.rules:
            for ancestor in rule.ancestors():
                assert ancestor in rule_set

    def test_root_is_always_a_candidate(self, flight_candidates):
        candidates, _, _ = flight_candidates
        assert Rule.all_wildcards(3) in candidates.rules

    def test_corrected_aggregates_match_direct_support(self, flights, rng):
        # After the multiplicity correction, a candidate's sums must be
        # the true sums over its support set (thesis §3.1.1).
        sample = draw_sample_rows(flights, 5, rng)
        estimates = rng.uniform(1, 3, size=14)
        lcas = lca_aggregates_baseline(
            flights.dimension_columns(), flights.measure, estimates, sample
        )
        candidates = generate_from_lcas(lcas, sample)
        for i, rule in enumerate(candidates.rules):
            mask = rule.match_mask(flights)
            assert candidates.sums_m[i] == pytest.approx(
                float(flights.measure[mask].sum())
            )
            assert candidates.sums_mhat[i] == pytest.approx(
                float(estimates[mask].sum())
            )
            assert candidates.counts[i] == pytest.approx(float(mask.sum()))

    def test_gains_match_formula(self, flight_candidates):
        candidates, _, _ = flight_candidates
        for i in range(len(candidates)):
            assert candidates.gains[i] == pytest.approx(
                information_gain(candidates.sums_m[i], candidates.sums_mhat[i])
            )

    def test_thesis_example_candidate_count(self, flights):
        # Thesis §3.1.1: sampling t4 and t9 yields exactly 15 candidate
        # rules (versus 73 possible).
        t4 = flights.encoded_row(3)
        t9 = flights.encoded_row(8)
        sample = [t4, t9]
        estimates = np.ones(14)
        lcas = lca_aggregates_baseline(
            flights.dimension_columns(), flights.measure, estimates, sample
        )
        candidates = generate_from_lcas(lcas, sample)
        assert len(candidates) == 15

    def test_column_grouped_generation_equivalent(self, flights, rng):
        sample = draw_sample_rows(flights, 5, rng)
        estimates = np.ones(14)
        lcas = lca_aggregates_baseline(
            flights.dimension_columns(), flights.measure, estimates, sample
        )
        single = generate_from_lcas(lcas, sample)
        staged = generate_from_lcas(
            lcas, sample, column_groups=[(0, 1), (2,)]
        )
        single_map = dict(zip(single.rules, single.gains))
        staged_map = dict(zip(staged.rules, staged.gains))
        assert set(single_map) == set(staged_map)
        for rule in single_map:
            assert staged_map[rule] == pytest.approx(single_map[rule])


class TestGenerateExhaustive:
    def test_counts_are_cuboid_cells(self, flights):
        columns = flights.dimension_columns()
        estimates = np.ones(14)
        acc, emitted = generate_exhaustive(columns, flights.measure, estimates)
        assert emitted == 14 * 8
        # The root cell aggregates everything.
        root_key = (WILDCARD,) * 3
        assert acc[root_key][0] == pytest.approx(flights.measure.sum())
        assert acc[root_key][2] == 14

    def test_exhaustive_contains_every_support(self, flights):
        columns = flights.dimension_columns()
        estimates = np.ones(14)
        acc, _ = generate_exhaustive(columns, flights.measure, estimates)
        for key, (sum_m, _sum_mhat, count) in acc.items():
            mask = Rule(key).match_mask(flights)
            assert count == pytest.approx(float(mask.sum()))
            assert sum_m == pytest.approx(float(flights.measure[mask].sum()))

    def test_merge_exhaustive_equals_whole(self, flights):
        columns = flights.dimension_columns()
        estimates = np.ones(14)
        whole, _ = generate_exhaustive(columns, flights.measure, estimates)
        first, _ = generate_exhaustive(
            [c[:7] for c in columns], flights.measure[:7], estimates[:7]
        )
        second, _ = generate_exhaustive(
            [c[7:] for c in columns], flights.measure[7:], estimates[7:]
        )
        merged = merge_exhaustive([first, second])
        assert set(merged) == set(whole)
        for key in whole:
            assert merged[key] == pytest.approx(whole[key])

    def test_too_many_dimensions_rejected(self):
        columns = [np.zeros(2, dtype=np.int64)] * 21
        with pytest.raises(DataError):
            generate_exhaustive(columns, np.ones(2), np.ones(2))

    def test_cube_candidate_scores(self, flights):
        columns = flights.dimension_columns()
        estimates = np.full(14, flights.measure.mean())
        acc, emitted = generate_exhaustive(columns, flights.measure, estimates)
        candidates = candidate_set_from_cube(acc, emitted)
        best = candidates.rules[candidates.best()]
        # The single most informative rule over the flight data after
        # the root is (*, *, London) — thesis §2.4.
        london = flights.encoder("Destination").encode_existing("London")
        assert best == Rule((WILDCARD, WILDCARD, london))


class TestSelectRules:
    def _make(self, rules, gains):
        n = len(rules)
        ones = np.ones(n)
        return CandidateSet(rules, ones, ones, ones, np.asarray(gains, float), 0)

    def test_picks_highest_gain(self):
        candidates = self._make(
            [Rule((0, WILDCARD)), Rule((1, WILDCARD))], [1.0, 3.0]
        )
        picked = select_rules(candidates, [])
        assert picked == [(Rule((1, WILDCARD)), 3.0)]

    def test_skips_rules_already_selected(self):
        rule = Rule((0, WILDCARD))
        candidates = self._make([rule, Rule((1, WILDCARD))], [3.0, 1.0])
        picked = select_rules(candidates, [rule])
        assert picked[0][0] == Rule((1, WILDCARD))

    def test_zero_gain_yields_nothing(self):
        candidates = self._make([Rule((0, WILDCARD))], [0.0])
        assert select_rules(candidates, []) == []

    def test_multi_rule_requires_disjoint(self):
        # Second-best overlaps the best; third-best is disjoint
        # (the thesis §4.4 example).
        best = Rule((WILDCARD, 1, WILDCARD))       # (*, SF, *)
        second = Rule((0, 1, WILDCARD))            # (Fri, SF, *) overlaps
        third = Rule((WILDCARD, 2, WILDCARD))      # (*, London, *) disjoint
        candidates = self._make(
            [best, second, third], [10.0, 9.0, 8.0]
        )
        picked = select_rules(
            candidates, [], rules_per_iteration=2, top_fraction=1.0
        )
        assert [rule for rule, _ in picked] == [best, third]

    def test_min_gain_ratio_enforced(self):
        best = Rule((0, WILDCARD))
        weak = Rule((1, WILDCARD))
        candidates = self._make([best, weak], [10.0, 2.0])
        picked = select_rules(
            candidates, [], rules_per_iteration=2, top_fraction=1.0,
            min_gain_ratio=0.5,
        )
        assert len(picked) == 1

    def test_top_fraction_enforced(self):
        rules = [Rule((i, WILDCARD)) for i in range(100)]
        gains = [100.0 - i for i in range(100)]
        candidates = self._make(rules, gains)
        picked = select_rules(
            candidates, [], rules_per_iteration=3, top_fraction=0.01,
            min_gain_ratio=0.0,
        )
        # Only rank 0 is within the top 1% of 100 candidates.
        assert len(picked) == 1

    def test_three_rules_mutually_disjoint(self):
        rules = [
            Rule((0, WILDCARD, WILDCARD)),
            Rule((1, WILDCARD, WILDCARD)),
            Rule((WILDCARD, WILDCARD, 5)),  # overlaps both
            Rule((2, WILDCARD, WILDCARD)),
        ]
        candidates = self._make(rules, [10.0, 9.0, 8.5, 8.0])
        picked = select_rules(
            candidates, [], rules_per_iteration=3, top_fraction=1.0,
            min_gain_ratio=0.0,
        )
        assert [r for r, _ in picked] == [rules[0], rules[1], rules[3]]

    def test_invalid_rules_per_iteration(self):
        candidates = self._make([Rule((0,))], [1.0])
        with pytest.raises(DataError):
            select_rules(candidates, [], rules_per_iteration=0)
