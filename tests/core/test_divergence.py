"""Tests for KL-divergence, entropy and the gain estimate (§2.3, §2.4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.errors import DataError
from repro.core.divergence import (
    entropy,
    information_gain,
    kl_divergence,
    rule_set_information_gain,
)

positive_arrays = hnp.arrays(
    np.float64,
    st.integers(2, 40),
    elements=st.floats(0.01, 100.0, allow_nan=False),
)


class TestKlDivergence:
    def test_self_similarity_is_zero(self):
        m = np.array([1.0, 2.0, 3.0])
        assert kl_divergence(m, m) == pytest.approx(0.0)

    @given(m=positive_arrays)
    @settings(max_examples=60, deadline=None)
    def test_non_negativity(self, m):
        uniform = np.ones_like(m)
        assert kl_divergence(m, uniform) >= -1e-12

    @given(m=positive_arrays)
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance_after_normalization(self, m):
        q = np.ones_like(m)
        assert kl_divergence(m, q) == pytest.approx(
            kl_divergence(m * 7.5, q * 0.3)
        )

    def test_zero_m_entries_contribute_zero(self):
        m = np.array([0.0, 1.0, 1.0])
        q = np.array([0.5, 1.0, 1.0])
        # 0 log 0 = 0: only the normalization mismatch matters.
        assert np.isfinite(kl_divergence(m, q))

    def test_positive_m_against_zero_q_raises(self):
        with pytest.raises(DataError):
            kl_divergence(np.array([1.0, 1.0]), np.array([0.0, 1.0]))

    def test_negative_inputs_rejected(self):
        with pytest.raises(DataError):
            kl_divergence(np.array([-1.0, 1.0]), np.array([1.0, 1.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            kl_divergence(np.ones(3), np.ones(4))

    def test_zero_total_rejected(self):
        with pytest.raises(DataError):
            kl_divergence(np.zeros(3), np.ones(3))

    def test_flight_example_improves_with_second_rule(self, flights):
        # Thesis §2.3: adding (*, *, London) reduces the divergence.
        m = flights.measure
        mhat1 = np.full(14, m.mean())
        mhat2 = mhat1.copy()
        london_rows = [0, 3, 5, 10]
        mhat2[london_rows] = 15.25
        other = [i for i in range(14) if i not in london_rows]
        mhat2[other] = 8.4
        assert kl_divergence(m, mhat2) < kl_divergence(m, mhat1)


class TestEntropy:
    def test_uniform_maximizes(self):
        assert entropy(np.ones(8)) == pytest.approx(np.log(8))

    def test_degenerate_distribution_is_zero(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)

    @given(m=positive_arrays)
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_log_n(self, m):
        assert -1e-9 <= entropy(m) <= np.log(m.size) + 1e-9


class TestInformationGain:
    def test_zero_when_sums_match(self):
        assert information_gain(10.0, 10.0) == pytest.approx(0.0)

    def test_positive_when_underestimated(self):
        # Thesis §2.4: underestimated support sets get positive gain.
        assert information_gain(10.0, 5.0) > 0

    def test_negative_when_overestimated(self):
        assert information_gain(5.0, 10.0) < 0

    def test_zero_m_sum_is_zero_gain(self):
        assert information_gain(0.0, 5.0) == 0.0

    def test_zero_mhat_with_positive_m_raises(self):
        with pytest.raises(DataError):
            information_gain(1.0, 0.0)

    @given(
        sum_m=st.floats(0.1, 1000),
        factor=st.floats(1.01, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_underestimation(self, sum_m, factor):
        # The further the estimate falls below the truth, the larger
        # the gain.
        closer = information_gain(sum_m, sum_m / factor)
        farther = information_gain(sum_m, sum_m / (factor * 2))
        assert farther > closer


class TestRuleSetInformationGain:
    def test_matches_kl_difference(self):
        m = np.array([4.0, 1.0, 1.0, 2.0])
        root_only = np.full(4, 2.0)
        better = np.array([3.5, 1.2, 1.2, 2.1])
        expected = kl_divergence(m, root_only) - kl_divergence(m, better)
        assert rule_set_information_gain(m, root_only, better) == pytest.approx(
            expected
        )
